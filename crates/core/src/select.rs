//! The selection operator σ_θ (paper Section III-C).
//!
//! * **Case 1** — every predicate attribute is certain: classical filtering.
//! * **Case 2(a)** — dependency sets disjoint from the predicate are copied.
//! * **Case 2(b)** — dependency sets intersecting the predicate are merged
//!   (`product`, history-aware) and floored where the predicate is false;
//!   fully-floored tuples are removed.
//!
//! A fast path keeps floors **symbolic** when the predicate decomposes into
//! single-attribute comparisons against constants (`[Gaus(5,1),
//! Floor{[5,∞]}]` instead of a materialized histogram) — the paper's
//! Section III-A optimization.

use crate::batch::{CertainLanes, ExecMode, TriVec};
use crate::collapse;
use crate::error::{EngineError, Result};
use crate::history::HistoryRegistry;
use crate::predicate::Predicate;
use crate::relation::Relation;
use crate::schema::{closure, AttrId};
use crate::tuple::{PdfNode, ProbTuple};
use crate::value::Value;
use orion_obs::{ExecStats, Tracer};
use std::sync::Arc;

/// Execution options shared by the relational operators.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Grid bins per dimension when continuous pdfs must be materialized.
    pub resolution: usize,
    /// Maintain and honor histories (turning this off reproduces the
    /// paper's incorrect-but-fast Figure 6 baseline).
    pub use_histories: bool,
    /// Collapse historically dependent nodes eagerly after joins
    /// (Section III-D leaves the timing to the implementation).
    pub eager_collapse: bool,
    /// Execution-stats collector. When present, the operators count the pdf
    /// operations they perform (products, floors, marginalizations,
    /// history collapses) into it; tuple flow and wall time are recorded by
    /// the profiled executors, which know operator boundaries.
    pub stats: Option<Arc<ExecStats>>,
    /// Worker threads for morsel-parallel operators. `0` (the default)
    /// means auto: the `ORION_THREADS` environment variable if set,
    /// otherwise the machine's available parallelism. Output is
    /// bit-identical at any thread count (see [`crate::exec_par`]).
    pub threads: usize,
    /// Tuples per morsel. Inputs no larger than one morsel run serially,
    /// so small relations never pay thread costs; tests shrink this to
    /// force parallelism on tiny inputs.
    pub morsel_size: usize,
    /// Span tracer for this execution. `None` (the default) falls back to
    /// the process tracer ([`Tracer::global`]) *when that is enabled*, so
    /// `ORION_TRACE=1` traces everything without plumbing. Tracing is
    /// record-only and never affects results (see `tests/parallel_equiv.rs`).
    pub trace: Option<Tracer>,
    /// Row- or batch-at-a-time execution. The default honors the
    /// `ORION_MODE` environment variable (`batch` selects batch mode).
    /// Both modes are bit-identical (see `tests/batch_equiv.rs`); batch
    /// mode vectorizes certain-column predicate work and reports batch
    /// counters through [`ExecStats`].
    pub mode: crate::batch::ExecMode,
    /// Access-path policy: cost-based (estimate scan vs index and pick the
    /// cheaper) or rule-based (always prefer a usable index). The default
    /// honors the `ORION_PLANNER` environment variable. Either way results
    /// are bit-identical — only the access path differs.
    pub planner: crate::pindex::PlannerMode,
    /// Shared secondary-index catalog. `None` (the default) plans pure
    /// scans; sessions attach their catalog so threshold and certain-range
    /// operators can consult persistent indexes.
    pub indexes: Option<crate::pindex::IndexHandle>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            resolution: collapse::DEFAULT_RESOLUTION,
            use_histories: true,
            eager_collapse: true,
            stats: None,
            threads: 0,
            morsel_size: crate::exec_par::DEFAULT_MORSEL_SIZE,
            trace: None,
            mode: crate::batch::ExecMode::from_env(),
            planner: crate::pindex::PlannerMode::from_env(),
            indexes: None,
        }
    }
}

impl ExecOptions {
    /// This options set with a stats collector attached.
    pub fn with_stats(mut self, stats: Arc<ExecStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// This options set with a span tracer attached.
    pub fn with_trace(mut self, trace: Tracer) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Borrows the collector in the form the collapse helpers take.
    pub fn stats_ref(&self) -> Option<&ExecStats> {
        self.stats.as_deref()
    }

    /// The tracer in effect: an explicitly attached one wins; otherwise the
    /// process tracer when it is enabled. Costs one relaxed atomic load
    /// when tracing is off everywhere.
    pub fn tracer(&self) -> Option<&Tracer> {
        match &self.trace {
            Some(t) => t.enabled().then_some(t),
            None => {
                let g = Tracer::global();
                g.enabled().then_some(g)
            }
        }
    }
}

/// Evaluates σ_θ over a relation.
pub fn select(
    rel: &Relation,
    pred: &Predicate,
    reg: &mut HistoryRegistry,
    opts: &ExecOptions,
) -> Result<Relation> {
    select_masked(rel, pred, None, reg, opts)
}

/// σ_θ with an optional index-supplied candidate mask: tuples with
/// `mask[i] == false` are skipped without evaluation. The access-path
/// planner only supplies masks over *certain-only* predicates (an `evx`
/// index probe), where the mask is a proven superset of the passing set —
/// a skipped tuple would have failed `Predicate::eval` anyway, so masked
/// and unmasked runs are bitwise identical. Predicates touching uncertain
/// columns ignore the mask: flooring leaves residual mass an index bound
/// cannot decide, so every tuple must be floored.
pub fn select_masked(
    rel: &Relation,
    pred: &Predicate,
    mask: Option<&[bool]>,
    reg: &mut HistoryRegistry,
    opts: &ExecOptions,
) -> Result<Relation> {
    pred.validate(&rel.schema)?;
    if let (Some(m), Some(s)) = (mask, opts.stats_ref()) {
        s.index_probes.add(m.len() as u64);
        s.index_pruned.add(m.iter().filter(|&&keep| !keep).count() as u64);
    }
    let pred_cols = pred.columns();
    let uncertain_cols: Vec<&str> = pred_cols
        .iter()
        .filter(|c| rel.schema.column(c).expect("validated").uncertain)
        .map(|s| s.as_str())
        .collect();

    let mut out = Relation::new(format!("sigma({})", rel.name), rel.schema.clone());
    if uncertain_cols.is_empty() {
        // Case 1: certain-only predicate. Parallel compute, ordered commit.
        // Batch mode evaluates the predicate over columnar lanes, one
        // chunk at a time; the lane evaluator reproduces `Predicate::eval`
        // exactly (see `crate::batch`), so the kept set is identical.
        let kept = match opts.mode {
            ExecMode::Row => crate::exec_par::run_tuples(&rel.tuples, opts, |i, t| {
                if mask.is_some_and(|m| !m[i]) {
                    return Ok(None);
                }
                let lookup = certain_lookup(rel, t);
                Ok((pred.eval(&lookup) == Some(true)).then(|| t.clone()))
            })?,
            ExecMode::Batch => crate::exec_par::run_batches(&rel.tuples, opts, |_, lo, chunk| {
                // The index mask composes with the lane verdicts: a masked
                // -out tuple is dropped regardless (it could not pass), so
                // the kept set matches the unmasked scan exactly.
                let lanes = CertainLanes::build(rel, chunk, &pred_cols);
                let tri = lanes.eval(pred);
                Ok(chunk
                    .iter()
                    .enumerate()
                    .zip(tri)
                    .map(|((j, t), k)| {
                        (k == 1 && mask.is_none_or(|m| m[lo + j])).then(|| t.clone())
                    })
                    .collect())
            })?,
        };
        record_selected(opts, &kept);
        for t in kept.into_iter().flatten() {
            push_tuple(&mut out, t, reg);
        }
        return Ok(out);
    }

    // Update the visible dependency information: Δ_R = Ω(Δ_T ∪ {A}).
    let a_ids: Vec<AttrId> =
        uncertain_cols.iter().map(|c| rel.schema.column(c).expect("validated").id).collect();
    let mut sets: Vec<Vec<AttrId>> = rel.schema.deps().to_vec();
    sets.push(a_ids.clone());
    out.schema.set_deps(closure(&sets));

    // Phase 1 (parallel): per-tuple flooring reads the registry immutably.
    let fast = fast_path_atoms(rel, pred);
    let reg_ref: &HistoryRegistry = reg;
    let computed = match (&fast, opts.mode) {
        // Batch fast path: certain atoms evaluated as chunk-wide lane
        // vectors, floors applied tuple-major — same arithmetic, same
        // order, same counters as the row path.
        (Some(atoms), ExecMode::Batch) => {
            crate::exec_par::run_batches(&rel.tuples, opts, |_, _, chunk| {
                select_chunk_fast(rel, chunk, atoms, opts.stats_ref())
            })?
        }
        _ => crate::exec_par::run_tuples_mode(&rel.tuples, opts, |_, t| match &fast {
            Some(atoms) => select_tuple_fast(rel, t, atoms, opts.stats_ref()),
            None => select_tuple_general(rel, t, pred, &a_ids, reg_ref, opts),
        })?,
    };
    record_selected(opts, &computed);
    // Phase 2 (serial, in input order): reference-count commits.
    for nt in computed.into_iter().flatten() {
        if !nt.is_vacuous() {
            push_tuple(&mut out, nt, reg);
        }
    }
    Ok(out)
}

/// Records batch selection density (`Some` entries of the computed vector,
/// before the vacuity check) — the `sel=…%` figure `EXPLAIN ANALYZE`
/// prints. Row mode reports no batch counters.
fn record_selected(opts: &ExecOptions, computed: &[Option<ProbTuple>]) {
    if opts.mode.is_batch() {
        if let Some(s) = opts.stats_ref() {
            s.batch_selected.add(computed.iter().filter(|t| t.is_some()).count() as u64);
        }
    }
}

fn push_tuple(out: &mut Relation, t: ProbTuple, reg: &mut HistoryRegistry) {
    for n in &t.nodes {
        reg.add_refs(&n.ancestors);
    }
    out.tuples.push(t);
}

/// Value lookup over a tuple's certain columns.
pub(crate) fn certain_lookup<'a>(
    rel: &'a Relation,
    t: &'a ProbTuple,
) -> impl Fn(&str) -> Value + 'a {
    move |name| rel.schema.index_of(name).map(|i| t.certain[i].clone()).unwrap_or(Value::Null)
}

/// One fast-path conjunct: either a certain-only atom, or a single
/// uncertain column with its failing region.
enum FastAtom {
    Certain(Predicate),
    Floor { col: String, region: orion_pdf::prelude::RegionSet },
}

/// Decomposes the predicate into fast-path atoms when possible: a
/// conjunction in which each conjunct is either certain-only or a
/// single-uncertain-column comparison against a constant.
fn fast_path_atoms(rel: &Relation, pred: &Predicate) -> Option<Vec<FastAtom>> {
    let mut atoms = Vec::new();
    for conj in pred.conjuncts() {
        // OR/NOT inside a conjunct disables the fast path unless certain-only.
        let cols = conj.columns();
        let all_certain =
            cols.iter().all(|c| rel.schema.column(c).is_some_and(|col| !col.uncertain));
        if all_certain {
            atoms.push(FastAtom::Certain(conj.clone()));
            continue;
        }
        let (col, region) = conj.single_column_floor()?;
        if !rel.schema.column(&col)?.uncertain {
            // Shape matched but the column is certain — treat as certain atom.
            atoms.push(FastAtom::Certain(conj.clone()));
            continue;
        }
        atoms.push(FastAtom::Floor { col, region });
    }
    Some(atoms)
}

/// Fast path: apply symbolic floors per uncertain column; evaluate certain
/// atoms directly. Returns `None` when the tuple is filtered out.
fn select_tuple_fast(
    rel: &Relation,
    t: &ProbTuple,
    atoms: &[FastAtom],
    stats: Option<&ExecStats>,
) -> Result<Option<ProbTuple>> {
    let mut nt = t.clone();
    for atom in atoms {
        match atom {
            FastAtom::Certain(p) => {
                let lookup = certain_lookup(rel, &nt);
                if p.eval(&lookup) != Some(true) {
                    return Ok(None);
                }
            }
            FastAtom::Floor { col, region } => {
                let attr = rel
                    .schema
                    .column(col)
                    .ok_or_else(|| EngineError::Predicate(format!("unknown column '{col}'")))?
                    .id;
                let ni = nt
                    .node_index_for(attr)
                    .ok_or_else(|| EngineError::Operator(format!("no pdf node for '{col}'")))?;
                let node = &nt.nodes[ni];
                let dim = node.dim_of(attr).expect("node covers attr");
                if let Some(s) = stats {
                    s.pdf_floors.inc();
                }
                let floored = node.joint.floor_axis(dim, region);
                nt.nodes[ni] = PdfNode::new(node.dims.clone(), floored, node.ancestors.clone());
            }
        }
    }
    Ok(Some(nt))
}

/// Batch fast path over one chunk. Certain atoms are pure functions of the
/// (immutable) certain values, so their tri-state vectors are precomputed
/// chunk-wide over columnar lanes; the tuple-major walk then replays
/// [`select_tuple_fast`]'s atom sequence per tuple — identical
/// short-circuiting, identical floor order, identical `pdf_floors` counts,
/// and errors surface at the same tuple position as row mode.
fn select_chunk_fast(
    rel: &Relation,
    chunk: &[ProbTuple],
    atoms: &[FastAtom],
    stats: Option<&ExecStats>,
) -> Result<Vec<Option<ProbTuple>>> {
    let tri: Vec<Option<TriVec>> = atoms
        .iter()
        .map(|a| match a {
            FastAtom::Certain(p) => {
                let lanes = CertainLanes::build(rel, chunk, &p.columns());
                Some(lanes.eval(p))
            }
            FastAtom::Floor { .. } => None,
        })
        .collect();
    let mut out = Vec::with_capacity(chunk.len());
    'tuples: for (i, t) in chunk.iter().enumerate() {
        // Flooring never touches certain values, so the precomputed
        // tri-states stay valid throughout the walk.
        let mut nt = t.clone();
        for (k, atom) in atoms.iter().enumerate() {
            match atom {
                FastAtom::Certain(_) => {
                    if tri[k].as_ref().expect("certain atom has a tri vector")[i] != 1 {
                        out.push(None);
                        continue 'tuples;
                    }
                }
                FastAtom::Floor { col, region } => {
                    let attr = rel
                        .schema
                        .column(col)
                        .ok_or_else(|| EngineError::Predicate(format!("unknown column '{col}'")))?
                        .id;
                    let ni = nt
                        .node_index_for(attr)
                        .ok_or_else(|| EngineError::Operator(format!("no pdf node for '{col}'")))?;
                    let node = &nt.nodes[ni];
                    let dim = node.dim_of(attr).expect("node covers attr");
                    if let Some(s) = stats {
                        s.pdf_floors.inc();
                    }
                    let floored = node.joint.floor_axis(dim, region);
                    nt.nodes[ni] = PdfNode::new(node.dims.clone(), floored, node.ancestors.clone());
                }
            }
        }
        out.push(Some(nt));
    }
    Ok(out)
}

/// General path (Case 2(b)): merge the dependency sets intersecting the
/// predicate, bind certain attributes, and floor where θ is false.
fn select_tuple_general(
    rel: &Relation,
    t: &ProbTuple,
    pred: &Predicate,
    a_ids: &[AttrId],
    reg: &HistoryRegistry,
    opts: &ExecOptions,
) -> Result<Option<ProbTuple>> {
    // Nodes touched by the predicate.
    let mut touched: Vec<usize> = Vec::new();
    for &a in a_ids {
        match t.node_index_for(a) {
            Some(i) => {
                if !touched.contains(&i) {
                    touched.push(i);
                }
            }
            None => {
                return Err(EngineError::Operator(format!(
                    "uncertain attribute {a} has no pdf node"
                )))
            }
        }
    }
    touched.sort_unstable();

    // Merge them (history-aware product; naive product when histories are
    // disabled for the Figure 6 ablation).
    let merged = if touched.len() == 1 {
        t.nodes[touched[0]].clone()
    } else {
        let refs: Vec<&PdfNode> = touched.iter().map(|&i| &t.nodes[i]).collect();
        if opts.use_histories {
            collapse::merge_nodes_with_stats(&refs, reg, opts.resolution, opts.stats_ref())?
        } else {
            if let Some(s) = opts.stats_ref() {
                s.pdf_products.add(refs.len() as u64 - 1);
            }
            naive_merge(&refs)?
        }
    };

    // Bind every predicate column: uncertain -> dim index, certain -> value.
    let dims: Vec<usize> = a_ids
        .iter()
        .map(|&a| {
            merged
                .dim_of(a)
                .ok_or_else(|| EngineError::Operator(format!("merged node misses attr {a}")))
        })
        .collect::<Result<_>>()?;
    let col_names: Vec<String> = a_ids
        .iter()
        .map(|&a| rel.schema.column_by_id(a).expect("validated").name.clone())
        .collect();

    // Pre-compute the dimension reorder floor_predicate will apply.
    let order = merged.joint.dim_order_after_merge(&dims);

    let certain_vals: Vec<(String, Value)> = pred
        .columns()
        .into_iter()
        .filter(|c| !rel.schema.column(c).expect("validated").uncertain)
        .map(|c| {
            let idx = rel.schema.index_of(&c).expect("validated");
            (c, t.certain[idx].clone())
        })
        .collect();

    let pred_cloned = pred.clone();
    let names = col_names.clone();
    if let Some(s) = opts.stats_ref() {
        s.pdf_floors.inc();
    }
    let floored = merged.joint.floor_predicate(&dims, opts.resolution, move |x| {
        let lookup = |name: &str| -> Value {
            if let Some(i) = names.iter().position(|n| n == name) {
                return Value::Real(x[i]);
            }
            certain_vals
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.clone())
                .unwrap_or(Value::Null)
        };
        pred_cloned.eval(&lookup) == Some(true)
    })?;
    let new_dims: Vec<crate::tuple::NodeDim> = order.iter().map(|&i| merged.dims[i]).collect();
    let new_node = PdfNode::new(new_dims, floored, merged.ancestors);

    let mut nodes = Vec::with_capacity(t.nodes.len() - touched.len() + 1);
    for (i, n) in t.nodes.iter().enumerate() {
        if i == touched[0] {
            nodes.push(new_node.clone());
        } else if !touched.contains(&i) {
            nodes.push(n.clone());
        }
    }
    Ok(Some(ProbTuple { certain: t.certain.clone(), nodes }))
}

/// Applies σ_θ to a single tuple without touching the registry's reference
/// counts: returns the floored tuple, or `None` when it is filtered out
/// (certain-predicate failure). Callers must still check for vacuity.
/// Used by threshold queries (Section III-E) to evaluate `Pr(θ)` without
/// materializing a result relation.
pub(crate) fn apply_predicate_tuple(
    rel: &Relation,
    t: &ProbTuple,
    pred: &Predicate,
    reg: &HistoryRegistry,
    opts: &ExecOptions,
) -> Result<Option<ProbTuple>> {
    let pred_cols = pred.columns();
    let uncertain: Vec<AttrId> = pred_cols
        .iter()
        .filter_map(|c| {
            let col = rel.schema.column(c)?;
            col.uncertain.then_some(col.id)
        })
        .collect();
    if uncertain.is_empty() {
        let lookup = certain_lookup(rel, t);
        return Ok((pred.eval(&lookup) == Some(true)).then(|| t.clone()));
    }
    match fast_path_atoms(rel, pred) {
        Some(atoms) => select_tuple_fast(rel, t, &atoms, opts.stats_ref()),
        None => select_tuple_general(rel, t, pred, &uncertain, reg, opts),
    }
}

/// Plain product of nodes, ignoring histories — the paper's incorrect
/// Figure 3 baseline (public for the ablation harness).
pub fn naive_merge(nodes: &[&PdfNode]) -> Result<PdfNode> {
    let mut it = nodes.iter();
    let first = it.next().ok_or_else(|| EngineError::Operator("merge of zero nodes".into()))?;
    let mut dims = first.dims.clone();
    let mut joint = first.joint.clone();
    let mut ancestors = first.ancestors.clone();
    for n in it {
        for d in &n.dims {
            if let Some(a) = d.column {
                if dims.iter().any(|e| e.column == Some(a)) {
                    return Err(EngineError::Operator(
                        "naive merge of nodes sharing a visible column".into(),
                    ));
                }
            }
        }
        dims.extend_from_slice(&n.dims);
        joint = joint.product(&n.joint);
        ancestors.extend(n.ancestors.iter().copied());
    }
    Ok(PdfNode::new(dims, joint, ancestors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use crate::schema::{ColumnType, ProbSchema};
    use orion_pdf::prelude::*;

    /// The paper's Table II relation.
    fn table2() -> (Relation, HistoryRegistry) {
        let schema = ProbSchema::new(
            vec![("a", ColumnType::Int, true), ("b", ColumnType::Int, true)],
            vec![],
        )
        .unwrap();
        let mut rel = Relation::new("T", schema);
        let mut reg = HistoryRegistry::new();
        rel.insert_simple(
            &mut reg,
            &[],
            &[
                ("a", Pdf1::discrete(vec![(0.0, 0.1), (1.0, 0.9)]).unwrap()),
                ("b", Pdf1::discrete(vec![(1.0, 0.6), (2.0, 0.4)]).unwrap()),
            ],
        )
        .unwrap();
        rel.insert_simple(&mut reg, &[], &[("a", Pdf1::certain(7.0)), ("b", Pdf1::certain(3.0))])
            .unwrap();
        (rel, reg)
    }

    #[test]
    fn selection_a_lt_b_matches_paper() {
        // Section III-C: σ_{a<b}(T) yields one tuple with joint
        // Discrete({0,1}:0.06, {0,2}:0.04, {1,2}:0.36).
        let (rel, mut reg) = table2();
        let out = select(
            &rel,
            &Predicate::cmp_cols("a", CmpOp::Lt, "b"),
            &mut reg,
            &ExecOptions::default(),
        )
        .unwrap();
        assert_eq!(out.len(), 1, "tuple 2 (7 !< 3) is fully floored");
        let t = &out.tuples[0];
        assert_eq!(t.nodes.len(), 1, "a and b merged into one dependency set");
        let n = &t.nodes[0];
        let (pa, pb) = (
            n.dim_of(rel.schema.column("a").unwrap().id).unwrap(),
            n.dim_of(rel.schema.column("b").unwrap().id).unwrap(),
        );
        let d = |a: f64, b: f64| {
            let mut pt = vec![0.0; 2];
            pt[pa] = a;
            pt[pb] = b;
            n.joint.density(&pt)
        };
        assert!((d(0.0, 1.0) - 0.06).abs() < 1e-12);
        assert!((d(0.0, 2.0) - 0.04).abs() < 1e-12);
        assert!((d(1.0, 2.0) - 0.36).abs() < 1e-12);
        assert_eq!(d(1.0, 1.0), 0.0);
        assert!((n.mass() - 0.46).abs() < 1e-12);
        // History: the new set descends from both base pdfs.
        assert_eq!(n.ancestors.len(), 2);
        // Visible dependency info merged: Δ = {{a, b}}.
        assert_eq!(out.schema.deps().len(), 1);
        assert_eq!(out.schema.deps()[0].len(), 2);
    }

    #[test]
    fn case1_certain_selection() {
        // σ_{id=1} on the Table I relation keeps one tuple, pdf untouched.
        let schema = ProbSchema::new(
            vec![("id", ColumnType::Int, false), ("loc", ColumnType::Real, true)],
            vec![],
        )
        .unwrap();
        let mut rel = Relation::new("readings", schema);
        let mut reg = HistoryRegistry::new();
        for (id, m, v) in [(1, 20.0, 5.0), (2, 25.0, 4.0), (3, 13.0, 1.0)] {
            rel.insert_simple(
                &mut reg,
                &[("id", Value::Int(id))],
                &[("loc", Pdf1::gaussian(m, v).unwrap())],
            )
            .unwrap();
        }
        let out =
            select(&rel, &Predicate::cmp("id", CmpOp::Eq, 1i64), &mut reg, &ExecOptions::default())
                .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.marginal(0, "loc").unwrap().to_string(), "Gaus(20,5)");
    }

    #[test]
    fn fast_path_keeps_symbolic_floor() {
        let schema = ProbSchema::new(vec![("x", ColumnType::Real, true)], vec![]).unwrap();
        let mut rel = Relation::new("t", schema);
        let mut reg = HistoryRegistry::new();
        rel.insert_simple(&mut reg, &[], &[("x", Pdf1::gaussian(5.0, 1.0).unwrap())]).unwrap();
        let out =
            select(&rel, &Predicate::cmp("x", CmpOp::Lt, 5.0), &mut reg, &ExecOptions::default())
                .unwrap();
        let m = out.marginal(0, "x").unwrap();
        // The representation stays symbolic: [Gaus(5,1), Floor{[5,inf]}].
        assert_eq!(m.to_string(), "[Gaus(5,1), Floor{[5,inf]}]");
        assert!((m.mass() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fast_path_mixed_certain_and_uncertain_conjuncts() {
        let schema = ProbSchema::new(
            vec![("id", ColumnType::Int, false), ("x", ColumnType::Real, true)],
            vec![],
        )
        .unwrap();
        let mut rel = Relation::new("t", schema);
        let mut reg = HistoryRegistry::new();
        for id in 1..=3i64 {
            rel.insert_simple(
                &mut reg,
                &[("id", Value::Int(id))],
                &[("x", Pdf1::uniform(0.0, 10.0).unwrap())],
            )
            .unwrap();
        }
        let pred = Predicate::And(vec![
            Predicate::cmp("id", CmpOp::Le, 2i64),
            Predicate::cmp("x", CmpOp::Ge, 5.0),
        ]);
        let out = select(&rel, &pred, &mut reg, &ExecOptions::default()).unwrap();
        assert_eq!(out.len(), 2);
        for i in 0..2 {
            let m = out.marginal(i, "x").unwrap();
            assert!((m.mass() - 0.5).abs() < 1e-9);
            assert_eq!(m.density(4.0), 0.0);
        }
    }

    #[test]
    fn fully_floored_tuple_removed() {
        let (rel, mut reg) = table2();
        // a < 0 is impossible for both tuples.
        let out =
            select(&rel, &Predicate::cmp("a", CmpOp::Lt, -1i64), &mut reg, &ExecOptions::default())
                .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn uncertain_vs_certain_column_comparison() {
        // Predicate mixes an uncertain column with a certain one:
        // x > bound, where bound is a certain per-tuple value.
        let schema = ProbSchema::new(
            vec![("bound", ColumnType::Int, false), ("x", ColumnType::Real, true)],
            vec![],
        )
        .unwrap();
        let mut rel = Relation::new("t", schema);
        let mut reg = HistoryRegistry::new();
        rel.insert_simple(
            &mut reg,
            &[("bound", Value::Int(5))],
            &[("x", Pdf1::uniform(0.0, 10.0).unwrap())],
        )
        .unwrap();
        let out = select(
            &rel,
            &Predicate::cmp_cols("x", CmpOp::Gt, "bound"),
            &mut reg,
            &ExecOptions::default(),
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        let m = out.marginal(0, "x").unwrap();
        assert!((m.mass() - 0.5).abs() < 0.05);
        assert!(m.density(2.0) < 1e-9);
    }

    #[test]
    fn or_predicate_takes_general_path() {
        let (rel, mut reg) = table2();
        // a = 0 OR a = 7: keeps world a=0 of tuple 1 (p 0.1) and tuple 2.
        let pred = Predicate::Or(vec![
            Predicate::cmp("a", CmpOp::Eq, 0i64),
            Predicate::cmp("a", CmpOp::Eq, 7i64),
        ]);
        let out = select(&rel, &pred, &mut reg, &ExecOptions::default()).unwrap();
        assert_eq!(out.len(), 2);
        let m0 = out.tuples[0].node_for(rel.schema.column("a").unwrap().id).unwrap();
        assert!((m0.mass() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn selection_is_composable_and_order_independent() {
        let schema = ProbSchema::new(vec![("x", ColumnType::Real, true)], vec![]).unwrap();
        let mut rel = Relation::new("t", schema);
        let mut reg = HistoryRegistry::new();
        rel.insert_simple(&mut reg, &[], &[("x", Pdf1::gaussian(0.0, 1.0).unwrap())]).unwrap();
        let opts = ExecOptions::default();
        let p1 = Predicate::cmp("x", CmpOp::Gt, -1.0);
        let p2 = Predicate::cmp("x", CmpOp::Lt, 1.0);
        let ab =
            select(&select(&rel, &p1, &mut reg, &opts).unwrap(), &p2, &mut reg, &opts).unwrap();
        let ba =
            select(&select(&rel, &p2, &mut reg, &opts).unwrap(), &p1, &mut reg, &opts).unwrap();
        let (ma, mb) = (ab.marginal(0, "x").unwrap(), ba.marginal(0, "x").unwrap());
        assert!((ma.mass() - mb.mass()).abs() < 1e-12);
        for &x in &[-1.5, -0.5, 0.0, 0.5, 1.5] {
            assert!((ma.density(x) - mb.density(x)).abs() < 1e-15);
        }
    }

    /// Row and batch mode must agree bit-for-bit on every select path.
    fn assert_modes_agree(build: impl Fn() -> (Relation, HistoryRegistry), pred: &Predicate) {
        // One relation, two cloned registries: AttrIds are globally
        // allocated, so separate builds would not be comparable.
        let (rel, reg0) = build();
        let mut reg = reg0.clone();
        let row = select(
            &rel,
            pred,
            &mut reg,
            &ExecOptions { mode: ExecMode::Row, ..ExecOptions::default() },
        )
        .unwrap();
        let mut reg_b = reg0.clone();
        let stats = std::sync::Arc::new(orion_obs::ExecStats::new());
        let opts = ExecOptions {
            mode: ExecMode::Batch,
            stats: Some(stats.clone()),
            ..ExecOptions::default()
        };
        let batch = select(&rel, pred, &mut reg_b, &opts).unwrap();
        assert_eq!(batch.tuples, row.tuples, "{pred}");
        assert_eq!(reg_b.len(), reg.len());
        assert_eq!(reg_b.last_id(), reg.last_id());
        for (id, _) in reg.iter_bases() {
            assert_eq!(reg_b.ref_count(id), reg.ref_count(id), "ref count of {id}");
        }
        let snap = stats.snapshot();
        assert!(snap.batches > 0, "batch mode must record batches");
        assert_eq!(snap.batch_rows, rel.len() as u64);
    }

    #[test]
    fn batch_mode_matches_row_mode_on_all_paths() {
        // Case 1 (certain-only), fast path (symbolic floors + mixed certain
        // conjuncts), and the general path (OR over an uncertain column).
        assert_modes_agree(table2, &Predicate::cmp_cols("a", CmpOp::Lt, "b"));
        assert_modes_agree(table2, &Predicate::cmp("a", CmpOp::Lt, 5i64));
        assert_modes_agree(
            table2,
            &Predicate::Or(vec![
                Predicate::cmp("a", CmpOp::Eq, 0i64),
                Predicate::cmp("a", CmpOp::Eq, 7i64),
            ]),
        );
        let certain_rel = || {
            let schema = ProbSchema::new(
                vec![("id", ColumnType::Int, false), ("loc", ColumnType::Real, true)],
                vec![],
            )
            .unwrap();
            let mut rel = Relation::new("readings", schema);
            let mut reg = HistoryRegistry::new();
            for (id, m, v) in [(1, 20.0, 5.0), (2, 25.0, 4.0), (3, 13.0, 1.0)] {
                rel.insert_simple(
                    &mut reg,
                    &[("id", Value::Int(id))],
                    &[("loc", Pdf1::gaussian(m, v).unwrap())],
                )
                .unwrap();
            }
            (rel, reg)
        };
        assert_modes_agree(certain_rel, &Predicate::cmp("id", CmpOp::Le, 2i64));
        assert_modes_agree(
            certain_rel,
            &Predicate::And(vec![
                Predicate::cmp("id", CmpOp::Le, 2i64),
                Predicate::cmp("loc", CmpOp::Ge, 20.0),
            ]),
        );
    }

    #[test]
    fn batch_mode_counts_floors_like_row_mode() {
        // The plan-level regression pins exact pdf_floors counts; the batch
        // fast path must count per tuple exactly as the row path does.
        let count = |mode: ExecMode| {
            let (rel, mut reg) = table2();
            let stats = std::sync::Arc::new(orion_obs::ExecStats::new());
            let opts = ExecOptions { mode, stats: Some(stats.clone()), ..ExecOptions::default() };
            select(&rel, &Predicate::cmp("a", CmpOp::Lt, 5i64), &mut reg, &opts).unwrap();
            stats.snapshot().pdf_floors
        };
        assert_eq!(count(ExecMode::Batch), count(ExecMode::Row));
    }

    #[test]
    fn unknown_column_rejected() {
        let (rel, mut reg) = table2();
        assert!(select(
            &rel,
            &Predicate::cmp("zzz", CmpOp::Eq, 1i64),
            &mut reg,
            &ExecOptions::default()
        )
        .is_err());
    }
}
