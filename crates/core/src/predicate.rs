//! Boolean predicates over relation columns.
//!
//! Predicates drive selections, joins and threshold queries. A predicate
//! can be evaluated (a) on fully certain rows with three-valued logic, and
//! (b) as a point indicator during `floor` operations, where uncertain
//! columns are bound to real-valued coordinates of a joint pdf.

use crate::error::{EngineError, Result};
use crate::interval_of_cmp;
use crate::schema::ProbSchema;
use crate::value::Value;
use orion_pdf::prelude::RegionSet;
use std::cmp::Ordering;
use std::fmt;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl CmpOp {
    /// Applies the operator to an ordering.
    pub fn test(&self, ord: Ordering) -> bool {
        match self {
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
        }
    }

    /// The mirrored operator (for `const op col` normalization).
    pub fn flip(&self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
        };
        write!(f, "{s}")
    }
}

/// A scalar term: a column reference or a literal.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// Column reference by name.
    Col(String),
    /// Literal constant.
    Lit(Value),
}

impl Scalar {
    /// Shorthand column reference.
    pub fn col(name: &str) -> Self {
        Scalar::Col(name.to_string())
    }

    /// Shorthand literal.
    pub fn lit(v: impl Into<Value>) -> Self {
        Scalar::Lit(v.into())
    }
}

/// A boolean predicate tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `left op right`.
    Cmp(Scalar, CmpOp, Scalar),
    /// Conjunction (empty = TRUE).
    And(Vec<Predicate>),
    /// Disjunction (empty = FALSE).
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Shorthand: `col op lit`.
    pub fn cmp(col: &str, op: CmpOp, v: impl Into<Value>) -> Self {
        Predicate::Cmp(Scalar::col(col), op, Scalar::lit(v))
    }

    /// Shorthand: `col1 op col2`.
    pub fn cmp_cols(a: &str, op: CmpOp, b: &str) -> Self {
        Predicate::Cmp(Scalar::col(a), op, Scalar::col(b))
    }

    /// All column names referenced, deduplicated.
    pub fn columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.dedup();
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            Predicate::Cmp(a, _, b) => {
                for s in [a, b] {
                    if let Scalar::Col(c) = s {
                        if !out.contains(c) {
                            out.push(c.clone());
                        }
                    }
                }
            }
            Predicate::And(ps) | Predicate::Or(ps) => {
                for p in ps {
                    p.collect_columns(out);
                }
            }
            Predicate::Not(p) => p.collect_columns(out),
        }
    }

    /// Validates every referenced column exists in `schema`.
    pub fn validate(&self, schema: &ProbSchema) -> Result<()> {
        for c in self.columns() {
            if schema.column(&c).is_none() {
                return Err(EngineError::Predicate(format!("unknown column '{c}'")));
            }
        }
        Ok(())
    }

    /// Three-valued evaluation with a value lookup. `None` means UNKNOWN
    /// (a `NULL` was involved); selections treat UNKNOWN as false.
    pub fn eval(&self, lookup: &impl Fn(&str) -> Value) -> Option<bool> {
        match self {
            Predicate::Cmp(a, op, b) => {
                let va = match a {
                    Scalar::Col(c) => lookup(c),
                    Scalar::Lit(v) => v.clone(),
                };
                let vb = match b {
                    Scalar::Col(c) => lookup(c),
                    Scalar::Lit(v) => v.clone(),
                };
                // Ne on incomparable non-null types is still UNKNOWN —
                // comparisons require comparable operands.
                va.compare(&vb).map(|ord| op.test(ord))
            }
            Predicate::And(ps) => {
                let mut unknown = false;
                for p in ps {
                    match p.eval(lookup) {
                        Some(false) => return Some(false),
                        None => unknown = true,
                        Some(true) => {}
                    }
                }
                if unknown {
                    None
                } else {
                    Some(true)
                }
            }
            Predicate::Or(ps) => {
                let mut unknown = false;
                for p in ps {
                    match p.eval(lookup) {
                        Some(true) => return Some(true),
                        None => unknown = true,
                        Some(false) => {}
                    }
                }
                if unknown {
                    None
                } else {
                    Some(false)
                }
            }
            Predicate::Not(p) => p.eval(lookup).map(|b| !b),
        }
    }

    /// Splits a conjunction into its atomic conjuncts (a non-`And` predicate
    /// yields itself). Used by the selection fast path.
    pub fn conjuncts(&self) -> Vec<&Predicate> {
        match self {
            Predicate::And(ps) => ps.iter().flat_map(|p| p.conjuncts()).collect(),
            other => vec![other],
        }
    }

    /// If this atom is `col op numeric-literal` (or the mirrored form) over
    /// a single column, returns `(column, failing-region)`: the region of
    /// the column's domain where the predicate is FALSE — exactly what must
    /// be floored. Returns `None` for any other shape.
    pub fn single_column_floor(&self) -> Option<(String, RegionSet)> {
        let (col, op, v) = match self {
            Predicate::Cmp(Scalar::Col(c), op, Scalar::Lit(v)) => (c, *op, v),
            Predicate::Cmp(Scalar::Lit(v), op, Scalar::Col(c)) => (c, op.flip(), v),
            _ => return None,
        };
        let x = v.as_f64()?;
        Some((col.clone(), interval_of_cmp::failing_region(op, x)))
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Cmp(a, op, b) => {
                let s = |x: &Scalar| match x {
                    Scalar::Col(c) => c.clone(),
                    Scalar::Lit(v) => v.to_string(),
                };
                write!(f, "{} {op} {}", s(a), s(b))
            }
            Predicate::And(ps) => {
                let parts: Vec<String> = ps.iter().map(|p| format!("({p})")).collect();
                write!(f, "{}", parts.join(" AND "))
            }
            Predicate::Or(ps) => {
                let parts: Vec<String> = ps.iter().map(|p| format!("({p})")).collect();
                write!(f, "{}", parts.join(" OR "))
            }
            Predicate::Not(p) => write!(f, "NOT ({p})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;
    use orion_pdf::prelude::Interval;

    fn lookup<'a>(pairs: &'a [(&'a str, Value)]) -> impl Fn(&str) -> Value + 'a {
        move |name| {
            pairs.iter().find(|(n, _)| *n == name).map(|(_, v)| v.clone()).unwrap_or(Value::Null)
        }
    }

    #[test]
    fn cmp_evaluation() {
        let p = Predicate::cmp("a", CmpOp::Lt, 5i64);
        assert_eq!(p.eval(&lookup(&[("a", Value::Int(3))])), Some(true));
        assert_eq!(p.eval(&lookup(&[("a", Value::Int(7))])), Some(false));
        assert_eq!(p.eval(&lookup(&[("a", Value::Null)])), None);
    }

    #[test]
    fn three_valued_and_or() {
        let p = Predicate::And(vec![
            Predicate::cmp("a", CmpOp::Gt, 0i64),
            Predicate::cmp("b", CmpOp::Gt, 0i64),
        ]);
        // FALSE AND UNKNOWN = FALSE.
        assert_eq!(p.eval(&lookup(&[("a", Value::Int(-1)), ("b", Value::Null)])), Some(false));
        // TRUE AND UNKNOWN = UNKNOWN.
        assert_eq!(p.eval(&lookup(&[("a", Value::Int(1)), ("b", Value::Null)])), None);
        let q = Predicate::Or(vec![
            Predicate::cmp("a", CmpOp::Gt, 0i64),
            Predicate::cmp("b", CmpOp::Gt, 0i64),
        ]);
        // TRUE OR UNKNOWN = TRUE.
        assert_eq!(q.eval(&lookup(&[("a", Value::Int(1)), ("b", Value::Null)])), Some(true));
        // FALSE OR UNKNOWN = UNKNOWN.
        assert_eq!(q.eval(&lookup(&[("a", Value::Int(-1)), ("b", Value::Null)])), None);
    }

    #[test]
    fn not_propagates_unknown() {
        let p = Predicate::Not(Box::new(Predicate::cmp("a", CmpOp::Eq, 1i64)));
        assert_eq!(p.eval(&lookup(&[("a", Value::Int(1))])), Some(false));
        assert_eq!(p.eval(&lookup(&[("a", Value::Null)])), None);
    }

    #[test]
    fn columns_and_validation() {
        let p = Predicate::And(vec![
            Predicate::cmp_cols("a", CmpOp::Lt, "b"),
            Predicate::cmp("a", CmpOp::Gt, 0i64),
        ]);
        assert_eq!(p.columns(), vec!["a".to_string(), "b".to_string()]);
        let schema = ProbSchema::new(
            vec![("a", ColumnType::Real, true), ("b", ColumnType::Real, true)],
            vec![],
        )
        .unwrap();
        assert!(p.validate(&schema).is_ok());
        let bad = Predicate::cmp("zzz", CmpOp::Eq, 1i64);
        assert!(bad.validate(&schema).is_err());
    }

    #[test]
    fn conjuncts_flatten_nested_ands() {
        let p = Predicate::And(vec![
            Predicate::And(vec![
                Predicate::cmp("a", CmpOp::Lt, 1i64),
                Predicate::cmp("b", CmpOp::Lt, 2i64),
            ]),
            Predicate::cmp("c", CmpOp::Lt, 3i64),
        ]);
        assert_eq!(p.conjuncts().len(), 3);
    }

    #[test]
    fn single_column_floor_shapes() {
        // x < 5 fails on [5, inf).
        let (c, r) = Predicate::cmp("x", CmpOp::Lt, 5i64).single_column_floor().unwrap();
        assert_eq!(c, "x");
        assert!(r.contains(5.0) && r.contains(100.0) && !r.contains(4.999));
        // Mirrored: 5 > x  ==  x < 5.
        let (c2, r2) = Predicate::Cmp(Scalar::lit(5i64), CmpOp::Gt, Scalar::col("x"))
            .single_column_floor()
            .unwrap();
        assert_eq!(c2, "x");
        assert_eq!(r2, r);
        // Column-column atoms have no single-column floor.
        assert!(Predicate::cmp_cols("x", CmpOp::Lt, "y").single_column_floor().is_none());
        // Text literal: not a numeric floor.
        assert!(Predicate::cmp("x", CmpOp::Eq, "abc").single_column_floor().is_none());
    }

    #[test]
    fn failing_region_eq_ne() {
        let (_, r) = Predicate::cmp("x", CmpOp::Eq, 3i64).single_column_floor().unwrap();
        // Everything except the point 3 fails.
        assert!(r.contains(2.999) && r.contains(3.001) && !r.contains(3.0));
        let (_, r) = Predicate::cmp("x", CmpOp::Ne, 3i64).single_column_floor().unwrap();
        assert!(!r.contains(2.0) && r.contains(3.0));
        let _ = Interval::all();
    }

    #[test]
    fn display_round_trip_shapes() {
        let p = Predicate::And(vec![
            Predicate::cmp_cols("a", CmpOp::Lt, "b"),
            Predicate::cmp("a", CmpOp::Ge, 2i64),
        ]);
        assert_eq!(p.to_string(), "(a < b) AND (a >= 2)");
    }
}
