//! Cross product and join (paper Section III-D).
//!
//! `T1 ⋈_θ T2 = σ_θ(T1 × T2)`. The cross product concatenates schemas and
//! copies pdf nodes; the subsequent selection introduces the new
//! dependencies. Tuples combined from historically dependent sources (e.g.
//! two projections of the same base table, Figure 3) are recombined through
//! their common ancestors — eagerly when
//! [`ExecOptions::eager_collapse`](crate::select::ExecOptions) is set,
//! otherwise lazily at the next operation that needs the joint.

use crate::collapse;
use crate::error::{EngineError, Result};
use crate::history::HistoryRegistry;
use crate::predicate::Predicate;
use crate::relation::Relation;
use crate::schema::{Column, ProbSchema};
use crate::select::{select, ExecOptions};
use crate::tuple::ProbTuple;
use crate::value::Value;

/// Nested-loop join used as the correctness oracle for the hash path
/// (exposed for tests and ablation benchmarks). Pairs whose *certain*
/// equi-join attributes already mismatch are skipped before any pdf work
/// (counted as `pairs_pruned`); the full predicate is still applied to the
/// survivors, so results are identical to an unfiltered cross + select.
pub fn join_nested_loop(
    left: &Relation,
    right: &Relation,
    pred: Option<&Predicate>,
    reg: &mut HistoryRegistry,
    opts: &ExecOptions,
) -> Result<Relation> {
    let template = cross(&left.clone_empty(), &right.clone_empty(), reg, opts)?;
    let equalities = pred.map_or_else(Vec::new, |p| certain_equalities(&template.schema, p));
    let crossed = if equalities.is_empty() {
        cross(left, right, reg, opts)?
    } else {
        cross_prefiltered(left, right, &template, &equalities, reg, opts)?
    };
    finish_join(crossed, pred, reg, opts)
}

/// The cross product `T1 × T2`.
///
/// Column names are disambiguated with a `name.` prefix when both inputs
/// share a name. Two views of the same base table may share *certain*
/// columns (their values simply appear twice — the Figure 3 pipeline);
/// sharing an **uncertain** column is rejected because one pdf identity
/// cannot occupy two result columns — alias (deep-copy) one side first.
pub fn cross(
    left: &Relation,
    right: &Relation,
    reg: &mut HistoryRegistry,
    opts: &ExecOptions,
) -> Result<Relation> {
    for cl in left.schema.columns().iter().filter(|c| c.uncertain) {
        if right.schema.columns().iter().any(|cr| cr.id == cl.id) {
            return Err(EngineError::Operator(format!(
                "self-join on shared uncertain attribute '{}' — alias one side first",
                cl.name
            )));
        }
    }
    let mut columns: Vec<Column> = Vec::new();
    for c in left.schema.columns() {
        let mut col = c.clone();
        if right.schema.column(&c.name).is_some() {
            col.name = format!("{}.{}", left.name, c.name);
        }
        columns.push(col);
    }
    for c in right.schema.columns() {
        let mut col = c.clone();
        if left.schema.column(&c.name).is_some() {
            col.name = format!("{}.{}", right.name, c.name);
        }
        columns.push(col);
    }
    let mut deps = left.schema.deps().to_vec();
    deps.extend_from_slice(right.schema.deps());
    let schema = ProbSchema::from_columns(columns, deps);
    let mut out = Relation::new(format!("({} x {})", left.name, right.name), schema);

    // Phase 1 (parallel): pair materialization fans out over left tuples.
    let groups = crate::exec_par::run_tuples_mode(&left.tuples, opts, |_, tl| {
        Ok(right.tuples.iter().map(|tr| pair_tuple(tl, tr)).collect::<Vec<_>>())
    })?;
    // Phase 2 (serial, in input order): reference-count commits.
    out.tuples.reserve(left.len() * right.len());
    for group in groups {
        for t in group {
            for n in &t.nodes {
                reg.add_refs(&n.ancestors);
            }
            out.tuples.push(t);
        }
    }
    Ok(out)
}

/// Reads crossed-row position `i` from an (unmaterialized) left/right pair
/// — the first `n_left` positions come from the left tuple. This is the
/// single access path the certain-equality prefilter uses in both row and
/// batch mode, equivalent to indexing `pair_tuple(tl, tr).certain[i]`
/// without materializing the pair.
fn crossed_value<'a>(tl: &'a ProbTuple, tr: &'a ProbTuple, n_left: usize, i: usize) -> &'a Value {
    if i < n_left {
        &tl.certain[i]
    } else {
        &tr.certain[i - n_left]
    }
}

/// Concatenates a left and a right tuple (no registry side effects).
fn pair_tuple(tl: &ProbTuple, tr: &ProbTuple) -> ProbTuple {
    let mut certain = tl.certain.clone();
    certain.extend(tr.certain.iter().cloned());
    let mut nodes = tl.nodes.clone();
    nodes.extend(tr.nodes.iter().cloned());
    ProbTuple { certain, nodes }
}

/// The certain-certain equality conjuncts of a join predicate, resolved
/// once against the crossed schema to value positions `(i, j)` into the
/// crossed row. These can be decided from certain values alone, so a
/// mismatching pair can be skipped before any pdf work — and resolving
/// names here keeps string lookups off the per-pair hot path.
fn certain_equalities(crossed_schema: &ProbSchema, pred: &Predicate) -> Vec<(usize, usize)> {
    let certain_idx = |name: &str| -> Option<usize> {
        let idx = crossed_schema.index_of(name)?;
        (!crossed_schema.columns()[idx].uncertain).then_some(idx)
    };
    pred.conjuncts()
        .into_iter()
        .filter_map(|conj| match conj {
            Predicate::Cmp(
                crate::predicate::Scalar::Col(a),
                crate::predicate::CmpOp::Eq,
                crate::predicate::Scalar::Col(b),
            ) => Some((certain_idx(a)?, certain_idx(b)?)),
            _ => None,
        })
        .collect()
}

/// Nested-loop cross product that skips pairs whose certain equi-join
/// attributes mismatch. Only a definite `false` prunes (three-valued
/// logic: an equality involving NULL is unknown, and the full predicate
/// applied afterwards is what decides those pairs), so the surviving pairs
/// select to exactly the unfiltered result.
fn cross_prefiltered(
    left: &Relation,
    right: &Relation,
    template: &Relation,
    equalities: &[(usize, usize)],
    reg: &mut HistoryRegistry,
    opts: &ExecOptions,
) -> Result<Relation> {
    let mut out = Relation::new(template.name.clone(), template.schema.clone());
    let n_left = left.schema.columns().len();
    // Phase 1 (parallel): evaluate the pre-resolved certain equalities per
    // pair. A comparison involving NULL (or incomparable types) yields
    // `None` — UNKNOWN, never pruned — matching `Predicate::eval`. Both
    // execution modes run this same closure through `run_tuples_mode`, so
    // pair access goes through one path (`crossed_value`) rather than a
    // row-mode-only shortcut into the relation.
    let groups = crate::exec_par::run_tuples_mode(&left.tuples, opts, |_, tl| {
        let mut matches = Vec::new();
        let mut pruned = 0u64;
        for tr in &right.tuples {
            if equalities.iter().any(|&(ia, ib)| {
                matches!(
                    crossed_value(tl, tr, n_left, ia).compare(crossed_value(tl, tr, n_left, ib)),
                    Some(ord) if ord != std::cmp::Ordering::Equal
                )
            }) {
                pruned += 1;
                continue;
            }
            matches.push(pair_tuple(tl, tr));
        }
        if let Some(s) = opts.stats_ref() {
            s.pairs_pruned.add(pruned);
        }
        Ok(matches)
    })?;
    // Phase 2 (serial, in input order): reference-count commits.
    for group in groups {
        for t in group {
            for n in &t.nodes {
                reg.add_refs(&n.ancestors);
            }
            out.tuples.push(t);
        }
    }
    Ok(out)
}

/// Extracts a hash-joinable equality over *certain* columns from the
/// predicate's top-level conjuncts, resolving names against the crossed
/// schema (whose first `n_left` columns come from the left input). Returns
/// `(left index, right index)` into the respective inputs.
fn equi_key(
    crossed_schema: &ProbSchema,
    n_left: usize,
    pred: &Predicate,
) -> Option<(usize, usize)> {
    for conj in pred.conjuncts() {
        if let Predicate::Cmp(
            crate::predicate::Scalar::Col(a),
            crate::predicate::CmpOp::Eq,
            crate::predicate::Scalar::Col(b),
        ) = conj
        {
            let certain_idx = |name: &str| -> Option<usize> {
                let col = crossed_schema.column(name)?;
                (!col.uncertain).then(|| crossed_schema.index_of(name).expect("column exists"))
            };
            let (Some(ia), Some(ib)) = (certain_idx(a), certain_idx(b)) else {
                continue;
            };
            if ia < n_left && ib >= n_left {
                return Some((ia, ib - n_left));
            }
            if ib < n_left && ia >= n_left {
                return Some((ib, ia - n_left));
            }
        }
    }
    None
}

/// Hash-partitioned cross product: only pairs whose certain key columns
/// match are materialized. The full predicate is still applied afterwards,
/// so this is a pure optimization of `cross`. Pairs the partitioning
/// avoids are counted as `pairs_pruned`.
fn cross_matching(
    left: &Relation,
    right: &Relation,
    template: &Relation,
    key: (usize, usize),
    reg: &mut HistoryRegistry,
    opts: &ExecOptions,
) -> Result<Relation> {
    use crate::pws::CanonValue;
    let mut out = Relation::new(template.name.clone(), template.schema.clone());
    let mut buckets: std::collections::HashMap<CanonValue, Vec<usize>> = Default::default();
    for (i, t) in right.tuples.iter().enumerate() {
        buckets.entry(CanonValue::from(&t.certain[key.1])).or_default().push(i);
    }
    // Phase 1 (parallel): probe the shared bucket table per left tuple.
    let groups = crate::exec_par::run_tuples_mode(&left.tuples, opts, |_, tl| {
        let matches = buckets.get(&CanonValue::from(&tl.certain[key.0]));
        let hits: Vec<ProbTuple> = matches
            .map(|ms| ms.iter().map(|&ri| pair_tuple(tl, &right.tuples[ri])).collect())
            .unwrap_or_default();
        if let Some(s) = opts.stats_ref() {
            s.pairs_pruned.add((right.tuples.len() - hits.len()) as u64);
        }
        Ok(hits)
    })?;
    // Phase 2 (serial, in input order): reference-count commits.
    for group in groups {
        for t in group {
            for n in &t.nodes {
                reg.add_refs(&n.ancestors);
            }
            out.tuples.push(t);
        }
    }
    Ok(out)
}

impl Relation {
    /// A copy of this relation with no tuples (schema/naming only).
    pub(crate) fn clone_empty(&self) -> Relation {
        Relation { name: self.name.clone(), schema: self.schema.clone(), tuples: Vec::new() }
    }
}

/// The join `T1 ⋈_θ T2 = σ_θ(T1 × T2)`; pass `None` for a pure cross
/// product with collapse policy applied. When θ contains a certain-column
/// equality conjunct, the cross product is hash-partitioned on it.
pub fn join(
    left: &Relation,
    right: &Relation,
    pred: Option<&Predicate>,
    reg: &mut HistoryRegistry,
    opts: &ExecOptions,
) -> Result<Relation> {
    let template = cross(&left.clone_empty(), &right.clone_empty(), reg, opts)?;
    let crossed =
        match pred.and_then(|p| equi_key(&template.schema, left.schema.columns().len(), p)) {
            Some(key) => cross_matching(left, right, &template, key, reg, opts)?,
            None => cross(left, right, reg, opts)?,
        };
    finish_join(crossed, pred, reg, opts)
}

/// Applies the join predicate and the collapse policy to a crossed input.
fn finish_join(
    crossed: Relation,
    pred: Option<&Predicate>,
    reg: &mut HistoryRegistry,
    opts: &ExecOptions,
) -> Result<Relation> {
    let mut result = match pred {
        Some(p) => {
            let r = select(&crossed, p, reg, opts)?;
            crossed.release(reg);
            r
        }
        None => crossed,
    };
    if opts.eager_collapse && opts.use_histories {
        // Phase 1 (parallel): the history-aware collapse reads the
        // registry immutably.
        let reg_ref: &HistoryRegistry = reg;
        let computed = crate::exec_par::run_tuples_mode(&result.tuples, opts, |_, t| {
            collapse::collapse_tuple_with_stats(t, reg_ref, opts.resolution, opts.stats_ref())
        })?;
        // Phase 2 (serial, in input order): reference transfers.
        let mut collapsed = Vec::with_capacity(computed.len());
        for (t, c) in result.tuples.iter().zip(computed) {
            if c.is_vacuous() {
                // Historically impossible combination (e.g. Figure 3's
                // phantom pairs): drop it.
                for n in &t.nodes {
                    reg.release_refs(&n.ancestors);
                }
                continue;
            }
            // Transfer references from the old nodes to the collapsed ones.
            for n in &t.nodes {
                reg.release_refs(&n.ancestors);
            }
            for n in &c.nodes {
                reg.add_refs(&n.ancestors);
            }
            collapsed.push(c);
        }
        result.tuples = collapsed;
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use crate::project::project;
    use crate::schema::{ColumnType, ProbSchema};
    use crate::value::Value;
    use orion_pdf::prelude::*;

    fn sensors() -> (Relation, Relation, HistoryRegistry) {
        let mut reg = HistoryRegistry::new();
        let s1 = ProbSchema::new(
            vec![("id", ColumnType::Int, false), ("x", ColumnType::Real, true)],
            vec![],
        )
        .unwrap();
        let mut r1 = Relation::new("L", s1);
        r1.insert_simple(
            &mut reg,
            &[("id", Value::Int(1))],
            &[("x", Pdf1::discrete(vec![(1.0, 0.5), (3.0, 0.5)]).unwrap())],
        )
        .unwrap();
        let s2 = ProbSchema::new(
            vec![("id", ColumnType::Int, false), ("y", ColumnType::Real, true)],
            vec![],
        )
        .unwrap();
        let mut r2 = Relation::new("R", s2);
        r2.insert_simple(
            &mut reg,
            &[("id", Value::Int(7))],
            &[("y", Pdf1::discrete(vec![(2.0, 0.5), (4.0, 0.5)]).unwrap())],
        )
        .unwrap();
        (r1, r2, reg)
    }

    #[test]
    fn cross_product_concatenates() {
        let (r1, r2, mut reg) = sensors();
        let c = cross(&r1, &r2, &mut reg, &ExecOptions::default()).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.schema.columns().len(), 4);
        // Shared column name gets qualified.
        assert!(c.schema.column("L.id").is_some());
        assert!(c.schema.column("R.id").is_some());
        assert_eq!(c.tuples[0].nodes.len(), 2);
    }

    #[test]
    fn join_with_uncertain_predicate() {
        let (r1, r2, mut reg) = sensors();
        let out = join(
            &r1,
            &r2,
            Some(&Predicate::cmp_cols("x", CmpOp::Lt, "y")),
            &mut reg,
            &ExecOptions::default(),
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        let t = &out.tuples[0];
        // Worlds: (1,2) .25, (1,4) .25, (3,4) .25 pass; (3,2) fails.
        assert!((t.naive_existence() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn hash_equi_join_matches_nested_loop() {
        let mut reg = HistoryRegistry::new();
        let mk = |name: &str, col: &str, reg: &mut HistoryRegistry| {
            let s = ProbSchema::new(
                vec![("id", ColumnType::Int, false), (col, ColumnType::Real, true)],
                vec![],
            )
            .unwrap();
            let mut r = Relation::new(name, s);
            for id in 1..=4i64 {
                r.insert_simple(
                    reg,
                    &[("id", Value::Int(id))],
                    &[(
                        col,
                        Pdf1::discrete(vec![(id as f64, 0.5), (id as f64 + 1.0, 0.5)]).unwrap(),
                    )],
                )
                .unwrap();
            }
            r
        };
        let l = mk("L", "x", &mut reg);
        let r = mk("R", "y", &mut reg);
        let opts = ExecOptions::default();
        let pred = Predicate::And(vec![
            Predicate::cmp_cols("L.id", CmpOp::Eq, "R.id"),
            Predicate::cmp_cols("x", CmpOp::Le, "y"),
        ]);
        let a = join(&l, &r, Some(&pred), &mut reg, &opts).unwrap();
        let b = join_nested_loop(&l, &r, Some(&pred), &mut reg, &opts).unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), 4, "only same-id pairs match");
        for (ta, tb) in a.tuples.iter().zip(&b.tuples) {
            assert_eq!(ta.certain, tb.certain);
            assert!((ta.naive_existence() - tb.naive_existence()).abs() < 1e-12);
        }
    }

    #[test]
    fn nested_loop_prunes_certain_mismatches_and_counts_them() {
        // 4x4 pairs, only the 4 same-id ones survive the certain equality:
        // the prefilter must skip the other 12 before any pdf work and
        // still produce the same relation as an unfiltered cross + select.
        let mut reg = HistoryRegistry::new();
        let mk = |name: &str, col: &str, reg: &mut HistoryRegistry| {
            let s = ProbSchema::new(
                vec![("id", ColumnType::Int, false), (col, ColumnType::Real, true)],
                vec![],
            )
            .unwrap();
            let mut r = Relation::new(name, s);
            for id in 1..=4i64 {
                r.insert_simple(
                    reg,
                    &[("id", Value::Int(id))],
                    &[(col, Pdf1::gaussian(id as f64, 1.0).unwrap())],
                )
                .unwrap();
            }
            r
        };
        let l = mk("L", "x", &mut reg);
        let r = mk("R", "y", &mut reg);
        let pred = Predicate::And(vec![
            Predicate::cmp_cols("L.id", CmpOp::Eq, "R.id"),
            Predicate::cmp_cols("x", CmpOp::Le, "y"),
        ]);

        let stats = std::sync::Arc::new(orion_obs::ExecStats::new());
        let opts = ExecOptions { stats: Some(stats.clone()), ..ExecOptions::default() };
        let pruned_out = join_nested_loop(&l, &r, Some(&pred), &mut reg, &opts).unwrap();
        assert_eq!(stats.snapshot().pairs_pruned, 12);

        // Oracle: full cross + selection, no prefilter.
        let unfiltered =
            finish_join(cross(&l, &r, &mut reg, &opts).unwrap(), Some(&pred), &mut reg, &opts)
                .unwrap();
        assert_eq!(pruned_out.tuples, unfiltered.tuples);
    }

    #[test]
    fn null_keys_never_pruned_in_batch_mode() {
        // 3VL regression: a certain-equality involving NULL is UNKNOWN, so
        // the prefilter must not prune the pair in either mode — the full
        // predicate decides it (UNKNOWN -> filtered, but via select, with
        // the same counters).
        use crate::batch::ExecMode;
        let mut reg = HistoryRegistry::new();
        let mk = |name: &str, col: &str, ids: &[Option<i64>], reg: &mut HistoryRegistry| {
            let s = ProbSchema::new(
                vec![("id", ColumnType::Int, false), (col, ColumnType::Real, true)],
                vec![],
            )
            .unwrap();
            let mut r = Relation::new(name, s);
            for (k, id) in ids.iter().enumerate() {
                let idv = id.map(Value::Int).unwrap_or(Value::Null);
                r.insert_simple(
                    reg,
                    &[("id", idv)],
                    &[(col, Pdf1::gaussian(k as f64, 1.0).unwrap())],
                )
                .unwrap();
            }
            r
        };
        let l = mk("L", "x", &[Some(1), None, Some(3)], &mut reg);
        let r = mk("R", "y", &[Some(1), Some(2), None], &mut reg);
        let pred = Predicate::cmp_cols("L.id", CmpOp::Eq, "R.id");

        let run = |mode: ExecMode, reg0: &HistoryRegistry| {
            let mut reg = reg0.clone();
            let stats = std::sync::Arc::new(orion_obs::ExecStats::new());
            let opts = ExecOptions {
                mode,
                stats: Some(stats.clone()),
                morsel_size: 2,
                ..ExecOptions::default()
            };
            let out = join_nested_loop(&l, &r, Some(&pred), &mut reg, &opts).unwrap();
            (out, stats.snapshot().pairs_pruned, reg)
        };
        let (row, row_pruned, reg_row) = run(ExecMode::Row, &reg);
        let (batch, batch_pruned, reg_batch) = run(ExecMode::Batch, &reg);
        // Only definite mismatches prune: the 3 pairs of non-NULL unequal
        // ids — (1,2), (3,1), (3,2); the 5 NULL-involving pairs all
        // survive to the full predicate.
        assert_eq!(row_pruned, 3);
        assert_eq!(batch_pruned, row_pruned);
        assert_eq!(row.len(), 1, "only the (1,1) pair joins");
        assert_eq!(batch.tuples, row.tuples, "modes agree bitwise");
        assert_eq!(reg_batch.len(), reg_row.len());
        assert_eq!(reg_batch.last_id(), reg_row.last_id());
    }

    #[test]
    fn self_join_requires_alias() {
        let (r1, _, mut reg) = sensors();
        assert!(cross(&r1, &r1, &mut reg, &ExecOptions::default()).is_err());
    }

    #[test]
    fn fig3_join_with_histories_is_correct() {
        // Full Figure 3 pipeline: T(a,b) joint; Ta = Π_a(T);
        // Tb = Π_b(σ_{b>4}(T)); Ta × Tb with eager collapse.
        let mut reg = HistoryRegistry::new();
        let schema = ProbSchema::new(
            vec![("a", ColumnType::Int, true), ("b", ColumnType::Int, true)],
            vec![vec!["a", "b"]],
        )
        .unwrap();
        let mut t = Relation::new("T", schema);
        t.insert(
            &mut reg,
            &[],
            vec![(
                vec!["a", "b"],
                JointPdf::from_points(
                    JointDiscrete::from_points(
                        2,
                        vec![(vec![4.0, 5.0], 0.9), (vec![2.0, 3.0], 0.1)],
                    )
                    .unwrap(),
                ),
            )],
        )
        .unwrap();
        t.insert(
            &mut reg,
            &[],
            vec![(
                vec!["a", "b"],
                JointPdf::from_points(
                    JointDiscrete::from_points(2, vec![(vec![7.0, 3.0], 0.7)]).unwrap(),
                ),
            )],
        )
        .unwrap();
        let opts = ExecOptions::default();
        let ta = project(&t, &["a"], &mut reg, &opts).unwrap();
        let sel = select(&t, &Predicate::cmp("b", CmpOp::Gt, 4i64), &mut reg, &opts).unwrap();
        let tb = project(&sel, &["b"], &mut reg, &opts).unwrap();
        assert_eq!(tb.len(), 1, "t2 fails b > 4 entirely");

        let joined = join(&ta, &tb, None, &mut reg, &opts).unwrap();
        assert_eq!(joined.len(), 2);
        // t'1 = ta1 x tb1 (same ancestor): joint must be Discrete({4,5}:0.9).
        let a_id = t.schema.column("a").unwrap().id;
        let b_id = t.schema.column("b").unwrap().id;
        let t1 = joined
            .tuples
            .iter()
            .find(|tp| {
                tp.nodes
                    .iter()
                    .any(|n| n.covers(a_id) && n.marginal(a_id).unwrap().density(4.0) > 0.0)
            })
            .expect("t'1 present");
        let n = t1.node_for(a_id).unwrap();
        assert!(n.covers(b_id), "collapsed into one joint node");
        let pa = n.dim_of(a_id).unwrap();
        let pb = n.dim_of(b_id).unwrap();
        let mut pt = vec![0.0; n.dims.len()];
        pt[pa] = 4.0;
        pt[pb] = 5.0;
        assert!((n.joint.density(&pt) - 0.9).abs() < 1e-12, "paper's T2, not T1");
        pt[pa] = 2.0;
        assert_eq!(n.joint.density(&pt), 0.0, "phantom world (2,5) excluded");
        assert!((t1.naive_existence() - 0.9).abs() < 1e-12);
        // t'2 = ta2 x tb1 (independent): {7,5} with 0.7 * 0.9 = 0.63.
        let t2 = joined
            .tuples
            .iter()
            .find(|tp| {
                tp.nodes
                    .iter()
                    .any(|n| n.covers(a_id) && n.marginal(a_id).unwrap().density(7.0) > 0.0)
            })
            .expect("t'2 present");
        assert!((t2.naive_existence() - 0.63).abs() < 1e-12);
        // Regression: column b of t'2 must resolve to Tb's visible node
        // (b = 5 w.p. 0.9), not to Ta's phantom copy of tuple 2's own b.
        let mb = t2.node_for(b_id).unwrap().marginal(b_id).unwrap();
        assert!((mb.density(5.0) - 0.9).abs() < 1e-12);
        assert_eq!(mb.density(3.0), 0.0);
    }

    #[test]
    fn fig3_join_without_histories_is_wrong() {
        // The ablation: histories off reproduces the paper's incorrect T1.
        let mut reg = HistoryRegistry::new();
        let schema = ProbSchema::new(
            vec![("a", ColumnType::Int, true), ("b", ColumnType::Int, true)],
            vec![vec!["a", "b"]],
        )
        .unwrap();
        let mut t = Relation::new("T", schema);
        t.insert(
            &mut reg,
            &[],
            vec![(
                vec!["a", "b"],
                JointPdf::from_points(
                    JointDiscrete::from_points(
                        2,
                        vec![(vec![4.0, 5.0], 0.9), (vec![2.0, 3.0], 0.1)],
                    )
                    .unwrap(),
                ),
            )],
        )
        .unwrap();
        let opts = ExecOptions { use_histories: false, ..ExecOptions::default() };
        let ta = project(&t, &["a"], &mut reg, &opts).unwrap();
        let sel = select(&t, &Predicate::cmp("b", CmpOp::Gt, 4i64), &mut reg, &opts).unwrap();
        let tb = project(&sel, &["b"], &mut reg, &opts).unwrap();
        let joined = join(&ta, &tb, None, &mut reg, &opts).unwrap();
        // Naive product: 1.0 (marginal a mass) * 0.9 (floored b mass) = 0.9
        // but distributed wrongly: P(a=4, b=5) = 0.81 and the phantom
        // (2, 5) carries 0.09.
        let t1 = &joined.tuples[0];
        assert_eq!(t1.nodes.len(), 2, "no collapse without histories");
        let a_id = t.schema.column("a").unwrap().id;
        let m = t1.node_for(a_id).unwrap().marginal(a_id).unwrap();
        assert!((m.density(2.0) - 0.1).abs() < 1e-12, "phantom world kept");
        assert!((t1.naive_existence() - 0.9).abs() < 1e-12);
    }
}
