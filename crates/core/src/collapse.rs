//! History-aware combination of pdf nodes — the paper's `product` operator
//! for historically *dependent* operands (Section III-A), and the collapse
//! of a tuple's dependent dependency sets after joins (Section III-D).
//!
//! For nodes with common ancestors `t_j.N_j`, the combined joint over
//! `S' = S1 ∪ S2` is reconstructed as
//!
//! ```text
//! f(x_S') = 0                                   if f1(x_S1) = 0 or f2(x_S2) = 0
//!         = f(x_D1) · f(x_D2) · Π_j f(x_Cj)     otherwise
//! ```
//!
//! where `C_j = N_j ∩ S'` comes from the *base* (unfloored) ancestor joint
//! and `D_k = S_k \ ∪C_j`. Sets are matched by **variable identity**
//! ([`VarId`](crate::tuple::VarId): which base pdf instance, which
//! dimension) — not by column id, since two tuples of the same table share
//! column ids but carry distinct random variables. Because database
//! operations only ever **zero** regions of pdfs (floors) and never
//! reweight them, the zero-set of the observed descendants captures every
//! floor applied since insertion, and this reconstruction is exact for
//! discrete data (grid-resolution-exact for continuous data).

use crate::error::{EngineError, Result};
use crate::history::HistoryRegistry;
use crate::tuple::{NodeDim, PdfNode, ProbTuple};
use orion_obs::ExecStats;
use orion_pdf::prelude::JointPdf;

/// Grid resolution (bins per dimension) used when continuous nodes must be
/// materialized during a collapse.
pub const DEFAULT_RESOLUTION: usize = 64;

/// Merges two nodes of the same tuple into one.
///
/// Historically independent nodes take the plain product; dependent ones
/// are reconstructed through their common ancestors as described in the
/// module docs.
pub fn merge_pair(
    n1: &PdfNode,
    n2: &PdfNode,
    reg: &HistoryRegistry,
    resolution: usize,
) -> Result<PdfNode> {
    merge_pair_with_stats(n1, n2, reg, resolution, None)
}

/// [`merge_pair`] with an optional stats collector counting the pdf
/// operations performed: one `product` for an independent merge; for a
/// dependent merge, one `collapse` plus the per-part products,
/// marginalizations, and the final floor of the reconstruction.
pub fn merge_pair_with_stats(
    n1: &PdfNode,
    n2: &PdfNode,
    reg: &HistoryRegistry,
    resolution: usize,
    stats: Option<&ExecStats>,
) -> Result<PdfNode> {
    let mut ancestors = n1.ancestors.clone();
    ancestors.extend(n2.ancestors.iter().copied());

    let common = HistoryRegistry::common(&n1.ancestors, &n2.ancestors);
    if common.is_empty() {
        // Independent: plain product (paper's first case). Variable sets
        // are necessarily disjoint — a shared VarId implies a shared
        // ancestor.
        debug_assert!(
            n1.dims.iter().all(|d| n2.dim_of_var(d.var).is_none()),
            "independent nodes must cover disjoint variables"
        );
        if let Some(s) = stats {
            s.pdf_products.inc();
        }
        let mut dims = n1.dims.clone();
        dims.extend_from_slice(&n2.dims);
        return Ok(PdfNode::new(dims, n1.joint.product(&n2.joint), ancestors));
    }
    if let Some(s) = stats {
        s.collapses.inc();
    }

    // Dependent: rebuild through common ancestors. Assemble parts in the
    // order D1, D2, C_1 .. C_m.
    let mut dims: Vec<NodeDim> = Vec::new();
    let mut joint: Option<JointPdf> = None;
    let push = |part_dims: Vec<NodeDim>,
                j: JointPdf,
                acc: &mut Option<JointPdf>,
                dims: &mut Vec<NodeDim>| {
        dims.extend(part_dims);
        *acc = Some(match acc.take() {
            None => j,
            Some(a) => {
                if let Some(s) = stats {
                    s.pdf_products.inc();
                }
                a.product(&j)
            }
        });
    };

    // D_k: dimensions of each node whose variable does not come from a
    // common ancestor.
    for n in [n1, n2] {
        let d_idx: Vec<usize> = n
            .dims
            .iter()
            .enumerate()
            .filter(|(_, d)| !common.contains(&d.var.base))
            .map(|(i, _)| i)
            .collect();
        if !d_idx.is_empty() {
            if let Some(s) = stats {
                s.pdf_marginalizations.inc();
            }
            let part = n.joint.marginalize(&d_idx)?;
            push(d_idx.iter().map(|&i| n.dims[i]).collect(), part, &mut joint, &mut dims);
        }
    }
    // A variable outside every common ancestor can belong to only one of
    // the nodes; duplicates here would mean an ill-formed history.
    for (i, d) in dims.iter().enumerate() {
        if dims[i + 1..].iter().any(|e| e.var == d.var) {
            return Err(EngineError::Operator(format!(
                "variable {:?} shared by both nodes but by no common ancestor — \
                 ill-formed history",
                d.var
            )));
        }
    }

    // C_j: the dimensions of each common ancestor present in either node,
    // taken from the base (unfloored) joint.
    for &j in &common {
        let base = reg.base(j)?;
        let mut keep: Vec<usize> = Vec::new();
        let mut part_dims: Vec<NodeDim> = Vec::new();
        for d in 0..base.joint.arity() {
            let var = crate::tuple::VarId { base: j, dim: d as u16 };
            let in1 = n1.dim_of_var(var);
            let in2 = n2.dim_of_var(var);
            if in1.is_none() && in2.is_none() {
                continue;
            }
            let column =
                in1.and_then(|i| n1.dims[i].column).or_else(|| in2.and_then(|i| n2.dims[i].column));
            keep.push(d);
            part_dims.push(NodeDim { var, column });
        }
        if keep.is_empty() {
            continue;
        }
        if let Some(s) = stats {
            s.pdf_marginalizations.inc();
        }
        let marginal = base.joint.marginalize(&keep)?;
        push(part_dims, marginal, &mut joint, &mut dims);
    }
    let joint = joint
        .ok_or_else(|| EngineError::Operator("dependent merge produced no components".into()))?;

    // Propagate the observed floors: zero wherever either descendant's
    // density is zero at the corresponding coordinates.
    let all_dims: Vec<usize> = (0..dims.len()).collect();
    let pos_of_var = |v: crate::tuple::VarId| {
        dims.iter().position(|d| d.var == v).expect("variable present in merged dims")
    };
    let idx1: Vec<usize> = n1.dims.iter().map(|d| pos_of_var(d.var)).collect();
    let idx2: Vec<usize> = n2.dims.iter().map(|d| pos_of_var(d.var)).collect();
    let order = joint.dim_order_after_merge(&all_dims);
    let j1 = n1.joint.clone();
    let j2 = n2.joint.clone();
    let mut buf1 = vec![0.0; idx1.len()];
    let mut buf2 = vec![0.0; idx2.len()];
    if let Some(s) = stats {
        s.pdf_floors.inc();
    }
    let floored = joint.floor_predicate(&all_dims, resolution, move |x| {
        for (b, &i) in buf1.iter_mut().zip(&idx1) {
            *b = x[i];
        }
        if j1.density(&buf1) <= 0.0 {
            return false;
        }
        for (b, &i) in buf2.iter_mut().zip(&idx2) {
            *b = x[i];
        }
        j2.density(&buf2) > 0.0
    })?;
    // floor_predicate may reorder dimensions when it merges non-adjacent
    // blocks; translate the dimension list the same way.
    let dims: Vec<NodeDim> = order.iter().map(|&i| dims[i]).collect();

    Ok(PdfNode::new(dims, floored, ancestors))
}

/// Merges a list of nodes (>= 1) left-to-right.
pub fn merge_nodes(
    nodes: &[&PdfNode],
    reg: &HistoryRegistry,
    resolution: usize,
) -> Result<PdfNode> {
    merge_nodes_with_stats(nodes, reg, resolution, None)
}

/// [`merge_nodes`] with an optional stats collector.
pub fn merge_nodes_with_stats(
    nodes: &[&PdfNode],
    reg: &HistoryRegistry,
    resolution: usize,
    stats: Option<&ExecStats>,
) -> Result<PdfNode> {
    let mut it = nodes.iter();
    let first = it.next().ok_or_else(|| EngineError::Operator("merge of zero nodes".into()))?;
    let mut acc = (*first).clone();
    for n in it {
        acc = merge_pair_with_stats(&acc, n, reg, resolution, stats)?;
    }
    Ok(acc)
}

/// Collapses every historically dependent group of nodes within a tuple
/// into a single node (the paper's eager strategy for Section III-D).
/// Independent nodes are left untouched.
pub fn collapse_tuple(
    tuple: &ProbTuple,
    reg: &HistoryRegistry,
    resolution: usize,
) -> Result<ProbTuple> {
    collapse_tuple_with_stats(tuple, reg, resolution, None)
}

/// [`collapse_tuple`] with an optional stats collector.
pub fn collapse_tuple_with_stats(
    tuple: &ProbTuple,
    reg: &HistoryRegistry,
    resolution: usize,
    stats: Option<&ExecStats>,
) -> Result<ProbTuple> {
    // Union-find over node indices, linked by ancestor intersection.
    let n = tuple.nodes.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(p: &mut [usize], mut x: usize) -> usize {
        while p[x] != x {
            p[x] = p[p[x]];
            x = p[x];
        }
        x
    }
    for i in 0..n {
        for j in i + 1..n {
            if HistoryRegistry::dependent(&tuple.nodes[i].ancestors, &tuple.nodes[j].ancestors) {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[rj] = ri;
                }
            }
        }
    }
    let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for i in 0..n {
        let r = find(&mut parent, i);
        groups.entry(r).or_default().push(i);
    }
    let mut nodes = Vec::with_capacity(groups.len());
    for (_, members) in groups {
        if members.len() == 1 {
            nodes.push(tuple.nodes[members[0]].clone());
        } else {
            let refs: Vec<&PdfNode> = members.iter().map(|&i| &tuple.nodes[i]).collect();
            nodes.push(merge_nodes_with_stats(&refs, reg, resolution, stats)?);
        }
    }
    Ok(ProbTuple { certain: tuple.certain.clone(), nodes })
}

/// The true existence probability of a tuple, collapsing dependent nodes
/// first.
pub fn existence_prob(tuple: &ProbTuple, reg: &HistoryRegistry, resolution: usize) -> Result<f64> {
    existence_prob_with_stats(tuple, reg, resolution, None)
}

/// [`existence_prob`] with an optional stats collector.
pub fn existence_prob_with_stats(
    tuple: &ProbTuple,
    reg: &HistoryRegistry,
    resolution: usize,
    stats: Option<&ExecStats>,
) -> Result<f64> {
    Ok(collapse_tuple_with_stats(tuple, reg, resolution, stats)?.naive_existence())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::Ancestors;
    use crate::tuple::VarId;
    use orion_pdf::prelude::*;

    /// Builds the Figure 3 scenario: base joint {a,b} =
    /// Discrete({4,5}:0.9, {2,3}:0.1); n1 = marginal on a (phantom b);
    /// n2 = marginal on b after selection b > 4 (phantom a).
    fn fig3() -> (PdfNode, PdfNode, HistoryRegistry) {
        let mut reg = HistoryRegistry::new();
        let (a, b) = (100u64, 101u64);
        let base = JointPdf::from_points(
            JointDiscrete::from_points(2, vec![(vec![4.0, 5.0], 0.9), (vec![2.0, 3.0], 0.1)])
                .unwrap(),
        );
        let id = reg.register(vec![a, b], base.clone());
        let anc: Ancestors = [id].into_iter().collect();
        // Keep the full joints with a phantom dimension (what projection
        // does when floors must be preserved).
        let n1 = PdfNode::base(id, &[a, b], base.clone(), anc.clone()).hide_columns(&[b]);
        let sel = base.floor_axis(1, &RegionSet::from_interval(Interval::at_most(4.0)));
        let n2 = PdfNode::base(id, &[a, b], sel, anc).hide_columns(&[a]);
        (n1, n2, reg)
    }

    #[test]
    fn fig3_dependent_merge_is_correct() {
        let (n1, n2, reg) = fig3();
        let merged = merge_pair(&n1, &n2, &reg, DEFAULT_RESOLUTION).unwrap();
        // Correct result T2: Discrete({4,5}:0.9) — the (2,5) phantom of the
        // naive product must NOT appear, and the probability must be 0.9
        // (not 0.81).
        let pa = merged.dim_of(100).unwrap();
        let pb = merged.dim_of(101).unwrap();
        let d = |a: f64, b: f64| {
            let mut pt = vec![0.0; merged.dims.len()];
            pt[pa] = a;
            pt[pb] = b;
            merged.joint.density(&pt)
        };
        assert!((d(4.0, 5.0) - 0.9).abs() < 1e-12);
        assert_eq!(d(2.0, 5.0), 0.0, "impossible world");
        assert!((merged.mass() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn fig3_merge_deduplicates_shared_variables() {
        // n1 and n2 both carry BOTH dimensions of the shared base (one
        // visible, one phantom); the merge must produce exactly two dims.
        let (n1, n2, reg) = fig3();
        let merged = merge_pair(&n1, &n2, &reg, DEFAULT_RESOLUTION).unwrap();
        assert_eq!(merged.dims.len(), 2);
        assert!(merged.covers(100) && merged.covers(101));
    }

    #[test]
    fn fig3_naive_product_would_be_wrong() {
        // Demonstrates what ignoring histories produces (T1 in the paper):
        // marginals multiplied independently.
        let (n1, n2, _) = fig3();
        let ma = n1.joint.marginal1(0).unwrap();
        let mb = n2.joint.marginal1(1).unwrap();
        assert!((ma.density(2.0) * mb.density(5.0) - 0.09).abs() < 1e-12, "phantom tuple");
        assert!((ma.density(4.0) * mb.density(5.0) - 0.81).abs() < 1e-12, "wrong probability");
    }

    #[test]
    fn independent_merge_is_plain_product() {
        let mut reg = HistoryRegistry::new();
        let p1 = JointPdf::from_pdf1(Pdf1::discrete(vec![(1.0, 0.5), (2.0, 0.5)]).unwrap());
        let p2 = JointPdf::from_pdf1(Pdf1::discrete(vec![(7.0, 1.0)]).unwrap());
        let i1 = reg.register(vec![1], p1.clone());
        let i2 = reg.register(vec![2], p2.clone());
        let n1 = PdfNode::base(i1, &[1], p1, [i1].into_iter().collect());
        let n2 = PdfNode::base(i2, &[2], p2, [i2].into_iter().collect());
        let m = merge_pair(&n1, &n2, &reg, DEFAULT_RESOLUTION).unwrap();
        assert_eq!(m.dims.len(), 2);
        assert!((m.joint.density(&[1.0, 7.0]) - 0.5).abs() < 1e-12);
        assert_eq!(m.ancestors.len(), 2);
    }

    #[test]
    fn same_column_different_tuples_stay_distinct() {
        // Two base tuples of the same table share column ids but carry
        // distinct variables: an independent merge must keep all four dims.
        let mut reg = HistoryRegistry::new();
        let (a, b) = (10u64, 11u64);
        let mk = |reg: &mut HistoryRegistry, pts: Vec<(Vec<f64>, f64)>| {
            let j = JointPdf::from_points(JointDiscrete::from_points(2, pts).unwrap());
            let id = reg.register(vec![a, b], j.clone());
            PdfNode::base(id, &[a, b], j, [id].into_iter().collect())
        };
        let n1 = mk(&mut reg, vec![(vec![4.0, 5.0], 1.0)]).hide_columns(&[b]);
        let n2 = mk(&mut reg, vec![(vec![7.0, 3.0], 1.0)]).hide_columns(&[a]);
        let m = merge_pair(&n1, &n2, &reg, DEFAULT_RESOLUTION).unwrap();
        assert_eq!(m.dims.len(), 4, "four distinct variables");
        // Column a resolves to n1's visible dim; column b to n2's.
        let pa = m.dim_of(a).unwrap();
        let pb = m.dim_of(b).unwrap();
        assert_eq!(m.dims[pa].var, VarId { base: n1.dims[0].var.base, dim: 0 });
        assert_eq!(m.dims[pb].var.dim, 1);
        assert!((m.mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dependent_merge_with_disjoint_extras() {
        // n1 covers {a, c} where c is independent of the shared ancestor;
        // n2 covers {b}. Base ancestor covers {a, b}.
        let mut reg = HistoryRegistry::new();
        let (a, b, c) = (1u64, 2u64, 3u64);
        let base = JointPdf::from_points(
            JointDiscrete::from_points(2, vec![(vec![0.0, 0.0], 0.5), (vec![1.0, 1.0], 0.5)])
                .unwrap(),
        );
        let id_ab = reg.register(vec![a, b], base.clone());
        let c_pdf = JointPdf::from_pdf1(Pdf1::discrete(vec![(9.0, 1.0)]).unwrap());
        let id_c = reg.register(vec![c], c_pdf.clone());
        // n1 = (marginal a) x c, as if a prior join had merged them.
        let n1 = PdfNode::new(
            vec![
                NodeDim { var: VarId { base: id_ab, dim: 0 }, column: Some(a) },
                NodeDim { var: VarId { base: id_c, dim: 0 }, column: Some(c) },
            ],
            base.marginalize(&[0]).unwrap().product(&c_pdf),
            [id_ab, id_c].into_iter().collect(),
        );
        // n2 = marginal b, floored to b = 1.
        let n2 = PdfNode::new(
            vec![NodeDim { var: VarId { base: id_ab, dim: 1 }, column: Some(b) }],
            base.floor_axis(1, &RegionSet::from_interval(Interval::at_most(0.5)))
                .marginalize(&[1])
                .unwrap(),
            [id_ab].into_iter().collect(),
        );
        let m = merge_pair(&n1, &n2, &reg, DEFAULT_RESOLUTION).unwrap();
        assert_eq!(m.dims.len(), 3);
        // Only the world (a=1, b=1, c=9) survives, with probability 0.5.
        assert!((m.mass() - 0.5).abs() < 1e-12);
        let (pa, pb, pc) = (m.dim_of(a).unwrap(), m.dim_of(b).unwrap(), m.dim_of(c).unwrap());
        let mut pt = vec![0.0; 3];
        pt[pa] = 1.0;
        pt[pb] = 1.0;
        pt[pc] = 9.0;
        assert!((m.joint.density(&pt) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn collapse_tuple_groups_components() {
        let (n1, n2, reg) = fig3();
        let other = PdfNode::base(
            999,
            &[500],
            JointPdf::from_pdf1(Pdf1::certain(1.0)),
            [999].into_iter().collect(),
        );
        let t = ProbTuple { certain: vec![], nodes: vec![n1, other.clone(), n2] };
        let c = collapse_tuple(&t, &reg, DEFAULT_RESOLUTION).unwrap();
        assert_eq!(c.nodes.len(), 2, "dependent pair merged, independent kept");
        assert!((existence_prob(&t, &reg, DEFAULT_RESOLUTION).unwrap() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn merge_of_zero_nodes_errors() {
        let reg = HistoryRegistry::new();
        assert!(merge_nodes(&[], &reg, DEFAULT_RESOLUTION).is_err());
    }
}
