//! Histories — the inter-tuple dependency mechanism of Section II-C.
//!
//! Every dependency set inserted into a base table registers its joint pdf
//! here and receives a [`PdfId`]. Derived pdfs carry the union of their
//! sources' ancestor sets (Definition 2); two pdfs whose ancestor sets
//! intersect are *historically dependent* (Definition 3) and may only be
//! combined through their common ancestors' base distributions.
//!
//! Deleting a base tuple keeps its registered pdfs alive as *phantom nodes*
//! while any derived tuple still references them (reference counting, as
//! the paper prescribes).

use crate::error::{EngineError, Result};
use crate::schema::AttrId;
use orion_pdf::prelude::JointPdf;
use std::collections::{BTreeSet, HashMap};

/// Identity of a registered base pdf (one dependency set of one base tuple).
pub type PdfId = u64;

/// The ancestor set `A(t.S)` of a pdf node.
pub type Ancestors = BTreeSet<PdfId>;

/// A registered base pdf: the original joint distribution of one dependency
/// set, with the identities of the attributes it covers.
#[derive(Debug, Clone)]
pub struct BasePdf {
    /// Attribute identities, in the joint's dimension order (`N_j`).
    pub attrs: Vec<AttrId>,
    /// The original (unfloored) joint distribution.
    pub joint: JointPdf,
    /// Whether the owning base tuple has been deleted (phantom node).
    pub phantom: bool,
}

/// The history registry: base pdfs, reference counts, and dependency tests.
/// `Clone` deep-copies the whole registry — transactions use this for their
/// private snapshot, preserving every committed id.
#[derive(Debug, Default, Clone)]
pub struct HistoryRegistry {
    next: PdfId,
    bases: HashMap<PdfId, BasePdf>,
    /// Number of derived pdf nodes referencing each base.
    refs: HashMap<PdfId, usize>,
}

impl HistoryRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a base pdf (at tuple insertion), returning its id.
    pub fn register(&mut self, attrs: Vec<AttrId>, joint: JointPdf) -> PdfId {
        self.next += 1;
        let id = self.next;
        self.bases.insert(id, BasePdf { attrs, joint, phantom: false });
        id
    }

    /// Reserves `n` consecutive ids for a two-phase parallel bulk insert
    /// and returns the first. The reserved range is exactly what `n`
    /// successive [`register`](Self::register) calls would have allocated,
    /// so a bulk load that installs its bases in row order produces ids
    /// bit-identical to a serial tuple-at-a-time load. Every reserved id
    /// must be claimed with [`install_reserved`](Self::install_reserved)
    /// before the registry is used for queries.
    pub fn reserve_ids(&mut self, n: u64) -> PdfId {
        let first = self.next + 1;
        self.next += n;
        first
    }

    /// Installs a base pdf under an id previously handed out by
    /// [`reserve_ids`](Self::reserve_ids) (the ordered-commit phase of a
    /// parallel bulk insert).
    pub fn install_reserved(&mut self, id: PdfId, attrs: Vec<AttrId>, joint: JointPdf) {
        debug_assert!(id <= self.next, "id {id} was never reserved");
        debug_assert!(!self.bases.contains_key(&id), "id {id} already installed");
        self.bases.insert(id, BasePdf { attrs, joint, phantom: false });
    }

    /// Looks up a base pdf.
    pub fn base(&self, id: PdfId) -> Result<&BasePdf> {
        self.bases.get(&id).ok_or_else(|| EngineError::Operator(format!("unknown base pdf {id}")))
    }

    /// Number of registered (live + phantom) base pdfs.
    pub fn len(&self) -> usize {
        self.bases.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.bases.is_empty()
    }

    /// Increments the reference count of every ancestor in `anc`
    /// (called when a derived node is created).
    pub fn add_refs(&mut self, anc: &Ancestors) {
        for &id in anc {
            *self.refs.entry(id).or_insert(0) += 1;
        }
    }

    /// Decrements reference counts (derived node dropped); phantom bases
    /// whose count reaches zero are reclaimed.
    pub fn release_refs(&mut self, anc: &Ancestors) {
        for &id in anc {
            if let Some(n) = self.refs.get_mut(&id) {
                *n = n.saturating_sub(1);
                if *n == 0 {
                    self.refs.remove(&id);
                    if self.bases.get(&id).is_some_and(|b| b.phantom) {
                        self.bases.remove(&id);
                    }
                }
            }
        }
    }

    /// Current reference count of a base pdf.
    pub fn ref_count(&self, id: PdfId) -> usize {
        self.refs.get(&id).copied().unwrap_or(0)
    }

    /// Marks a base tuple's pdfs deleted: unreferenced bases are removed,
    /// referenced ones survive as phantom nodes until their count drops to
    /// zero.
    pub fn delete_base(&mut self, id: PdfId) {
        if self.ref_count(id) == 0 {
            self.bases.remove(&id);
        } else if let Some(b) = self.bases.get_mut(&id) {
            b.phantom = true;
        }
    }

    /// Iterates all registered base pdfs (persistence support).
    pub fn iter_bases(&self) -> impl Iterator<Item = (PdfId, &BasePdf)> {
        self.bases.iter().map(|(&id, b)| (id, b))
    }

    /// Highest pdf id allocated so far (0 if none). Durable logging uses
    /// this to discover which base pdfs an insert registered.
    pub fn last_id(&self) -> PdfId {
        self.next
    }

    /// Restores a base pdf under a specific id (loading a saved database).
    /// Future `register` calls will allocate ids above every restored one.
    pub fn restore(&mut self, id: PdfId, base: BasePdf) {
        self.next = self.next.max(id);
        self.bases.insert(id, base);
    }

    /// Whether two ancestor sets are historically dependent (Definition 3).
    pub fn dependent(a: &Ancestors, b: &Ancestors) -> bool {
        // Walk the smaller set.
        let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        small.iter().any(|id| large.contains(id))
    }

    /// The common ancestors of two sets.
    pub fn common(a: &Ancestors, b: &Ancestors) -> Vec<PdfId> {
        a.intersection(b).copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_pdf::prelude::*;

    fn joint() -> JointPdf {
        JointPdf::from_pdf1(Pdf1::certain(1.0))
    }

    #[test]
    fn register_and_lookup() {
        let mut reg = HistoryRegistry::new();
        let a = reg.register(vec![10], joint());
        let b = reg.register(vec![11, 12], joint());
        assert_ne!(a, b);
        assert_eq!(reg.base(a).unwrap().attrs, vec![10]);
        assert_eq!(reg.base(b).unwrap().attrs, vec![11, 12]);
        assert!(reg.base(999).is_err());
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn dependence_is_intersection() {
        let a: Ancestors = [1, 2, 3].into_iter().collect();
        let b: Ancestors = [3, 4].into_iter().collect();
        let c: Ancestors = [5].into_iter().collect();
        assert!(HistoryRegistry::dependent(&a, &b));
        assert!(!HistoryRegistry::dependent(&a, &c));
        assert_eq!(HistoryRegistry::common(&a, &b), vec![3]);
        assert!(HistoryRegistry::common(&b, &c).is_empty());
    }

    #[test]
    fn reserved_ids_match_serial_register_order() {
        // The reservation protocol must hand out exactly the ids serial
        // `register` calls would have produced.
        let mut serial = HistoryRegistry::new();
        serial.register(vec![1], joint());
        let s1 = serial.register(vec![2], joint());
        let s2 = serial.register(vec![3], joint());

        let mut bulk = HistoryRegistry::new();
        bulk.register(vec![1], joint());
        let first = bulk.reserve_ids(2);
        assert_eq!(first, s1);
        bulk.install_reserved(first, vec![2], joint());
        bulk.install_reserved(first + 1, vec![3], joint());
        assert_eq!(bulk.last_id(), serial.last_id());
        assert_eq!(bulk.base(s2).unwrap().attrs, serial.base(s2).unwrap().attrs);
        // Ids keep advancing past the reserved range.
        assert_eq!(bulk.register(vec![4], joint()), serial.register(vec![4], joint()));
    }

    #[test]
    fn unreferenced_base_is_removed_on_delete() {
        let mut reg = HistoryRegistry::new();
        let id = reg.register(vec![1], joint());
        reg.delete_base(id);
        assert!(reg.base(id).is_err());
        assert!(reg.is_empty());
    }

    #[test]
    fn referenced_base_becomes_phantom() {
        let mut reg = HistoryRegistry::new();
        let id = reg.register(vec![1], joint());
        let anc: Ancestors = [id].into_iter().collect();
        reg.add_refs(&anc);
        reg.add_refs(&anc);
        reg.delete_base(id);
        assert!(reg.base(id).unwrap().phantom, "survives as phantom");
        reg.release_refs(&anc);
        assert!(reg.base(id).is_ok(), "still one reference");
        reg.release_refs(&anc);
        assert!(reg.base(id).is_err(), "reclaimed at refcount zero");
    }

    #[test]
    fn live_base_survives_release_to_zero() {
        let mut reg = HistoryRegistry::new();
        let id = reg.register(vec![1], joint());
        let anc: Ancestors = [id].into_iter().collect();
        reg.add_refs(&anc);
        reg.release_refs(&anc);
        assert!(reg.base(id).is_ok(), "not phantom, so not reclaimed");
        assert_eq!(reg.ref_count(id), 0);
    }
}
