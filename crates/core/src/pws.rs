//! Brute-force possible-worlds reference engine (paper Section I-A).
//!
//! For finite, discrete base relations, every possible world can be
//! enumerated: each pdf node independently takes one of its support points
//! (or "tuple absent" for the residual mass of a partial pdf). The query is
//! executed classically in each world and the result-row probabilities are
//! aggregated. Comparing these against the probabilistic operators is how
//! the test suite certifies that the model is **consistent with and closed
//! under PWS** (Theorems 1 and 2).
//!
//! The enumeration is exponential — use only on small inputs.

use crate::collapse;
use crate::error::{EngineError, Result};
use crate::history::HistoryRegistry;
use crate::plan::Plan;
use crate::relation::Relation;
use crate::schema::Column;
use crate::select::ExecOptions;
use crate::value::Value;
use std::collections::HashMap;

/// A hashable canonical form of a row value (reals compared bit-exactly —
/// world values flow through both engines without arithmetic on them).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CanonValue {
    Null,
    Int(i64),
    Real(u64),
    Text(String),
    Bool(bool),
}

impl From<&Value> for CanonValue {
    fn from(v: &Value) -> Self {
        match v {
            Value::Null => CanonValue::Null,
            Value::Int(i) => CanonValue::Int(*i),
            // Normalize -0.0 and integral reals so Int/Real comparisons in
            // different code paths canonicalize identically.
            Value::Real(r) => CanonValue::Real((r + 0.0).to_bits()),
            Value::Text(s) => CanonValue::Text(s.clone()),
            Value::Bool(b) => CanonValue::Bool(*b),
        }
    }
}

/// A canonical output row.
pub type CanonRow = Vec<CanonValue>;

/// Probability of each distinct output row appearing in the result.
pub type RowDistribution = HashMap<CanonRow, f64>;

/// A concrete (certain) table inside one possible world.
#[derive(Debug, Clone)]
pub(crate) struct ConcreteTable {
    pub(crate) name: String,
    pub(crate) columns: Vec<Column>,
    pub(crate) rows: Vec<Vec<Value>>,
}

/// One enumeration choice for a pdf node: a concrete point, or absence.
enum NodeChoice {
    Point(Vec<f64>, f64),
    Absent(f64),
}

/// Outcome list of one joint pdf: `(point-or-absent, probability)` pairs.
type JointChoices = (Vec<Option<Vec<f64>>>, Vec<f64>);

/// Enumerates a joint pdf's outcomes: each support point with its
/// probability, plus `None` for the absent residual of a partial pdf.
/// Shared by both reference engines.
fn joint_choices(joint: &orion_pdf::prelude::JointPdf) -> Result<JointChoices> {
    let j = joint.enumerate().map_err(|_| {
        EngineError::Operator(
            "PWS enumeration requires discrete base pdfs (continuous pdf found)".into(),
        )
    })?;
    let mut outcomes: Vec<Option<Vec<f64>>> =
        j.points().iter().map(|(v, _)| Some(v.clone())).collect();
    let mut probs: Vec<f64> = j.points().iter().map(|(_, p)| *p).collect();
    let mass = j.mass();
    if mass < 1.0 - 1e-12 {
        outcomes.push(None);
        probs.push(1.0 - mass);
    }
    Ok((outcomes, probs))
}

/// Enumerates all outcomes of a node (its points plus the absent residual).
fn node_choices(node: &crate::tuple::PdfNode) -> Result<Vec<NodeChoice>> {
    let (outcomes, probs) = joint_choices(&node.joint)?;
    Ok(outcomes
        .into_iter()
        .zip(probs)
        .map(|(o, p)| match o {
            Some(v) => NodeChoice::Point(v, p),
            None => NodeChoice::Absent(p),
        })
        .collect())
}

/// Visits every possible world of the base tables, calling `visit` with the
/// concrete tables and the world's probability.
fn for_each_world(
    tables: &HashMap<String, Relation>,
    visit: &mut dyn FnMut(&HashMap<String, ConcreteTable>, f64),
) -> Result<()> {
    // Flatten: (table, tuple index, node index) -> choices.
    struct Site {
        table: String,
        tuple: usize,
        node: usize,
        choices: Vec<NodeChoice>,
    }
    let mut sites: Vec<Site> = Vec::new();
    let mut names: Vec<&String> = tables.keys().collect();
    names.sort();
    for name in &names {
        let rel = &tables[*name];
        for (ti, t) in rel.tuples.iter().enumerate() {
            for (ni, n) in t.nodes.iter().enumerate() {
                sites.push(Site {
                    table: (*name).clone(),
                    tuple: ti,
                    node: ni,
                    choices: node_choices(n)?,
                });
            }
        }
    }
    let mut picks = vec![0usize; sites.len()];
    loop {
        // Probability of this world and concrete instantiation.
        let mut prob = 1.0;
        // (table, tuple) -> Some(assignments) or None if absent.
        let mut absent: HashMap<(String, usize), bool> = HashMap::new();
        let mut assign: HashMap<(String, usize, usize), Vec<f64>> = HashMap::new();
        for (s, &k) in sites.iter().zip(&picks) {
            match &s.choices[k] {
                NodeChoice::Point(v, p) => {
                    prob *= p;
                    assign.insert((s.table.clone(), s.tuple, s.node), v.clone());
                }
                NodeChoice::Absent(p) => {
                    prob *= p;
                    absent.insert((s.table.clone(), s.tuple), true);
                }
            }
        }
        if prob > 0.0 {
            let mut world = HashMap::new();
            for name in &names {
                let rel = &tables[*name];
                let mut rows = Vec::new();
                for (ti, t) in rel.tuples.iter().enumerate() {
                    if absent.contains_key(&((*name).clone(), ti)) {
                        continue;
                    }
                    let mut row = t.certain.clone();
                    for (ni, n) in t.nodes.iter().enumerate() {
                        let v = &assign[&((*name).clone(), ti, ni)];
                        for (dim, nd) in n.dims.iter().enumerate() {
                            let Some(attr) = nd.column else { continue };
                            if let Some(pos) =
                                rel.schema.columns().iter().position(|c| c.id == attr)
                            {
                                row[pos] = Value::Real(v[dim]);
                            }
                        }
                    }
                    rows.push(row);
                }
                world.insert(
                    (*name).clone(),
                    ConcreteTable {
                        name: (*name).clone(),
                        columns: rel.schema.columns().to_vec(),
                        rows,
                    },
                );
            }
            visit(&world, prob);
        }
        // Advance the odometer.
        let mut i = 0;
        loop {
            if i == sites.len() {
                return Ok(());
            }
            picks[i] += 1;
            if picks[i] < sites[i].choices.len() {
                break;
            }
            picks[i] = 0;
            i += 1;
        }
    }
}

/// Executes a plan classically within one world, mirroring the engine's
/// derived-relation naming so join-time column qualification matches.
pub(crate) fn run_classical(
    plan: &Plan,
    world: &HashMap<String, ConcreteTable>,
) -> Result<ConcreteTable> {
    match plan {
        Plan::Scan(name) => world
            .get(name)
            .cloned()
            .ok_or_else(|| EngineError::Operator(format!("unknown table '{name}'"))),
        Plan::Select(p, pred) => {
            let t = run_classical(p, world)?;
            let rows = t
                .rows
                .iter()
                .filter(|row| {
                    let lookup = |name: &str| -> Value {
                        t.columns
                            .iter()
                            .position(|c| c.name == name)
                            .map(|i| row[i].clone())
                            .unwrap_or(Value::Null)
                    };
                    pred.eval(&lookup) == Some(true)
                })
                .cloned()
                .collect();
            Ok(ConcreteTable { name: format!("sigma({})", t.name), columns: t.columns, rows })
        }
        Plan::Project(p, cols) => {
            let t = run_classical(p, world)?;
            let idx: Vec<usize> = cols
                .iter()
                .map(|c| {
                    t.columns
                        .iter()
                        .position(|col| &col.name == c)
                        .ok_or_else(|| EngineError::Schema(format!("unknown column '{c}'")))
                })
                .collect::<Result<_>>()?;
            Ok(ConcreteTable {
                name: format!("pi({})", t.name),
                columns: idx.iter().map(|&i| t.columns[i].clone()).collect(),
                rows: t.rows.iter().map(|r| idx.iter().map(|&i| r[i].clone()).collect()).collect(),
            })
        }
        Plan::Join(l, r, pred) => {
            let lt = run_classical(l, world)?;
            let rt = run_classical(r, world)?;
            // Mirror the engine's column qualification on name conflicts.
            let mut columns: Vec<Column> = Vec::new();
            for c in &lt.columns {
                let mut col = c.clone();
                if rt.columns.iter().any(|rc| rc.name == c.name) {
                    col.name = format!("{}.{}", lt.name, c.name);
                }
                columns.push(col);
            }
            for c in &rt.columns {
                let mut col = c.clone();
                if lt.columns.iter().any(|lc| lc.name == c.name) {
                    col.name = format!("{}.{}", rt.name, c.name);
                }
                columns.push(col);
            }
            let mut rows = Vec::new();
            for rl in &lt.rows {
                for rr in &rt.rows {
                    let mut row = rl.clone();
                    row.extend(rr.iter().cloned());
                    let keep = match pred {
                        None => true,
                        Some(p) => {
                            let lookup = |name: &str| -> Value {
                                columns
                                    .iter()
                                    .position(|c| c.name == name)
                                    .map(|i| row[i].clone())
                                    .unwrap_or(Value::Null)
                            };
                            p.eval(&lookup) == Some(true)
                        }
                    };
                    if keep {
                        rows.push(row);
                    }
                }
            }
            Ok(ConcreteTable { name: format!("({} x {})", lt.name, rt.name), columns, rows })
        }
        Plan::ThresholdAttrs(..) | Plan::ThresholdPred(..) => Err(EngineError::Operator(
            "threshold operators are defined outside possible-worlds semantics".into(),
        )),
    }
}

/// Ancestor-level possible-worlds enumeration: instead of treating every
/// pdf *node* as independent (valid only for freshly inserted base
/// tables), enumerate the outcomes of every registered **base pdf** and
/// derive each tuple's values and existence from them. This makes
/// cross-tuple correlation — shared phantom ancestors, mutual-exclusion
/// groups, rejoined projections — exactly checkable.
///
/// A node exists in a world iff none of its variables' bases drew the
/// absent residual and the node's own (possibly floored) joint has
/// positive density at the drawn point.
pub fn pws_row_distribution_via_ancestors(
    plan: &Plan,
    tables: &HashMap<String, Relation>,
    reg: &HistoryRegistry,
) -> Result<RowDistribution> {
    if plan.has_threshold() {
        return Err(EngineError::Operator(
            "threshold operators are defined outside possible-worlds semantics".into(),
        ));
    }
    // Bases actually referenced by the tables.
    let mut base_ids: Vec<crate::history::PdfId> = tables
        .values()
        .flat_map(|r| r.tuples.iter())
        .flat_map(|t| t.nodes.iter())
        .flat_map(|n| n.ancestors.iter().copied())
        .collect();
    base_ids.sort_unstable();
    base_ids.dedup();
    // Enumerate each base's outcomes (+ absent residual for partial mass).
    struct BaseChoices {
        id: crate::history::PdfId,
        outcomes: Vec<Option<Vec<f64>>>,
        probs: Vec<f64>,
    }
    let mut bases = Vec::with_capacity(base_ids.len());
    for id in base_ids {
        let b = reg.base(id)?;
        let (outcomes, probs) = joint_choices(&b.joint)?;
        bases.push(BaseChoices { id, outcomes, probs });
    }
    let lookup: HashMap<crate::history::PdfId, usize> =
        bases.iter().enumerate().map(|(i, b)| (b.id, i)).collect();
    // Precompute, per tuple and node, the (base index, base dim, visible row
    // position) triples and per-table skeletons, so the world loop only
    // indexes vectors. This pass also validates every variable reference.
    struct DimMap {
        base_idx: usize,
        base_dim: usize,
        row_pos: Option<usize>,
    }
    struct TuplePlan<'a> {
        tuple: &'a crate::tuple::ProbTuple,
        nodes: Vec<(Vec<DimMap>, &'a orion_pdf::prelude::JointPdf)>,
    }
    struct TablePlan<'a> {
        name: &'a String,
        columns: Vec<Column>,
        tuples: Vec<TuplePlan<'a>>,
    }
    let mut names: Vec<&String> = tables.keys().collect();
    names.sort();
    let mut plans: Vec<TablePlan> = Vec::with_capacity(names.len());
    for name in &names {
        let rel = &tables[*name];
        let mut tuples = Vec::with_capacity(rel.tuples.len());
        for t in &rel.tuples {
            let mut nodes = Vec::with_capacity(t.nodes.len());
            for n in &t.nodes {
                let mut dims = Vec::with_capacity(n.dims.len());
                for d in &n.dims {
                    let base_idx = *lookup.get(&d.var.base).ok_or_else(|| {
                        EngineError::Operator(format!(
                            "variable references base {} outside the ancestor sets",
                            d.var.base
                        ))
                    })?;
                    let base_dim = d.var.dim as usize;
                    if base_dim >= reg.base(d.var.base)?.joint.arity() {
                        return Err(EngineError::Operator(format!(
                            "variable dim {base_dim} out of range for base {}",
                            d.var.base
                        )));
                    }
                    let row_pos = d
                        .column
                        .and_then(|attr| rel.schema.columns().iter().position(|c| c.id == attr));
                    dims.push(DimMap { base_idx, base_dim, row_pos });
                }
                nodes.push((dims, &n.joint));
            }
            tuples.push(TuplePlan { tuple: t, nodes });
        }
        plans.push(TablePlan { name, columns: rel.schema.columns().to_vec(), tuples });
    }

    let mut dist = RowDistribution::new();
    let mut picks = vec![0usize; bases.len()];
    'worlds: loop {
        let mut prob = 1.0;
        for (b, &k) in bases.iter().zip(&picks) {
            prob *= b.probs[k];
        }
        if prob > 0.0 {
            // Instantiate every table from the precomputed plans.
            let mut world = HashMap::new();
            for p in &plans {
                let mut rows = Vec::new();
                'tuples: for tp in &p.tuples {
                    let mut row = tp.tuple.certain.clone();
                    for (dims, joint) in &tp.nodes {
                        let mut point = Vec::with_capacity(dims.len());
                        for d in dims {
                            match &bases[d.base_idx].outcomes[picks[d.base_idx]] {
                                Some(v) => point.push(v[d.base_dim]),
                                None => continue 'tuples, // base absent
                            }
                        }
                        if joint.density(&point) <= 0.0 {
                            continue 'tuples; // floored world
                        }
                        for (x, d) in point.iter().zip(dims) {
                            if let Some(pos) = d.row_pos {
                                row[pos] = Value::Real(*x);
                            }
                        }
                    }
                    rows.push(row);
                }
                world.insert(
                    p.name.clone(),
                    ConcreteTable { name: p.name.clone(), columns: p.columns.clone(), rows },
                );
            }
            let out = run_classical(plan, &world)?;
            let mut seen: std::collections::HashSet<CanonRow> = Default::default();
            for row in &out.rows {
                let canon: CanonRow = row.iter().map(CanonValue::from).collect();
                if seen.insert(canon.clone()) {
                    *dist.entry(canon).or_insert(0.0) += prob;
                }
            }
        }
        // Odometer (empty base set => single world, handled by the break).
        let mut i = 0;
        loop {
            if i == bases.len() {
                break 'worlds;
            }
            picks[i] += 1;
            if picks[i] < bases[i].outcomes.len() {
                break;
            }
            picks[i] = 0;
            i += 1;
        }
    }
    Ok(dist)
}

/// The PWS ground truth: for each distinct output row, the total
/// probability of the worlds in which the query emits it.
///
/// (Rows emitted more than once in the same world contribute once — the
/// test queries keep keys so this does not arise.)
pub fn pws_row_distribution(
    plan: &Plan,
    tables: &HashMap<String, Relation>,
) -> Result<RowDistribution> {
    if plan.has_threshold() {
        return Err(EngineError::Operator(
            "threshold operators are defined outside possible-worlds semantics".into(),
        ));
    }
    let mut dist = RowDistribution::new();
    let mut err: Option<EngineError> = None;
    for_each_world(tables, &mut |world, prob| {
        if err.is_some() {
            return;
        }
        match run_classical(plan, world) {
            Ok(t) => {
                let mut seen: Vec<CanonRow> = Vec::new();
                for row in &t.rows {
                    let canon: CanonRow = row.iter().map(CanonValue::from).collect();
                    if !seen.contains(&canon) {
                        seen.push(canon.clone());
                        *dist.entry(canon).or_insert(0.0) += prob;
                    }
                }
            }
            Err(e) => err = Some(e),
        }
    })?;
    match err {
        Some(e) => Err(e),
        None => Ok(dist),
    }
}

/// The engine side of the comparison: for a probabilistic result relation,
/// the probability of each distinct visible row (per tuple: enumerate the
/// collapsed nodes' joint support and marginalize phantom dimensions).
pub fn engine_row_distribution(
    rel: &Relation,
    reg: &HistoryRegistry,
    opts: &ExecOptions,
) -> Result<RowDistribution> {
    let mut dist = RowDistribution::new();
    for t in &rel.tuples {
        let ct = if opts.use_histories {
            collapse::collapse_tuple(t, reg, opts.resolution)?
        } else {
            t.clone()
        };
        // Per-node enumerations projected to visible dims.
        struct NodeEnum {
            /// (visible column position, value) assignments and probability.
            outcomes: Vec<(Vec<(usize, f64)>, f64)>,
        }
        let mut enums: Vec<NodeEnum> = Vec::new();
        for n in &ct.nodes {
            let j = n.joint.enumerate().map_err(|_| {
                EngineError::Operator("engine_row_distribution requires discrete pdfs".into())
            })?;
            // Group by visible coordinates.
            let mut grouped: HashMap<Vec<(usize, u64)>, f64> = HashMap::new();
            for (v, p) in j.points() {
                let mut key = Vec::new();
                for (dim, nd) in n.dims.iter().enumerate() {
                    let Some(attr) = nd.column else { continue };
                    if let Some(pos) = rel.schema.columns().iter().position(|c| c.id == attr) {
                        key.push((pos, v[dim].to_bits()));
                    }
                }
                *grouped.entry(key).or_insert(0.0) += p;
            }
            enums.push(NodeEnum {
                outcomes: grouped
                    .into_iter()
                    .map(|(k, p)| {
                        (k.into_iter().map(|(pos, bits)| (pos, f64::from_bits(bits))).collect(), p)
                    })
                    .collect(),
            });
        }
        // Cartesian product across nodes (a node with zero outcomes makes
        // the tuple vacuous; a tuple with zero nodes emits one certain row).
        if enums.iter().any(|e| e.outcomes.is_empty()) {
            continue;
        }
        let mut picks = vec![0usize; enums.len()];
        'combos: loop {
            let mut prob = 1.0;
            let mut row = ct.certain.clone();
            for (e, &k) in enums.iter().zip(&picks) {
                let (assignments, p) = &e.outcomes[k];
                prob *= p;
                for &(pos, v) in assignments {
                    row[pos] = Value::Real(v);
                }
            }
            if prob > 0.0 {
                let canon: CanonRow = row.iter().map(CanonValue::from).collect();
                *dist.entry(canon).or_insert(0.0) += prob;
            }
            let mut i = 0;
            loop {
                if i == enums.len() {
                    break 'combos;
                }
                picks[i] += 1;
                if picks[i] < enums[i].outcomes.len() {
                    break;
                }
                picks[i] = 0;
                i += 1;
            }
        }
    }
    Ok(dist)
}

/// Full conformance check: executes the plan with the engine (using the
/// caller's registry, which must be the one the base tables were built
/// with) and compares row distributions against PWS enumeration.
pub fn conformance_report(
    plan: &Plan,
    tables: &HashMap<String, Relation>,
    reg: &mut HistoryRegistry,
    opts: &ExecOptions,
) -> Result<(RowDistribution, RowDistribution)> {
    let truth = pws_row_distribution(plan, tables)?;
    let result = crate::plan::execute(plan, tables, reg, opts)?;
    let engine = engine_row_distribution(&result, reg, opts)?;
    Ok((truth, engine))
}

/// Maximum absolute probability deviation between two row distributions
/// (rows missing from one side count with their full probability).
pub fn distribution_distance(a: &RowDistribution, b: &RowDistribution) -> f64 {
    let mut worst = 0.0f64;
    for (k, &pa) in a {
        let pb = b.get(k).copied().unwrap_or(0.0);
        worst = worst.max((pa - pb).abs());
    }
    for (k, &pb) in b {
        if !a.contains_key(k) {
            worst = worst.max(pb);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CmpOp, Predicate};
    use crate::schema::{ColumnType, ProbSchema};
    use orion_pdf::prelude::*;

    fn table2() -> (HashMap<String, Relation>, HistoryRegistry) {
        let mut reg = HistoryRegistry::new();
        let schema = ProbSchema::new(
            vec![("a", ColumnType::Int, true), ("b", ColumnType::Int, true)],
            vec![],
        )
        .unwrap();
        let mut rel = Relation::new("T", schema);
        rel.insert_simple(
            &mut reg,
            &[],
            &[
                ("a", Pdf1::discrete(vec![(0.0, 0.1), (1.0, 0.9)]).unwrap()),
                ("b", Pdf1::discrete(vec![(1.0, 0.6), (2.0, 0.4)]).unwrap()),
            ],
        )
        .unwrap();
        rel.insert_simple(&mut reg, &[], &[("a", Pdf1::certain(7.0)), ("b", Pdf1::certain(3.0))])
            .unwrap();
        let mut tables = HashMap::new();
        tables.insert("T".to_string(), rel);
        (tables, reg)
    }

    #[test]
    fn table3_possible_worlds() {
        // The paper's Table III: worlds of Table II with probabilities
        // 0.06, 0.04, 0.54, 0.36 — checked through the identity query.
        let (tables, _) = table2();
        let dist = pws_row_distribution(&Plan::scan("T"), &tables).unwrap();
        // Row (a=0, b=1) appears in the world with probability 0.06.
        let row =
            |a: f64, b: f64| vec![CanonValue::Real(a.to_bits()), CanonValue::Real(b.to_bits())];
        assert!((dist[&row(0.0, 1.0)] - 0.06).abs() < 1e-12);
        assert!((dist[&row(0.0, 2.0)] - 0.04).abs() < 1e-12);
        assert!((dist[&row(1.0, 1.0)] - 0.54).abs() < 1e-12);
        assert!((dist[&row(1.0, 2.0)] - 0.36).abs() < 1e-12);
        // The certain tuple appears in all worlds.
        assert!((dist[&row(7.0, 3.0)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn selection_conforms_to_pws() {
        let (tables, mut reg) = table2();
        let plan = Plan::scan("T").select(Predicate::cmp_cols("a", CmpOp::Lt, "b"));
        let (truth, engine) =
            conformance_report(&plan, &tables, &mut reg, &ExecOptions::default()).unwrap();
        assert!(distribution_distance(&truth, &engine) < 1e-9, "{truth:?} vs {engine:?}");
        assert!(!truth.is_empty());
    }

    #[test]
    fn projection_conforms_to_pws() {
        let (tables, mut reg) = table2();
        let plan = Plan::scan("T").select(Predicate::cmp("b", CmpOp::Gt, 1i64)).project(&["a"]);
        let (truth, engine) =
            conformance_report(&plan, &tables, &mut reg, &ExecOptions::default()).unwrap();
        assert!(distribution_distance(&truth, &engine) < 1e-9, "{truth:?} vs {engine:?}");
    }

    #[test]
    fn continuous_base_rejected() {
        let mut reg = HistoryRegistry::new();
        let schema = ProbSchema::new(vec![("x", ColumnType::Real, true)], vec![]).unwrap();
        let mut rel = Relation::new("g", schema);
        rel.insert_simple(&mut reg, &[], &[("x", Pdf1::gaussian(0.0, 1.0).unwrap())]).unwrap();
        let mut tables = HashMap::new();
        tables.insert("g".to_string(), rel);
        assert!(pws_row_distribution(&Plan::scan("g"), &tables).is_err());
    }

    #[test]
    fn threshold_rejected_under_pws() {
        let (tables, _) = table2();
        let plan =
            Plan::ThresholdAttrs(Box::new(Plan::scan("T")), vec!["a".into()], CmpOp::Gt, 0.5);
        assert!(pws_row_distribution(&plan, &tables).is_err());
    }

    #[test]
    fn distribution_distance_detects_missing_rows() {
        let mut a = RowDistribution::new();
        a.insert(vec![CanonValue::Int(1)], 0.5);
        let b = RowDistribution::new();
        assert!((distribution_distance(&a, &b) - 0.5).abs() < 1e-12);
        assert!((distribution_distance(&b, &a) - 0.5).abs() < 1e-12);
        assert_eq!(distribution_distance(&b, &b), 0.0);
    }
}
