//! The projection operator Π_A (paper Section III-B).
//!
//! Projection narrows the *visible* schema but must not discard floor
//! information: a dependency set whose pdf is partial (mass < 1) or that
//! intersects the kept attributes is retained in full — its projected-out
//! attributes become **phantom attributes**, invisible to the user but
//! available to later history-aware recombination. Dependency sets disjoint
//! from `A` with full mass carry no information and are dropped.
//!
//! Duplicate elimination is intentionally not performed (the paper defers
//! it as future work because it induces complex historical dependencies).

use crate::error::{EngineError, Result};
use crate::history::HistoryRegistry;
use crate::relation::Relation;
use crate::schema::{AttrId, Column, ProbSchema};
use crate::select::ExecOptions;
use crate::tuple::ProbTuple;

/// Mass slack under which a pdf still counts as "complete" for the
/// drop-disjoint-full-mass-sets rule.
const FULL_MASS_EPS: f64 = 1e-9;

/// Evaluates Π_cols over a relation.
pub fn project(
    rel: &Relation,
    cols: &[&str],
    reg: &mut HistoryRegistry,
    opts: &ExecOptions,
) -> Result<Relation> {
    if cols.is_empty() {
        return Err(EngineError::Operator("projection onto zero columns".into()));
    }
    let mut new_cols: Vec<Column> = Vec::with_capacity(cols.len());
    let mut kept_ids: Vec<AttrId> = Vec::with_capacity(cols.len());
    let mut kept_idx: Vec<usize> = Vec::with_capacity(cols.len());
    for &c in cols {
        let col = rel
            .schema
            .column(c)
            .ok_or_else(|| EngineError::Schema(format!("unknown column '{c}'")))?;
        if kept_ids.contains(&col.id) {
            return Err(EngineError::Operator(format!("duplicate projection column '{c}'")));
        }
        new_cols.push(col.clone());
        kept_ids.push(col.id);
        kept_idx.push(rel.schema.index_of(c).expect("column exists"));
    }
    // Visible dependency info: old sets restricted to the kept attributes.
    let deps: Vec<Vec<AttrId>> = rel
        .schema
        .deps()
        .iter()
        .filter_map(|s| {
            let v: Vec<AttrId> = s.iter().copied().filter(|a| kept_ids.contains(a)).collect();
            (!v.is_empty()).then_some(v)
        })
        .collect();
    let schema = ProbSchema::from_columns(new_cols, deps);
    let mut out = Relation::new(format!("pi({})", rel.name), schema);

    // Phase 1 (parallel): narrowing a tuple is pure per-tuple work.
    let projected = crate::exec_par::run_tuples_mode(&rel.tuples, opts, |_, t| {
        let certain: Vec<_> = kept_idx.iter().map(|&i| t.certain[i].clone()).collect();
        let mut nodes = Vec::new();
        for n in &t.nodes {
            let intersects = n.dims.iter().any(|d| d.column.is_some_and(|a| kept_ids.contains(&a)));
            if intersects || n.mass() < 1.0 - FULL_MASS_EPS {
                // Kept in full; columns outside `kept_ids` become phantom
                // dimensions (visible to histories, hidden from users).
                let hidden: Vec<AttrId> = n
                    .dims
                    .iter()
                    .filter_map(|d| d.column.filter(|a| !kept_ids.contains(a)))
                    .collect();
                let kept = if hidden.is_empty() { n.clone() } else { n.hide_columns(&hidden) };
                nodes.push(kept);
            }
        }
        Ok(ProbTuple { certain, nodes })
    })?;
    // Phase 2 (serial, in input order): reference-count commits.
    for t in projected {
        for n in &t.nodes {
            reg.add_refs(&n.ancestors);
        }
        out.tuples.push(t);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CmpOp, Predicate};
    use crate::schema::ColumnType;
    use crate::select::{select, ExecOptions};
    use crate::value::Value;
    use orion_pdf::prelude::*;

    fn ab_relation() -> (Relation, HistoryRegistry) {
        let schema = ProbSchema::new(
            vec![
                ("id", ColumnType::Int, false),
                ("a", ColumnType::Int, true),
                ("b", ColumnType::Int, true),
            ],
            vec![],
        )
        .unwrap();
        let mut rel = Relation::new("T", schema);
        let mut reg = HistoryRegistry::new();
        rel.insert_simple(
            &mut reg,
            &[("id", Value::Int(1))],
            &[
                ("a", Pdf1::discrete(vec![(0.0, 0.1), (1.0, 0.9)]).unwrap()),
                ("b", Pdf1::discrete(vec![(1.0, 0.6), (2.0, 0.4)]).unwrap()),
            ],
        )
        .unwrap();
        (rel, reg)
    }

    #[test]
    fn projection_narrows_schema() {
        let (rel, mut reg) = ab_relation();
        let out = project(&rel, &["id", "a"], &mut reg, &ExecOptions::default()).unwrap();
        assert_eq!(out.schema.columns().len(), 2);
        assert_eq!(out.len(), 1);
        assert_eq!(out.value(0, "id").unwrap(), &Value::Int(1));
        // b's full-mass singleton set was dropped entirely.
        assert_eq!(out.tuples[0].nodes.len(), 1);
        let m = out.marginal(0, "a").unwrap();
        assert!((m.density(1.0) - 0.9).abs() < 1e-12);
        assert!(out.marginal(0, "b").is_err(), "b no longer visible");
    }

    #[test]
    fn partial_pdf_survives_projection_as_phantom() {
        // Select b > 1 (mass 0.4), project to a: the b node must be kept
        // (phantom) because its floor constrains tuple existence.
        let (rel, mut reg) = ab_relation();
        let sel =
            select(&rel, &Predicate::cmp("b", CmpOp::Gt, 1i64), &mut reg, &ExecOptions::default())
                .unwrap();
        let out = project(&sel, &["a"], &mut reg, &ExecOptions::default()).unwrap();
        assert_eq!(out.schema.columns().len(), 1);
        let t = &out.tuples[0];
        assert_eq!(t.nodes.len(), 2, "partial b node kept as phantom");
        assert!((t.naive_existence() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn merged_set_keeps_projected_attr_as_phantom() {
        // σ_{a<b} merges {a,b}; Π_a then keeps the joint with phantom b.
        let (rel, mut reg) = ab_relation();
        let sel = select(
            &rel,
            &Predicate::cmp_cols("a", CmpOp::Lt, "b"),
            &mut reg,
            &ExecOptions::default(),
        )
        .unwrap();
        let out = project(&sel, &["a"], &mut reg, &ExecOptions::default()).unwrap();
        let t = &out.tuples[0];
        assert_eq!(t.nodes.len(), 1);
        assert_eq!(t.nodes[0].dims.len(), 2, "b retained as phantom dimension");
        let m = out.marginal(0, "a").unwrap();
        assert!((m.mass() - 0.46).abs() < 1e-12);
        assert!((m.density(0.0) - 0.10).abs() < 1e-12);
        assert!((m.density(1.0) - 0.36).abs() < 1e-12);
        // Visible dependency info shows only 'a'.
        assert_eq!(out.schema.deps(), &[vec![rel.schema.column("a").unwrap().id]]);
    }

    #[test]
    fn projection_validation() {
        let (rel, mut reg) = ab_relation();
        assert!(project(&rel, &[], &mut reg, &ExecOptions::default()).is_err());
        assert!(project(&rel, &["zzz"], &mut reg, &ExecOptions::default()).is_err());
        assert!(project(&rel, &["a", "a"], &mut reg, &ExecOptions::default()).is_err());
    }

    #[test]
    fn projection_preserves_certain_columns_only() {
        let (rel, mut reg) = ab_relation();
        let out = project(&rel, &["id"], &mut reg, &ExecOptions::default()).unwrap();
        assert_eq!(out.schema.columns().len(), 1);
        assert!(out.tuples[0].nodes.is_empty(), "full-mass pdfs dropped");
        assert!((out.tuples[0].naive_existence() - 1.0).abs() < 1e-12);
    }
}
