//! Monte-Carlo conformance checking for **continuous** data.
//!
//! The brute-force possible-worlds engine ([`crate::pws`]) certifies the
//! operators on finite discrete inputs. Continuous pdfs have uncountably
//! many worlds, so this module *samples* worlds instead: each base pdf
//! node draws a concrete value (or absence, for partial pdfs), the query
//! runs classically on the sampled world, and presence frequencies of
//! result rows — keyed by their certain columns — are compared against the
//! engine's computed existence probabilities. Agreement within Monte-Carlo
//! error certifies the continuous path (symbolic floors, grid
//! materialization, history-aware merging) end to end.

use crate::collapse;
use crate::error::{EngineError, Result};
use crate::history::HistoryRegistry;
use crate::plan::Plan;
use crate::pws::{run_classical, CanonValue, ConcreteTable};
use crate::relation::Relation;
use crate::select::ExecOptions;
use crate::value::Value;
use orion_pdf::sample::{Uniform, XorShift};
use std::collections::HashMap;

/// Frequency (or probability) of result keys, where a key is the canonical
/// form of a row's certain columns.
pub type KeyDistribution = HashMap<Vec<CanonValue>, f64>;

/// Samples one concrete world from the base tables.
fn sample_world(
    tables: &HashMap<String, Relation>,
    rng: &mut impl Uniform,
) -> HashMap<String, ConcreteTable> {
    let mut world = HashMap::new();
    let mut names: Vec<&String> = tables.keys().collect();
    names.sort();
    for name in names {
        let rel = &tables[name];
        let mut rows = Vec::new();
        'tuples: for t in &rel.tuples {
            let mut row = t.certain.clone();
            for n in &t.nodes {
                let Some(point) = n.joint.sample(rng) else {
                    continue 'tuples; // tuple absent in this world
                };
                for (dim, nd) in n.dims.iter().enumerate() {
                    let Some(attr) = nd.column else { continue };
                    if let Some(pos) = rel.schema.columns().iter().position(|c| c.id == attr) {
                        row[pos] = Value::Real(point[dim]);
                    }
                }
            }
            rows.push(row);
        }
        world.insert(
            name.clone(),
            ConcreteTable { name: name.clone(), columns: rel.schema.columns().to_vec(), rows },
        );
    }
    world
}

/// Extracts the certain-column key of a result row.
fn key_of(table: &ConcreteTable, row: &[Value]) -> Vec<CanonValue> {
    table
        .columns
        .iter()
        .zip(row)
        .filter(|(c, _)| !c.uncertain)
        .map(|(_, v)| CanonValue::from(v))
        .collect()
}

/// SplitMix64 finalizer: a bijective mixer on `u64`, used to derive
/// statistically independent per-worker seeds from `base_seed ^ worker`.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Monte-Carlo estimate: for each distinct certain-column key, the
/// fraction of sampled worlds in which the query emits a row with that
/// key. Keys never emitted are absent from the map.
pub fn mc_key_distribution(
    plan: &Plan,
    tables: &HashMap<String, Relation>,
    samples: usize,
    rng: &mut impl Uniform,
) -> Result<KeyDistribution> {
    if plan.has_threshold() {
        return Err(EngineError::Operator(
            "threshold operators are defined outside possible-worlds semantics".into(),
        ));
    }
    if samples == 0 {
        return Err(EngineError::Operator("need at least one sample".into()));
    }
    let mut counts: HashMap<Vec<CanonValue>, usize> = HashMap::new();
    for _ in 0..samples {
        let world = sample_world(tables, rng);
        let out = run_classical(plan, &world)?;
        let mut seen: Vec<Vec<CanonValue>> = Vec::new();
        for row in &out.rows {
            let key = key_of(&out, row);
            if !seen.contains(&key) {
                seen.push(key.clone());
                *counts.entry(key).or_insert(0) += 1;
            }
        }
    }
    Ok(counts.into_iter().map(|(k, c)| (k, c as f64 / samples as f64)).collect())
}

/// Parallel Monte-Carlo estimate: samples are sharded across a scoped
/// worker pool, each worker drawing from its own [`XorShift`] stream whose
/// seed is the worker index mixed into `base_seed` with [`splitmix64`]
/// (additive seeding can collide after wrap-around clamping; the bijective
/// mixer keeps the streams distinct), and per-worker presence counts are
/// summed.
///
/// **Determinism caveat:** the result is a pure function of
/// `(base_seed, threads, samples)` — reruns with the same triple are
/// bit-identical — but changing the thread count changes which RNG streams
/// are drawn, so estimates at different thread counts agree only within
/// Monte-Carlo error, unlike the exact operators where output is invariant
/// under the thread count. `threads == 0` resolves via
/// [`crate::exec_par::effective_threads`]; pin it explicitly where
/// reproducibility across machines matters.
pub fn mc_key_distribution_par(
    plan: &Plan,
    tables: &HashMap<String, Relation>,
    samples: usize,
    base_seed: u64,
    threads: usize,
) -> Result<KeyDistribution> {
    if plan.has_threshold() {
        return Err(EngineError::Operator(
            "threshold operators are defined outside possible-worlds semantics".into(),
        ));
    }
    if samples == 0 {
        return Err(EngineError::Operator("need at least one sample".into()));
    }
    let workers = crate::exec_par::effective_threads(threads).min(samples).max(1);
    let shards: Result<Vec<HashMap<Vec<CanonValue>, usize>>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            // Balanced partition: shard w covers [w*samples/workers,
            // (w+1)*samples/workers). Every bound is in range (no ceil-split
            // underflow on the trailing shards) and, since workers <=
            // samples, every shard is non-empty. u128 guards w * samples.
            let lo = (w as u128 * samples as u128 / workers as u128) as usize;
            let hi = ((w as u128 + 1) * samples as u128 / workers as u128) as usize;
            let n = hi - lo;
            handles.push(scope.spawn(move || {
                let mut rng = XorShift::new(splitmix64(base_seed ^ w as u64));
                let mut counts: HashMap<Vec<CanonValue>, usize> = HashMap::new();
                for _ in 0..n {
                    let world = sample_world(tables, &mut rng);
                    let out = run_classical(plan, &world)?;
                    let mut seen: Vec<Vec<CanonValue>> = Vec::new();
                    for row in &out.rows {
                        let key = key_of(&out, row);
                        if !seen.contains(&key) {
                            seen.push(key.clone());
                            *counts.entry(key).or_insert(0) += 1;
                        }
                    }
                }
                Ok(counts)
            }));
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut counts: HashMap<Vec<CanonValue>, usize> = HashMap::new();
    for shard in shards? {
        for (k, c) in shard {
            *counts.entry(k).or_insert(0) += c;
        }
    }
    Ok(counts.into_iter().map(|(k, c)| (k, c as f64 / samples as f64)).collect())
}

/// The engine side: executes the plan with the probabilistic operators and
/// returns, per certain-column key, the (history-aware) existence
/// probability of the result tuple carrying it.
pub fn engine_key_distribution(
    plan: &Plan,
    tables: &HashMap<String, Relation>,
    reg: &mut HistoryRegistry,
    opts: &ExecOptions,
) -> Result<KeyDistribution> {
    let rel = crate::plan::execute(plan, tables, reg, opts)?;
    let mut out = KeyDistribution::new();
    for t in &rel.tuples {
        let prob = if opts.use_histories {
            collapse::existence_prob(t, reg, opts.resolution)?
        } else {
            t.naive_existence()
        };
        let key: Vec<CanonValue> = rel
            .schema
            .columns()
            .iter()
            .zip(&t.certain)
            .filter(|(c, _)| !c.uncertain)
            .map(|(_, v)| CanonValue::from(v))
            .collect();
        *out.entry(key).or_insert(0.0) += prob;
    }
    // Keys with (numerically) zero probability are unobservable.
    out.retain(|_, p| *p > 1e-12);
    Ok(out)
}

/// Maximum absolute deviation between a Monte-Carlo estimate and the
/// engine's probabilities (missing keys count at full weight).
pub fn key_distribution_distance(a: &KeyDistribution, b: &KeyDistribution) -> f64 {
    let mut worst = 0.0f64;
    for (k, &pa) in a {
        worst = worst.max((pa - b.get(k).copied().unwrap_or(0.0)).abs());
    }
    for (k, &pb) in b {
        if !a.contains_key(k) {
            worst = worst.max(pb);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CmpOp, Predicate};
    use crate::schema::{ColumnType, ProbSchema};
    use orion_pdf::prelude::*;
    use orion_pdf::sample::XorShift;

    const SAMPLES: usize = 30_000;
    /// ~4 standard deviations of a Bernoulli(1/2) estimate at 30 K samples.
    const MC_TOL: f64 = 0.013;

    fn gaussian_table() -> (HashMap<String, Relation>, HistoryRegistry) {
        let mut reg = HistoryRegistry::new();
        let schema = ProbSchema::new(
            vec![("id", ColumnType::Int, false), ("x", ColumnType::Real, true)],
            vec![],
        )
        .unwrap();
        let mut rel = Relation::new("g", schema);
        for (id, m, v) in [(1, 0.0, 1.0), (2, 2.0, 4.0), (3, -1.0, 0.25)] {
            rel.insert_simple(
                &mut reg,
                &[("id", Value::Int(id))],
                &[("x", Pdf1::gaussian(m, v).unwrap())],
            )
            .unwrap();
        }
        let mut tables = HashMap::new();
        tables.insert("g".to_string(), rel);
        (tables, reg)
    }

    #[test]
    fn continuous_selection_conforms() {
        let (tables, mut reg) = gaussian_table();
        let plan = Plan::scan("g").select(Predicate::cmp("x", CmpOp::Lt, 0.5));
        let mut rng = XorShift::new(42);
        let mc = mc_key_distribution(&plan, &tables, SAMPLES, &mut rng).unwrap();
        let eng =
            engine_key_distribution(&plan, &tables, &mut reg, &ExecOptions::default()).unwrap();
        let d = key_distribution_distance(&mc, &eng);
        assert!(d < MC_TOL, "deviation {d}\nmc {mc:?}\nengine {eng:?}");
    }

    #[test]
    fn continuous_join_conforms() {
        // x < y across two Gaussian tables: exercises the grid
        // materialization path of the dependent floor.
        let mut reg = HistoryRegistry::new();
        let mut tables = HashMap::new();
        for (name, col, m, v) in [("l", "x", 0.0, 1.0), ("r", "y", 1.0, 1.0)] {
            let schema = ProbSchema::new(
                vec![("id", ColumnType::Int, false), (col, ColumnType::Real, true)],
                vec![],
            )
            .unwrap();
            let mut rel = Relation::new(name, schema);
            rel.insert_simple(
                &mut reg,
                &[("id", Value::Int(1))],
                &[(col, Pdf1::gaussian(m, v).unwrap())],
            )
            .unwrap();
            tables.insert(name.to_string(), rel);
        }
        let plan = Plan::scan("l")
            .join_on(Plan::scan("r"), Some(Predicate::cmp_cols("x", CmpOp::Lt, "y")));
        let mut rng = XorShift::new(7);
        let mc = mc_key_distribution(&plan, &tables, SAMPLES, &mut rng).unwrap();
        let eng = engine_key_distribution(
            &plan,
            &tables,
            &mut reg,
            &ExecOptions { resolution: 96, ..ExecOptions::default() },
        )
        .unwrap();
        // P(X < Y) for N(0,1) vs N(1,1) = Phi(1/sqrt(2)) ≈ 0.7602.
        let d = key_distribution_distance(&mc, &eng);
        assert!(d < MC_TOL + 0.01, "deviation {d}\nmc {mc:?}\nengine {eng:?}");
        let p = eng.values().next().copied().unwrap();
        assert!((p - 0.760_25).abs() < 0.02, "engine P(X<Y) = {p}");
    }

    #[test]
    fn fig3_shape_with_continuous_data_conforms() {
        // Projections of a correlated continuous joint, rejoined: the
        // history machinery on the grid path.
        let mut reg = HistoryRegistry::new();
        let schema = ProbSchema::new(
            vec![
                ("id", ColumnType::Int, false),
                ("a", ColumnType::Real, true),
                ("b", ColumnType::Real, true),
            ],
            vec![vec!["a", "b"]],
        )
        .unwrap();
        let mut rel = Relation::new("t", schema);
        // Correlated band: b concentrated near a.
        let dims =
            vec![GridDim::over(0.0, 10.0, 16).unwrap(), GridDim::over(0.0, 10.0, 16).unwrap()];
        let grid =
            JointGrid::from_density(dims, 1.0, |p| (-(p[1] - p[0]) * (p[1] - p[0])).exp()).unwrap();
        rel.insert(
            &mut reg,
            &[("id", Value::Int(1))],
            vec![(vec!["a", "b"], JointPdf::from_grid(grid))],
        )
        .unwrap();
        let mut tables = HashMap::new();
        tables.insert("t".to_string(), rel);

        let ta = Plan::scan("t").project(&["id", "a"]);
        let tb = Plan::scan("t").select(Predicate::cmp("b", CmpOp::Gt, 5.0)).project(&["id", "b"]);
        let plan =
            ta.join_on(tb, Some(Predicate::cmp_cols("pi(t).id", CmpOp::Eq, "pi(sigma(t)).id")));
        let mut rng = XorShift::new(99);
        let mc = mc_key_distribution(&plan, &tables, SAMPLES, &mut rng).unwrap();
        let eng =
            engine_key_distribution(&plan, &tables, &mut reg, &ExecOptions::default()).unwrap();
        let d = key_distribution_distance(&mc, &eng);
        assert!(d < MC_TOL + 0.01, "deviation {d}\nmc {mc:?}\nengine {eng:?}");
    }

    #[test]
    fn partial_pdfs_reduce_presence_frequency() {
        let mut reg = HistoryRegistry::new();
        let schema = ProbSchema::new(
            vec![("id", ColumnType::Int, false), ("x", ColumnType::Real, true)],
            vec![],
        )
        .unwrap();
        let mut rel = Relation::new("p", schema);
        rel.insert_simple(
            &mut reg,
            &[("id", Value::Int(1))],
            &[("x", Pdf1::discrete(vec![(1.0, 0.3)]).unwrap())],
        )
        .unwrap();
        let mut tables = HashMap::new();
        tables.insert("p".to_string(), rel);
        let plan = Plan::scan("p");
        let mut rng = XorShift::new(5);
        let mc = mc_key_distribution(&plan, &tables, SAMPLES, &mut rng).unwrap();
        let p = mc.values().next().copied().unwrap_or(0.0);
        assert!((p - 0.3).abs() < MC_TOL, "presence {p}");
    }

    #[test]
    fn parallel_sampler_is_deterministic_and_conforms() {
        let (tables, mut reg) = gaussian_table();
        let plan = Plan::scan("g").select(Predicate::cmp("x", CmpOp::Lt, 0.5));
        let a = mc_key_distribution_par(&plan, &tables, SAMPLES, 42, 4).unwrap();
        let b = mc_key_distribution_par(&plan, &tables, SAMPLES, 42, 4).unwrap();
        assert_eq!(a.len(), b.len());
        for (k, &pa) in &a {
            assert_eq!(Some(&pa), b.get(k), "same (seed, threads) must be bit-identical");
        }
        let eng =
            engine_key_distribution(&plan, &tables, &mut reg, &ExecOptions::default()).unwrap();
        let d = key_distribution_distance(&a, &eng);
        assert!(d < MC_TOL, "deviation {d}\nmc {a:?}\nengine {eng:?}");
        // Different thread counts draw different streams: still within
        // Monte-Carlo error of the engine, not bit-identical to each other.
        let c = mc_key_distribution_par(&plan, &tables, SAMPLES, 42, 2).unwrap();
        assert!(key_distribution_distance(&c, &eng) < MC_TOL);
    }

    #[test]
    fn parallel_sampler_uneven_shards_are_exact() {
        let (tables, _) = gaussian_table();
        let plan = Plan::scan("g");
        // Shard splits where a ceil partition would run off the end
        // (workers * per_worker > samples) and the worst-case seed for
        // additive wrap-around: frequencies must stay exact multiples of
        // 1/samples, and full-mass tuples must land on exactly 1.
        for (samples, threads) in [(5, 4), (7, 3), (100, 64), (3, 8)] {
            let d = mc_key_distribution_par(&plan, &tables, samples, u64::MAX, threads).unwrap();
            assert_eq!(d.len(), 3, "samples={samples} threads={threads}");
            for &p in d.values() {
                assert!(
                    (p - 1.0).abs() < 1e-12,
                    "full-mass pdfs are present in every world; samples={samples} \
                     threads={threads}: p={p}"
                );
            }
        }
    }

    #[test]
    fn parallel_sampler_validation() {
        let (tables, _) = gaussian_table();
        let plan =
            Plan::ThresholdAttrs(Box::new(Plan::scan("g")), vec!["x".into()], CmpOp::Gt, 0.5);
        assert!(mc_key_distribution_par(&plan, &tables, 10, 1, 2).is_err());
        assert!(mc_key_distribution_par(&Plan::scan("g"), &tables, 0, 1, 2).is_err());
    }

    #[test]
    fn threshold_plans_rejected() {
        let (tables, _) = gaussian_table();
        let plan =
            Plan::ThresholdAttrs(Box::new(Plan::scan("g")), vec!["x".into()], CmpOp::Gt, 0.5);
        let mut rng = XorShift::new(1);
        assert!(mc_key_distribution(&plan, &tables, 10, &mut rng).is_err());
        assert!(mc_key_distribution(&Plan::scan("g"), &tables, 0, &mut rng).is_err());
    }
}
