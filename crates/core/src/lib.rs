//! # orion-core — the probabilistic relational model of Orion-RS
//!
//! This crate is the primary contribution of *"Database Support for
//! Probabilistic Attributes and Tuples"* (ICDE 2008), reproduced in Rust:
//! a relational model supporting **continuous and discrete** uncertainty at
//! the attribute and tuple level, consistent with and closed under
//! **possible worlds semantics** for selection, projection, and join.
//!
//! Structure, mapped to the paper:
//!
//! * [`schema`] — probabilistic schemas `(Σ, Δ)` with dependency sets and
//!   the closure Ω (Definitions in Section II-A / III-C).
//! * [`tuple`](mod@tuple) / [`relation`] — probabilistic tuples holding joint pdfs per
//!   dependency set, partial pdfs for maybe-tuples (Section II-B).
//! * [`history`] — the ancestor function `A(·)`, phantom nodes, and
//!   reference counting (Section II-C).
//! * [`collapse`] — the history-aware `product` of dependent pdfs
//!   (Section III-A) used to recombine after joins (Figure 3).
//! * [`select`] / [`project`] / [`join`] — the PWS-closed operators
//!   (Sections III-B/C/D), with symbolic floor fast paths.
//! * [`exec_par`] — the morsel-driven parallel executor: scoped-thread
//!   worker pool, two-phase compute/commit protocol, deterministic
//!   history-id reservation for bulk loads.
//! * [`threshold`] — operations on probability values (Section III-E).
//! * [`pws`] — a brute-force possible-worlds reference engine used to
//!   certify the operators against PWS on finite discrete inputs.
//! * [`monte_carlo`] — sampled-worlds conformance checking for continuous
//!   inputs, where exhaustive enumeration is impossible.
//! * [`agg`] — aggregation over uncertain attributes with exact
//!   convolution and continuous (Gaussian) approximation, the paper's
//!   motivating extension.
//! * [`persist`] / [`durable`] — atomic snapshots, a write-ahead log with
//!   fsync'd commits, and crash recovery that replays the WAL over the
//!   last good snapshot.
//! * [`txn`] — snapshot-isolation transactions (private snapshot views,
//!   first-committer-wins validation, atomic all-or-nothing WAL commit).

pub mod agg;
pub mod batch;
pub mod collapse;
pub mod durable;
pub mod error;
pub mod exec_par;
pub mod history;
pub mod index;
pub mod interval_of_cmp;
pub mod join;
pub mod monte_carlo;
pub mod persist;
pub mod pindex;
pub mod plan;
pub mod plan_feedback;
pub mod predicate;
pub mod project;
pub mod pws;
pub mod relation;
pub mod schema;
pub mod select;
pub mod stats_catalog;
pub mod threshold;
pub mod tuple;
pub mod txn;
pub mod value;

/// Commonly used types, re-exported for ergonomic imports.
pub mod prelude {
    pub use crate::batch::ExecMode;
    pub use crate::collapse::{collapse_tuple, existence_prob, DEFAULT_RESOLUTION};
    pub use crate::durable::{
        check_invariants, ActiveTxnInfo, DurableDb, RecoveryReport, SharedDurableDb, WORKLOAD_FILE,
    };
    pub use crate::error::{EngineError, Result as EngineResult};
    pub use crate::exec_par::{effective_threads, insert_batch, BulkRow, DEFAULT_MORSEL_SIZE};
    pub use crate::history::{Ancestors, HistoryRegistry, PdfId};
    pub use crate::join::{cross, join};
    pub use crate::pindex::{
        BuiltIndex, IndexCatalog, IndexDef, IndexHandle, IndexKind, PlannerMode,
    };
    pub use crate::plan::{AccessPlan, CostModel, Plan};
    pub use crate::plan_feedback::{q_error, FeedbackSummary, PlanFeedbackStore};
    pub use crate::predicate::{CmpOp, Predicate, Scalar};
    pub use crate::project::project;
    pub use crate::relation::Relation;
    pub use crate::schema::{closure, AttrId, Column, ColumnType, ProbSchema};
    pub use crate::select::{select, select_masked, ExecOptions};
    pub use crate::stats_catalog::{analyze_relation, StatsCatalog, TableStats};
    pub use crate::threshold::{threshold_attrs, threshold_pred, threshold_pred_masked};
    pub use crate::tuple::{PdfNode, ProbTuple};
    pub use crate::txn::Txn;
    pub use crate::value::Value;
    pub use orion_storage::{GroupCommitConfig, IoSnapshot, IoStats};
}
