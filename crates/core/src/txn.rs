//! Snapshot-isolation transactions over [`SharedDurableDb`].
//!
//! A [`Txn`] takes a **private snapshot** of the database at begin — a deep
//! clone of the tables and history registry, taken with the WAL pipeline
//! drained so only durable state is ever visible (no dirty reads). All
//! reads and DML run against that private view; nothing is shared until
//! commit.
//!
//! **Write-set and provenance.** Every DML statement appends a [`WriteOp`]
//! and tags the affected private rows with where they came from:
//! committed rows are identified by their exact encoded tuple bytes (the
//! *content address* — base-pdf ids make pdf-carrying tuples unique, and
//! byte-equal certain-only duplicates are interchangeable), own inserts
//! and own updates point back at their op. Deleting an own insert voids
//! it; updating an own update amends it — the WAL only ever sees the
//! transaction's *net* effect.
//!
//! **Commit protocol** (first-committer-wins snapshot isolation), all
//! under the drained core lock:
//!
//! 1. **Validate**: every committed row this transaction deleted or
//!    updated must still exist byte-identically (multiset-counted), and
//!    every table it created must still be free. Any mismatch means a
//!    concurrent transaction committed first — the commit fails with
//!    retryable [`EngineError::TxnConflict`] before touching the WAL, the
//!    registry, or memory, so a conflicted transaction leaves no trace.
//! 2. **Assign ids**: base pdfs this transaction registered (private ids
//!    above the snapshot's high-water mark) are mapped, in ascending
//!    private-id order, onto the next real ids — deterministic in commit
//!    order, exactly what serial inserts would have allocated.
//! 3. **Log**: one atomic [`orion_storage::GroupWal`] batch —
//!    `[begin] [bases] [ops…] [commit]` — using the WAL record tags of
//!    [`crate::persist`]. Recovery applies the group all-or-nothing: a
//!    crash anywhere before the commit marker reaches stable storage
//!    discards the whole transaction.
//! 4. **Apply**: on durable success the same records are fed through
//!    [`crate::persist::apply_record`] into the live tables/registry —
//!    the *identical* decoder recovery uses, so live state and any replay
//!    are bit-for-bit the same. A failed WAL commit applies nothing.
//!
//! Deletes and updates set the durable layer's `mutated` mark so the next
//! checkpoint is full (the incremental append-only diff would be wrong).

use crate::durable::{SharedCore, SharedDurableDb};
use crate::error::{EngineError, Result};
use crate::history::{HistoryRegistry, PdfId};
use crate::persist::{self, LoadState, TAG_TXN_BEGIN, TAG_TXN_COMMIT};
use crate::relation::Relation;
use crate::schema::ProbSchema;
use crate::tuple::ProbTuple;
use crate::value::Value;
use orion_pdf::prelude::{JointPdf, Pdf1};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Process-global transaction id allocator (ids are never reused).
static NEXT_TXN_ID: AtomicU64 = AtomicU64::new(1);

fn next_txn_id() -> u64 {
    NEXT_TXN_ID.fetch_add(1, Ordering::Relaxed)
}

fn metrics() -> &'static orion_obs::metrics::MetricsRegistry {
    orion_obs::metrics::global()
}

/// A span on the calling thread's `txn` lane, inert while tracing is off.
fn txn_span(name: &'static str) -> orion_obs::Span {
    let t = orion_obs::Tracer::global();
    if !t.enabled() {
        return orion_obs::Span::noop();
    }
    t.thread_lane("txn").span(name, "txn")
}

/// Where a private row came from (parallel to the private table's tuples).
#[derive(Debug, Clone)]
enum RowSrc {
    /// In the snapshot at begin; `bytes` is its content address.
    Committed { bytes: Vec<u8> },
    /// Inserted by this transaction; `ops[op]` is its insert.
    OwnInsert { op: usize },
    /// A committed row this transaction already updated; `ops[op]` is the
    /// update (holding the *original* committed bytes).
    OwnUpdate { op: usize },
}

/// One staged effect, in statement order.
#[derive(Debug, Clone)]
enum WriteOp {
    CreateTable {
        name: String,
        schema: ProbSchema,
    },
    Insert {
        table: String,
        tuple: ProbTuple,
    },
    Delete {
        table: String,
        old: Vec<u8>,
    },
    Update {
        table: String,
        old: Vec<u8>,
        new: ProbTuple,
    },
    /// Cancelled by a later statement of the same transaction (delete of
    /// an own insert). Never reaches the WAL.
    Voided,
}

/// A snapshot-isolation transaction. Obtain via [`Txn::begin`]; finish
/// with [`Txn::commit`] or [`Txn::rollback`] (dropping without either
/// counts as an abort).
#[derive(Debug)]
pub struct Txn {
    db: SharedDurableDb,
    id: u64,
    snapshot_epoch: u64,
    /// Registry high-water mark at begin: private ids above this were
    /// registered by this transaction and get remapped at commit.
    snap_last_base: PdfId,
    /// Private deep clone of the tables (committed ids preserved).
    tables: HashMap<String, Relation>,
    /// Private deep clone of the registry.
    reg: HistoryRegistry,
    /// Row provenance, parallel to each private table's `tuples`.
    src: HashMap<String, Vec<RowSrc>>,
    ops: Vec<WriteOp>,
    /// Live write-op count shared with the `orion.txns` registry.
    writes: Arc<AtomicUsize>,
    finished: bool,
}

impl Txn {
    /// Begins a transaction: drains the WAL pipeline (so the snapshot
    /// holds only durable state — the no-dirty-reads guarantee) and deep
    /// clones tables + registry as the private view.
    pub fn begin(db: &SharedDurableDb) -> Txn {
        let mut span = txn_span("txn.begin");
        let id = next_txn_id();
        if span.is_recording() {
            span.arg("txid", id);
        }
        metrics().counter("txn_begins").inc();
        let (tables, reg, snapshot_epoch) = {
            let core = db.lock_drained();
            (core.tables.clone(), core.reg.clone(), core.epoch)
        };
        let snap_last_base = reg.last_id();
        let src = tables
            .iter()
            .map(|(name, rel)| {
                let rows = rel
                    .tuples
                    .iter()
                    .map(|t| {
                        let mut bytes = Vec::new();
                        persist::encode_tuple(name, t, &mut bytes);
                        RowSrc::Committed { bytes }
                    })
                    .collect();
                (name.clone(), rows)
            })
            .collect();
        let writes = Arc::new(AtomicUsize::new(0));
        db.inner.txns.lock().insert(id, (snapshot_epoch, Arc::clone(&writes)));
        Txn {
            db: db.clone(),
            id,
            snapshot_epoch,
            snap_last_base,
            tables,
            reg,
            src,
            ops: Vec::new(),
            writes,
            finished: false,
        }
    }

    /// Transaction id (process-global, monotonic).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Checkpoint epoch of the chain when the snapshot was taken.
    pub fn snapshot_epoch(&self) -> u64 {
        self.snapshot_epoch
    }

    /// Number of live (non-voided) staged write ops.
    pub fn write_count(&self) -> usize {
        self.ops.iter().filter(|o| !matches!(o, WriteOp::Voided)).count()
    }

    fn note_writes(&self) {
        self.writes.store(self.write_count(), Ordering::Relaxed);
    }

    /// Runs `f` with read access to the private view. The registry is
    /// mutable so query operators can do their reference bookkeeping;
    /// bases they touch are private and never leak into the commit.
    pub fn with_view<R>(
        &mut self,
        f: impl FnOnce(&HashMap<String, Relation>, &mut HistoryRegistry) -> R,
    ) -> R {
        f(&self.tables, &mut self.reg)
    }

    /// One private table, read-only.
    pub fn table(&self, name: &str) -> Result<&Relation> {
        self.tables
            .get(name)
            .ok_or_else(|| EngineError::Operator(format!("unknown table '{name}'")))
    }

    /// Stages a table creation.
    pub fn create_table(&mut self, name: &str, schema: ProbSchema) -> Result<()> {
        if self.tables.contains_key(name) {
            return Err(EngineError::Schema(format!("table '{name}' already exists")));
        }
        self.tables.insert(name.to_string(), Relation::new(name, schema.clone()));
        self.src.insert(name.to_string(), Vec::new());
        self.ops.push(WriteOp::CreateTable { name: name.to_string(), schema });
        self.note_writes();
        Ok(())
    }

    /// Stages an insert (see [`Relation::insert`]).
    pub fn insert(
        &mut self,
        table: &str,
        certain: &[(&str, Value)],
        uncertain: Vec<(Vec<&str>, JointPdf)>,
    ) -> Result<()> {
        let rel = self
            .tables
            .get_mut(table)
            .ok_or_else(|| EngineError::Operator(format!("unknown table '{table}'")))?;
        rel.insert(&mut self.reg, certain, uncertain)?;
        let tuple = rel.tuples.last().expect("insert pushed a tuple").clone();
        self.ops.push(WriteOp::Insert { table: table.to_string(), tuple });
        self.src
            .get_mut(table)
            .expect("provenance tracked per table")
            .push(RowSrc::OwnInsert { op: self.ops.len() - 1 });
        self.note_writes();
        Ok(())
    }

    /// Stages an insert of independent 1-D pdfs (see
    /// [`Relation::insert_simple`]).
    pub fn insert_simple(
        &mut self,
        table: &str,
        certain: &[(&str, Value)],
        pdfs: &[(&str, Pdf1)],
    ) -> Result<()> {
        let uncertain =
            pdfs.iter().map(|(name, p)| (vec![*name], JointPdf::from_pdf1(p.clone()))).collect();
        self.insert(table, certain, uncertain)
    }

    /// Stages deletion of every tuple with `remove(tuple) == true`,
    /// mirroring [`Relation::delete_where`]'s history bookkeeping in the
    /// private view. Deleting a row this transaction inserted simply voids
    /// the insert.
    pub fn delete_where(
        &mut self,
        table: &str,
        mut remove: impl FnMut(&ProbTuple) -> bool,
    ) -> Result<usize> {
        let rel = self
            .tables
            .get_mut(table)
            .ok_or_else(|| EngineError::Operator(format!("unknown table '{table}'")))?;
        let src = self.src.get_mut(table).expect("provenance tracked per table");
        let mut removed = 0usize;
        let mut i = 0usize;
        while i < rel.tuples.len() {
            if !remove(&rel.tuples[i]) {
                i += 1;
                continue;
            }
            let t = rel.tuples.remove(i);
            let s = src.remove(i);
            removed += 1;
            for n in &t.nodes {
                self.reg.release_refs(&n.ancestors);
                if n.ancestors.len() == 1 {
                    let id = *n.ancestors.iter().next().expect("len checked");
                    self.reg.delete_base(id);
                }
            }
            match s {
                RowSrc::Committed { bytes } => {
                    self.ops.push(WriteOp::Delete { table: table.to_string(), old: bytes });
                }
                RowSrc::OwnInsert { op } => self.ops[op] = WriteOp::Voided,
                RowSrc::OwnUpdate { op } => {
                    // Net effect: delete the original committed row.
                    let old = match std::mem::replace(&mut self.ops[op], WriteOp::Voided) {
                        WriteOp::Update { old, .. } => old,
                        other => unreachable!("OwnUpdate points at an update, found {other:?}"),
                    };
                    self.ops.push(WriteOp::Delete { table: table.to_string(), old });
                }
            }
        }
        self.note_writes();
        Ok(removed)
    }

    /// Stages an in-place update of every tuple with
    /// `selects(tuple) == true`. `apply` receives a working copy of the
    /// tuple plus the private registry (to register replacement base pdfs
    /// via [`HistoryRegistry::register`] — do **not** `add_refs`; the
    /// transaction diffs old vs new nodes and does all reference
    /// bookkeeping itself, exactly like WAL replay will).
    pub fn update_where(
        &mut self,
        table: &str,
        mut selects: impl FnMut(&ProbTuple) -> bool,
        mut apply: impl FnMut(&mut ProbTuple, &mut HistoryRegistry) -> Result<()>,
    ) -> Result<usize> {
        let rel = self
            .tables
            .get_mut(table)
            .ok_or_else(|| EngineError::Operator(format!("unknown table '{table}'")))?;
        let src = self.src.get_mut(table).expect("provenance tracked per table");
        let mut updated = 0usize;
        // Indexing both parallel vectors (tuples + provenance) by position.
        #[allow(clippy::needless_range_loop)]
        for i in 0..rel.tuples.len() {
            if !selects(&rel.tuples[i]) {
                continue;
            }
            let mut new_t = rel.tuples[i].clone();
            apply(&mut new_t, &mut self.reg)?;
            let old_t = std::mem::replace(&mut rel.tuples[i], new_t.clone());
            diff_nodes(&mut self.reg, &old_t, &new_t);
            updated += 1;
            match &src[i] {
                RowSrc::Committed { bytes } => {
                    self.ops.push(WriteOp::Update {
                        table: table.to_string(),
                        old: bytes.clone(),
                        new: new_t,
                    });
                    src[i] = RowSrc::OwnUpdate { op: self.ops.len() - 1 };
                }
                RowSrc::OwnInsert { op } => {
                    let op = *op;
                    match &mut self.ops[op] {
                        WriteOp::Insert { tuple, .. } => *tuple = new_t,
                        other => unreachable!("OwnInsert points at an insert, found {other:?}"),
                    }
                }
                RowSrc::OwnUpdate { op } => {
                    let op = *op;
                    match &mut self.ops[op] {
                        WriteOp::Update { new, .. } => *new = new_t,
                        other => unreachable!("OwnUpdate points at an update, found {other:?}"),
                    }
                }
            }
        }
        self.note_writes();
        Ok(updated)
    }

    /// Commits: validate → assign ids → atomic WAL batch → apply to the
    /// shared state through the replay decoder. Returns the commit
    /// sequence number. On [`EngineError::TxnConflict`] (retryable) or a
    /// WAL failure, nothing is applied anywhere and the transaction is
    /// gone without trace.
    pub fn commit(mut self) -> Result<u64> {
        self.finished = true;
        let started = std::time::Instant::now();
        let mut span = txn_span("txn.commit");
        if span.is_recording() {
            span.arg("txid", self.id);
            span.arg("writes", self.write_count() as u64);
        }
        let db = self.db.clone();
        let live: Vec<WriteOp> =
            self.ops.iter().filter(|o| !matches!(o, WriteOp::Voided)).cloned().collect();
        db.inner.txns.lock().remove(&self.id);
        if live.is_empty() {
            // Read-only (or fully self-cancelled): nothing to validate,
            // log, or apply.
            metrics().counter("txn_commits").inc();
            metrics().histogram("txn.commit_nanos").record(started.elapsed().as_nanos() as u64);
            return Ok(db.inner.core.lock().commit_seq);
        }
        let mut core = db.lock_drained();
        if let Err(e) = validate(&core, &live) {
            metrics().counter("txn_conflicts").inc();
            return Err(e);
        }
        // Fresh base pdfs referenced by the surviving ops, mapped onto the
        // next real ids in ascending private-id order — the ids serial
        // inserts would have allocated in commit order.
        let mut needed: BTreeSet<PdfId> = BTreeSet::new();
        for op in &live {
            match op {
                WriteOp::Insert { tuple, .. } | WriteOp::Update { new: tuple, .. } => {
                    for n in &tuple.nodes {
                        for d in &n.dims {
                            if d.var.base > self.snap_last_base {
                                needed.insert(d.var.base);
                            }
                        }
                        for &a in &n.ancestors {
                            if a > self.snap_last_base {
                                needed.insert(a);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        let mut map: HashMap<PdfId, PdfId> = HashMap::with_capacity(needed.len());
        let mut next = core.reg.last_id();
        for &pid in &needed {
            next += 1;
            map.insert(pid, next);
        }
        // Build the atomic WAL batch: [begin] [bases] [ops…] [commit].
        let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(live.len() + needed.len() + 2);
        let mut buf = Vec::new();
        persist::encode_txn_marker(TAG_TXN_BEGIN, self.id, &mut buf);
        payloads.push(std::mem::take(&mut buf));
        for (&pid, &rid) in needed.iter().map(|p| (p, &map[p])) {
            let base = self.reg.base(pid)?;
            persist::encode_base(rid, base, &mut buf);
            payloads.push(std::mem::take(&mut buf));
        }
        let mut mutated = false;
        let mut touched: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        for op in &live {
            match op {
                WriteOp::CreateTable { name, schema } => {
                    persist::encode_schema(&Relation::new(name.clone(), schema.clone()), &mut buf);
                }
                WriteOp::Insert { table, tuple } => {
                    touched.insert(table.clone());
                    persist::encode_tuple(table, &remap_tuple(tuple, &map), &mut buf);
                }
                WriteOp::Delete { table, old } => {
                    mutated = true;
                    touched.insert(table.clone());
                    persist::encode_delete(table, old, &mut buf);
                }
                WriteOp::Update { table, old, new } => {
                    mutated = true;
                    touched.insert(table.clone());
                    let mut new_rec = Vec::new();
                    persist::encode_tuple(table, &remap_tuple(new, &map), &mut new_rec);
                    persist::encode_update(table, old, &new_rec, &mut buf);
                }
                WriteOp::Voided => unreachable!("voided ops were filtered"),
            }
            payloads.push(std::mem::take(&mut buf));
        }
        persist::encode_txn_marker(TAG_TXN_COMMIT, self.id, &mut buf);
        payloads.push(std::mem::take(&mut buf));
        // One atomic group-commit batch, under the drained core lock: no
        // concurrent record can interleave inside the transaction's frame.
        if let Err(e) = db.inner.wal.commit(&payloads) {
            metrics().counter("txn_aborts").inc();
            return Err(e.into());
        }
        // Durable — apply through the same decoder recovery uses, so the
        // live state is bit-for-bit what any replay rebuilds.
        let mut ls = LoadState::default();
        std::mem::swap(&mut ls.tables, &mut core.tables);
        std::mem::swap(&mut ls.reg, &mut core.reg);
        let mut apply_err = None;
        for rec in &payloads {
            if persist::txn_marker(rec).is_some() {
                continue;
            }
            if let Err(e) = persist::apply_record(rec, &mut ls) {
                apply_err = Some(e);
                break;
            }
        }
        let (tables, reg) = ls.finish();
        core.tables = tables;
        core.reg = reg;
        if let Some(e) = apply_err {
            // Unreachable by construction (we just encoded these records);
            // surfaced as corruption rather than silently diverging from
            // the WAL.
            return Err(e);
        }
        if mutated {
            core.marks.mutated = true;
        }
        // Invalidate secondary indexes over every table this transaction
        // wrote: built trees carry tuple positions, which DML shifts.
        {
            let mut cat = core.indexes.lock();
            for table in &touched {
                cat.note_mutation(table);
            }
        }
        core.commit_seq += 1;
        let seq = core.commit_seq;
        drop(core);
        metrics().counter("txn_commits").inc();
        metrics().histogram("txn.commit_nanos").record(started.elapsed().as_nanos() as u64);
        if span.is_recording() {
            span.arg("commit_seq", seq);
        }
        Ok(seq)
    }

    /// Rolls the transaction back: the private view is discarded, nothing
    /// was ever shared or logged.
    pub fn rollback(mut self) {
        self.finished = true;
        let mut span = txn_span("txn.abort");
        if span.is_recording() {
            span.arg("txid", self.id);
        }
        self.db.inner.txns.lock().remove(&self.id);
        metrics().counter("txn_aborts").inc();
    }
}

impl Drop for Txn {
    fn drop(&mut self) {
        if !self.finished {
            self.db.inner.txns.lock().remove(&self.id);
            metrics().counter("txn_aborts").inc();
        }
    }
}

/// First-committer-wins validation against the current committed state.
fn validate(core: &SharedCore, live: &[WriteOp]) -> Result<()> {
    // Per-table multiset of committed content addresses this transaction
    // consumed (deleted or updated).
    let mut needs: HashMap<&str, HashMap<&[u8], usize>> = HashMap::new();
    for op in live {
        match op {
            WriteOp::CreateTable { name, .. } => {
                if core.tables.contains_key(name) {
                    return Err(EngineError::TxnConflict(format!(
                        "table '{name}' was created concurrently"
                    )));
                }
            }
            WriteOp::Delete { table, old } | WriteOp::Update { table, old, .. } => {
                *needs.entry(table.as_str()).or_default().entry(old.as_slice()).or_insert(0) += 1;
            }
            WriteOp::Insert { table, .. } => {
                // Tables cannot be dropped, so an insert target that
                // existed at snapshot (or is created by this txn) still
                // exists; nothing to validate.
                let _ = table;
            }
            WriteOp::Voided => unreachable!("voided ops were filtered"),
        }
    }
    for (table, wanted) in &needs {
        let rel = core.tables.get(*table).ok_or_else(|| {
            EngineError::TxnConflict(format!("table '{table}' vanished before commit"))
        })?;
        let mut have: HashMap<&[u8], usize> = wanted.keys().map(|k| (*k, 0usize)).collect();
        let mut buf = Vec::new();
        for t in &rel.tuples {
            buf.clear();
            persist::encode_tuple(table, t, &mut buf);
            if let Some(n) = have.get_mut(buf.as_slice()) {
                *n += 1;
            }
        }
        for (bytes, &need_n) in wanted {
            if have[bytes] < need_n {
                return Err(EngineError::TxnConflict(format!(
                    "a row written in '{table}' changed since this transaction's snapshot \
                     (need {need_n} matching, found {})",
                    have[bytes]
                )));
            }
        }
    }
    Ok(())
}

/// Rewrites a tuple's private base ids onto their committed ids — both the
/// ancestor sets and every dimension's variable identity.
fn remap_tuple(t: &ProbTuple, map: &HashMap<PdfId, PdfId>) -> ProbTuple {
    if map.is_empty() {
        return t.clone();
    }
    let mut t = t.clone();
    for n in &mut t.nodes {
        for d in &mut n.dims {
            if let Some(&rid) = map.get(&d.var.base) {
                d.var.base = rid;
            }
        }
        n.ancestors = n.ancestors.iter().map(|a| map.get(a).copied().unwrap_or(*a)).collect();
    }
    t
}

/// Reference bookkeeping for an in-place tuple replacement, position-wise
/// over the nodes — the same logic [`crate::persist::apply_record`] runs
/// for an update record, so private view and replay stay identical. New
/// references are taken before old ones are released, so a base shared by
/// both sides can never transiently hit refcount zero.
fn diff_nodes(reg: &mut HistoryRegistry, old_t: &ProbTuple, new_t: &ProbTuple) {
    for i in 0..old_t.nodes.len().max(new_t.nodes.len()) {
        if old_t.nodes.get(i) == new_t.nodes.get(i) {
            continue;
        }
        if let Some(nw) = new_t.nodes.get(i) {
            reg.add_refs(&nw.ancestors);
        }
        if let Some(o) = old_t.nodes.get(i) {
            reg.release_refs(&o.ancestors);
            if o.ancestors.len() == 1 {
                let id = *o.ancestors.iter().next().expect("len checked");
                reg.delete_base(id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::DurableDb;
    use crate::schema::ColumnType;
    use orion_storage::GroupCommitConfig;
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("orion_txn_test").join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn schema() -> ProbSchema {
        ProbSchema::new(vec![("id", ColumnType::Int, false), ("v", ColumnType::Real, true)], vec![])
            .unwrap()
    }

    fn open(dir: &std::path::Path) -> SharedDurableDb {
        SharedDurableDb::open(dir, GroupCommitConfig::default()).unwrap()
    }

    fn id_of(t: &ProbTuple) -> i64 {
        match t.certain[0] {
            Value::Int(i) => i,
            _ => panic!("id is an int"),
        }
    }

    #[test]
    fn txn_commit_is_atomic_and_durable() {
        let dir = temp_dir("commit");
        let db = open(&dir);
        let mut txn = Txn::begin(&db);
        txn.create_table("readings", schema()).unwrap();
        for i in 0..3 {
            txn.insert_simple(
                "readings",
                &[("id", Value::Int(i))],
                &[("v", Pdf1::gaussian(i as f64, 1.0).unwrap())],
            )
            .unwrap();
        }
        // Nothing visible before commit.
        db.with_tables(|tables, _| assert!(tables.is_empty()));
        let seq = txn.commit().unwrap();
        assert_eq!(seq, 1);
        db.with_tables(|tables, _| assert_eq!(tables["readings"].len(), 3));
        db.check_invariants().unwrap();
        drop(db);
        let re = DurableDb::open(&dir).unwrap();
        assert_eq!(re.table("readings").unwrap().len(), 3);
        re.check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delete_and_update_survive_recovery() {
        let dir = temp_dir("dml");
        let db = open(&dir);
        let mut t0 = Txn::begin(&db);
        t0.create_table("readings", schema()).unwrap();
        for i in 0..4 {
            t0.insert_simple(
                "readings",
                &[("id", Value::Int(i))],
                &[("v", Pdf1::gaussian(i as f64, 1.0).unwrap())],
            )
            .unwrap();
        }
        t0.commit().unwrap();

        let mut t1 = Txn::begin(&db);
        assert_eq!(t1.delete_where("readings", |t| id_of(t) == 2).unwrap(), 1);
        let updated = t1
            .update_where(
                "readings",
                |t| id_of(t) == 3,
                |t, reg| {
                    // Replace the pdf node with a fresh certain value.
                    let joint = JointPdf::from_pdf1(Pdf1::certain(99.0));
                    let old_attr = t.nodes[0].dims[0].column.expect("visible column");
                    let id = reg.register(vec![old_attr], joint.clone());
                    t.nodes[0] = crate::tuple::PdfNode::base(
                        id,
                        &[old_attr],
                        joint,
                        [id].into_iter().collect(),
                    );
                    Ok(())
                },
            )
            .unwrap();
        assert_eq!(updated, 1);
        t1.commit().unwrap();

        db.with_tables(|tables, _| {
            let ids: Vec<i64> = tables["readings"].tuples.iter().map(id_of).collect();
            assert_eq!(ids, vec![0, 1, 3]);
        });
        db.check_invariants().unwrap();
        drop(db);
        let re = DurableDb::open(&dir).unwrap();
        let rel = re.table("readings").unwrap();
        let ids: Vec<i64> = rel.tuples.iter().map(id_of).collect();
        assert_eq!(ids, vec![0, 1, 3]);
        let m = rel.marginal(2, "v").unwrap();
        assert!((m.expected_value().unwrap() - 99.0).abs() < 1e-9, "update replayed");
        re.check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn first_committer_wins_and_loser_retries() {
        let dir = temp_dir("conflict");
        let db = open(&dir);
        let mut t0 = Txn::begin(&db);
        t0.create_table("readings", schema()).unwrap();
        t0.insert_simple("readings", &[("id", Value::Int(1))], &[("v", Pdf1::certain(1.0))])
            .unwrap();
        t0.commit().unwrap();

        let mut a = Txn::begin(&db);
        let mut b = Txn::begin(&db);
        a.delete_where("readings", |t| id_of(t) == 1).unwrap();
        b.delete_where("readings", |t| id_of(t) == 1).unwrap();
        a.commit().unwrap();
        let err = b.commit().unwrap_err();
        assert!(matches!(err, EngineError::TxnConflict(_)), "got {err}");
        assert!(err.is_retryable());
        // Retry on a fresh snapshot: the row is gone, nothing to delete.
        let mut b2 = Txn::begin(&db);
        assert_eq!(b2.delete_where("readings", |t| id_of(t) == 1).unwrap(), 0);
        b2.commit().unwrap();
        db.with_tables(|tables, _| assert_eq!(tables["readings"].len(), 0));
        db.check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rollback_and_self_cancel_leave_no_trace() {
        let dir = temp_dir("rollback");
        let db = open(&dir);
        let mut t0 = Txn::begin(&db);
        t0.create_table("readings", schema()).unwrap();
        t0.commit().unwrap();
        let wal_before = db.wal_len();

        // Rolled-back txn: nothing logged, nothing applied.
        let mut t1 = Txn::begin(&db);
        t1.insert_simple("readings", &[("id", Value::Int(1))], &[("v", Pdf1::certain(1.0))])
            .unwrap();
        t1.rollback();
        assert_eq!(db.wal_len(), wal_before, "rollback writes nothing");
        db.with_tables(|tables, reg| {
            assert_eq!(tables["readings"].len(), 0);
            assert_eq!(reg.len(), 0, "no base pdfs leaked");
        });

        // Insert-then-delete inside one txn nets to zero: commit is a
        // no-op on the WAL.
        let mut t2 = Txn::begin(&db);
        t2.insert_simple("readings", &[("id", Value::Int(2))], &[("v", Pdf1::certain(2.0))])
            .unwrap();
        assert_eq!(t2.delete_where("readings", |t| id_of(t) == 2).unwrap(), 1);
        t2.commit().unwrap();
        assert_eq!(db.wal_len(), wal_before, "self-cancelled txn writes nothing");
        db.check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_reads_ignore_concurrent_commits() {
        let dir = temp_dir("snapshot");
        let db = open(&dir);
        let mut t0 = Txn::begin(&db);
        t0.create_table("readings", schema()).unwrap();
        t0.insert_simple("readings", &[("id", Value::Int(1))], &[("v", Pdf1::certain(1.0))])
            .unwrap();
        t0.commit().unwrap();

        let reader = Txn::begin(&db);
        // A concurrent writer commits an insert.
        let mut writer = Txn::begin(&db);
        writer
            .insert_simple("readings", &[("id", Value::Int(2))], &[("v", Pdf1::certain(2.0))])
            .unwrap();
        writer.commit().unwrap();
        // The reader's snapshot still sees exactly one row.
        assert_eq!(reader.table("readings").unwrap().len(), 1);
        reader.commit().unwrap();
        db.with_tables(|tables, _| assert_eq!(tables["readings"].len(), 2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn active_txns_reports_live_transactions() {
        let dir = temp_dir("active");
        let db = open(&dir);
        let mut t0 = Txn::begin(&db);
        t0.create_table("readings", schema()).unwrap();
        t0.commit().unwrap();
        assert!(db.active_txns().is_empty(), "committed txns drop out");
        let mut t1 = Txn::begin(&db);
        t1.insert_simple("readings", &[("id", Value::Int(1))], &[("v", Pdf1::certain(1.0))])
            .unwrap();
        let rows = db.active_txns();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].id, t1.id());
        assert_eq!(rows[0].snapshot_epoch, t1.snapshot_epoch());
        assert_eq!(rows[0].writes, 1);
        t1.rollback();
        assert!(db.active_txns().is_empty(), "rolled-back txns drop out");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_wal_commit_applies_nothing() {
        let dir = temp_dir("wal_fail");
        let db = open(&dir);
        let mut t0 = Txn::begin(&db);
        t0.create_table("readings", schema()).unwrap();
        t0.commit().unwrap();
        let reg_before = db.with_tables(|_, reg| reg.last_id());

        #[cfg(feature = "failpoints")]
        {
            let mut t1 = Txn::begin(&db);
            t1.insert_simple("readings", &[("id", Value::Int(1))], &[("v", Pdf1::certain(1.0))])
                .unwrap();
            db.inject_wal_sync_failure();
            let err = t1.commit().unwrap_err();
            assert!(!matches!(err, EngineError::TxnConflict(_)));
            db.with_tables(|tables, reg| {
                assert_eq!(tables["readings"].len(), 0, "failed commit applies nothing");
                assert_eq!(reg.last_id(), reg_before, "no base ids consumed durably");
            });
            db.check_invariants().unwrap();
            // The database remains fully usable.
            let mut t2 = Txn::begin(&db);
            t2.insert_simple("readings", &[("id", Value::Int(1))], &[("v", Pdf1::certain(1.0))])
                .unwrap();
            t2.commit().unwrap();
            db.with_tables(|tables, _| assert_eq!(tables["readings"].len(), 1));
        }
        #[cfg(not(feature = "failpoints"))]
        let _ = reg_before;
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn txn_and_plain_inserts_interleave_in_wal_order() {
        let dir = temp_dir("mixed");
        let db = open(&dir);
        let mut t0 = Txn::begin(&db);
        t0.create_table("readings", schema()).unwrap();
        t0.commit().unwrap();
        // Plain (non-transactional) insert between two txns.
        let mut a = Txn::begin(&db);
        a.insert_simple("readings", &[("id", Value::Int(1))], &[("v", Pdf1::certain(1.0))])
            .unwrap();
        a.commit().unwrap();
        db.insert_simple("readings", &[("id", Value::Int(2))], &[("v", Pdf1::certain(2.0))])
            .unwrap();
        let mut b = Txn::begin(&db);
        b.insert_simple("readings", &[("id", Value::Int(3))], &[("v", Pdf1::certain(3.0))])
            .unwrap();
        b.commit().unwrap();
        let live = db.with_tables(|tables, _| tables["readings"].tuples.clone());
        drop(db);
        let re = DurableDb::open(&dir).unwrap();
        assert_eq!(re.table("readings").unwrap().tuples, live, "replay == live, in order");
        re.check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
