//! Per-query operator profiles: a tree mirroring the executed plan, one
//! node per operator, each carrying an [`ExecStatsSnapshot`]. Rendered as
//! text by `EXPLAIN ANALYZE` and exported as JSON by the bench binaries.
//!
//! # Relation to the structured tracer
//!
//! `OpProfile` is *not* a second timing path. It owns no clock: every
//! number here — `elapsed_nanos` included — is an [`ExecStatsSnapshot`]
//! delta measured by the executor. The tracer ([`crate::trace`]) consumes
//! the *same* deltas: when tracing is enabled the executor opens one span
//! per operator and attaches the identical snapshot as span args
//! (`self_nanos`, `pdf_floors`, ...), so `EXPLAIN ANALYZE` output and a
//! Chrome trace of the same query can never disagree about operator cost.
//! The two differ only in shape: a profile is an aggregated per-operator
//! tree; a trace additionally keeps per-worker lanes, per-morsel spans,
//! and wall-clock placement.

use crate::json;
use crate::stats::ExecStatsSnapshot;

/// One access path the cost-based planner priced for an operator. A node
/// records every alternative it considered — `EXPLAIN` shows the losers
/// next to the winner so cost-model regressions are visible in plan text.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AltPath {
    /// Access-path name (`scan`, `index-range(ix)`, `index-threshold(ix)`).
    pub path: String,
    /// Estimated cost in the planner's abstract cost units.
    pub cost: f64,
    /// Whether the planner picked this path.
    pub chosen: bool,
}

/// One operator node of an executed plan, with its children (inputs).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OpProfile {
    /// Operator name (`Scan`, `Select`, `Project`, `Join`, ...).
    pub name: String,
    /// Operator argument summary (predicate, column list, table name).
    pub detail: String,
    /// Counters recorded while this operator ran (children excluded).
    pub stats: ExecStatsSnapshot,
    /// Planner cardinality estimate for this operator's output, from the
    /// stats catalog (`None` when the planner attached no estimate).
    pub est_rows: Option<u64>,
    /// Access paths the planner priced for this operator (empty when no
    /// access-path decision applied).
    pub alternatives: Vec<AltPath>,
    /// Input operators.
    pub children: Vec<OpProfile>,
}

impl OpProfile {
    /// A node with zeroed stats.
    pub fn new(name: impl Into<String>, detail: impl Into<String>) -> OpProfile {
        OpProfile {
            name: name.into(),
            detail: detail.into(),
            stats: ExecStatsSnapshot::default(),
            est_rows: None,
            alternatives: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Builder: records the access paths the planner priced.
    pub fn with_alternatives(mut self, alts: Vec<AltPath>) -> OpProfile {
        self.alternatives = alts;
        self
    }

    /// Builder: attaches a planner cardinality estimate.
    pub fn with_est_rows(mut self, est: u64) -> OpProfile {
        self.est_rows = Some(est);
        self
    }

    /// Relative error of the estimate against the actual output
    /// cardinality (`|est - actual| / max(actual, 1)`), `None` when no
    /// estimate was attached.
    pub fn est_error(&self) -> Option<f64> {
        let est = self.est_rows? as f64;
        let actual = self.stats.tuples_out as f64;
        Some((est - actual).abs() / actual.max(1.0))
    }

    /// Builder: attaches a child input.
    pub fn with_child(mut self, child: OpProfile) -> OpProfile {
        self.children.push(child);
        self
    }

    /// Builder: sets the stats snapshot.
    pub fn with_stats(mut self, stats: ExecStatsSnapshot) -> OpProfile {
        self.stats = stats;
        self
    }

    /// Sum of this node's and all descendants' counters.
    pub fn total(&self) -> ExecStatsSnapshot {
        let mut acc = self.stats.clone();
        for c in &self.children {
            acc.merge(&c.total());
        }
        acc
    }

    /// Renders the tree. With `with_stats` each row carries its counters
    /// (the `EXPLAIN ANALYZE` form); without, only the plan shape (the
    /// plain `EXPLAIN` form).
    pub fn render(&self, with_stats: bool) -> String {
        let mut out = String::new();
        self.render_into(&mut out, "", "", with_stats);
        out
    }

    fn render_into(&self, out: &mut String, prefix: &str, child_prefix: &str, with_stats: bool) {
        out.push_str(prefix);
        out.push_str(&self.name);
        if !self.detail.is_empty() {
            out.push_str(" [");
            out.push_str(&self.detail);
            out.push(']');
        }
        if with_stats {
            out.push_str("  (");
            if let Some(est) = self.est_rows {
                // The est-vs-actual feedback line the cost model trains on.
                out.push_str(&format!(
                    "est={est} actual={} err={:.2} ",
                    self.stats.tuples_out,
                    self.est_error().unwrap_or(0.0)
                ));
            }
            out.push_str(&self.stats.render());
            out.push(')');
        } else if let Some(est) = self.est_rows {
            out.push_str(&format!("  (est_rows={est})"));
        }
        out.push('\n');
        // Priced alternatives render on their own annotation line (only
        // when an access-path decision applied), winner starred.
        if !self.alternatives.is_empty() {
            out.push_str(child_prefix);
            out.push_str("   paths:");
            for a in &self.alternatives {
                out.push_str(&format!(" {}={:.1}", a.path, a.cost));
                if a.chosen {
                    out.push('*');
                }
            }
            out.push('\n');
        }
        for (i, child) in self.children.iter().enumerate() {
            let last = i + 1 == self.children.len();
            let (branch, extend) = if last { ("└─ ", "   ") } else { ("├─ ", "│  ") };
            child.render_into(
                out,
                &format!("{child_prefix}{branch}"),
                &format!("{child_prefix}{extend}"),
                with_stats,
            );
        }
    }

    /// JSON form: operator, detail, stats object, children array.
    pub fn to_json(&self) -> json::Value {
        let mut children = json::Value::array();
        for c in &self.children {
            children.push(c.to_json());
        }
        let mut v = json::Value::object()
            .with("operator", self.name.as_str())
            .with("detail", self.detail.as_str())
            .with("stats", self.stats.to_json())
            .with("children", children);
        // Appended after the stable keys so existing consumers keep their
        // prefix shape.
        if let Some(est) = self.est_rows {
            v.set("est_rows", est);
        }
        if !self.alternatives.is_empty() {
            let mut alts = json::Value::array();
            for a in &self.alternatives {
                alts.push(
                    json::Value::object()
                        .with("path", a.path.as_str())
                        .with("cost", a.cost)
                        .with("chosen", a.chosen),
                );
            }
            v.set("alternatives", alts);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> OpProfile {
        OpProfile::new("Project", "a")
            .with_stats(ExecStatsSnapshot { tuples_in: 1, tuples_out: 1, ..Default::default() })
            .with_child(
                OpProfile::new("Select", "a < b")
                    .with_stats(ExecStatsSnapshot {
                        tuples_in: 2,
                        tuples_out: 1,
                        pdf_products: 1,
                        pdf_floors: 1,
                        ..Default::default()
                    })
                    .with_child(
                        OpProfile::new("Scan", "T")
                            .with_stats(ExecStatsSnapshot { tuples_out: 2, ..Default::default() }),
                    ),
            )
    }

    #[test]
    fn render_tree_shape() {
        let text = sample().render(false);
        assert_eq!(text, "Project [a]\n└─ Select [a < b]\n   └─ Scan [T]\n");
    }

    #[test]
    fn render_with_stats_has_counters_per_row() {
        let text = sample().render(true);
        for needle in ["Project [a]", "in=2 out=1 products=1 floors=1", "Scan [T]"] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn two_children_use_tee_branch() {
        let j = OpProfile::new("Join", "l.id = r.id")
            .with_child(OpProfile::new("Scan", "l"))
            .with_child(OpProfile::new("Scan", "r"));
        let text = j.render(false);
        assert_eq!(text, "Join [l.id = r.id]\n├─ Scan [l]\n└─ Scan [r]\n");
    }

    #[test]
    fn total_aggregates_subtree() {
        let t = sample().total();
        assert_eq!(t.tuples_in, 3);
        assert_eq!(t.tuples_out, 4);
        assert_eq!(t.pdf_products, 1);
    }

    #[test]
    fn json_shape() {
        let v = sample().to_json();
        let text = v.to_string_compact();
        assert!(text.starts_with(r#"{"operator":"Project","detail":"a","stats":{"tuples_in":1"#));
        assert!(text.contains(r#""operator":"Scan"#));
        assert!(!text.contains("est_rows"), "no estimate attached → key absent");
    }

    #[test]
    fn est_rows_renders_in_both_forms_and_exports() {
        let p = OpProfile::new("Select", "v < 3")
            .with_stats(ExecStatsSnapshot { tuples_in: 10, tuples_out: 4, ..Default::default() })
            .with_est_rows(6);
        assert_eq!(p.render(false), "Select [v < 3]  (est_rows=6)\n");
        let analyzed = p.render(true);
        assert!(analyzed.contains("est=6 actual=4 err=0.50"), "{analyzed}");
        assert!(p.to_json().to_string_compact().contains(r#""est_rows":6"#));
        // err uses max(actual, 1) so empty outputs divide cleanly.
        let empty = OpProfile::new("Select", "x").with_est_rows(3);
        assert!((empty.est_error().unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn alternatives_render_winner_starred_and_export() {
        let p = OpProfile::new("ThresholdPred", "Pr(v in [1,2]) > 0.5").with_alternatives(vec![
            AltPath { path: "scan".into(), cost: 300.0, chosen: false },
            AltPath { path: "index-threshold(ix_v)".into(), cost: 42.5, chosen: true },
        ]);
        let text = p.render(false);
        assert!(text.contains("paths: scan=300.0 index-threshold(ix_v)=42.5*"), "{text}");
        let j = p.to_json().to_string_compact();
        assert!(j.contains(r#""alternatives":[{"path":"scan","cost":300,"chosen":false}"#), "{j}");
        // Nodes without alternatives keep the historical single-line form.
        assert_eq!(OpProfile::new("Scan", "T").render(false), "Scan [T]\n");
        assert!(!OpProfile::new("Scan", "T")
            .to_json()
            .to_string_compact()
            .contains("alternatives"));
    }
}
