//! Workload repository: pg_stat_statements-style per-statement statistics
//! plus a bounded slow-query log.
//!
//! Every SQL statement the session layer executes is fingerprinted (the SQL
//! crate normalizes literals out of the AST and hashes the result) and its
//! execution folded into a bounded registry of per-fingerprint counters:
//! calls, errors, rows, latency (a log2 [`Histogram`]), pages read, pdf
//! operations, index probes and transaction retries. Statements whose
//! latency crosses [`WorkloadConfig::slow_nanos`] — or every Nth statement
//! when [`WorkloadConfig::sample_every`] is set — are additionally captured
//! into a bounded ring with their rendered `EXPLAIN ANALYZE` plan (including
//! the chosen-vs-rejected access-path prices) and a flight-recorder snippet.
//!
//! Both sides surface as virtual tables (`orion.statements`,
//! `orion.slow_queries`), the slow ring dumps as validated JSON next to the
//! Chrome traces, and the whole repository round-trips through JSON so the
//! durable engine can persist it across checkpoints.
//!
//! Cost discipline matches the tracer: while disabled, the per-statement
//! price is one relaxed atomic load ([`WorkloadRepo::enabled`]).

use crate::json;
use crate::metrics::{Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Distinct fingerprints tracked before new ones fold into the catch-all
/// [`OVERFLOW_TEXT`] entry (so `sum(calls)` still conserves).
pub const DEFAULT_MAX_STATEMENTS: usize = 512;

/// Slow-query captures kept in the ring before the oldest is evicted.
pub const DEFAULT_MAX_SLOW: usize = 64;

/// Statement text of the catch-all entry absorbing fingerprints past
/// [`WorkloadConfig::max_statements`]. Its fingerprint is 0.
pub const OVERFLOW_TEXT: &str = "<overflow>";

/// Tuning knobs for a [`WorkloadRepo`], normally read from the environment
/// once at engine open ([`WorkloadConfig::from_env`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// Whether statements are recorded at all (`ORION_STATEMENTS`, default
    /// on; `0` disables).
    pub enabled: bool,
    /// Latency threshold in nanoseconds above which a statement is captured
    /// into the slow ring (`ORION_SLOW_MS`; `0` captures everything, unset
    /// captures nothing by latency).
    pub slow_nanos: u64,
    /// Capture every Nth statement regardless of latency
    /// (`ORION_SLOW_SAMPLE=N`; 0 disables sampling).
    pub sample_every: u64,
    /// Distinct fingerprints tracked before overflow folding begins.
    pub max_statements: usize,
    /// Slow-query ring capacity.
    pub max_slow: usize,
    /// Whether the durable engine persists the repository to a
    /// `workload.json` sidecar at checkpoint (`ORION_STATEMENTS_PERSIST=1`).
    pub persist: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            enabled: true,
            slow_nanos: u64::MAX,
            sample_every: 0,
            max_statements: DEFAULT_MAX_STATEMENTS,
            max_slow: DEFAULT_MAX_SLOW,
            persist: false,
        }
    }
}

impl WorkloadConfig {
    /// Reads `ORION_STATEMENTS`, `ORION_SLOW_MS`, `ORION_SLOW_SAMPLE` and
    /// `ORION_STATEMENTS_PERSIST` on top of the defaults.
    pub fn from_env() -> WorkloadConfig {
        let mut cfg = WorkloadConfig::default();
        if let Ok(v) = std::env::var("ORION_STATEMENTS") {
            cfg.enabled = v != "0";
        }
        if let Some(ms) = std::env::var("ORION_SLOW_MS").ok().and_then(|v| v.parse::<f64>().ok()) {
            cfg.slow_nanos = (ms * 1e6) as u64;
        }
        if let Some(n) = std::env::var("ORION_SLOW_SAMPLE").ok().and_then(|v| v.parse().ok()) {
            cfg.sample_every = n;
        }
        cfg.persist = std::env::var("ORION_STATEMENTS_PERSIST").is_ok_and(|v| v == "1");
        cfg
    }
}

/// One executed statement, as observed by the session layer.
#[derive(Debug, Clone, Default)]
pub struct ExecSample {
    /// Literal-normalized AST hash.
    pub fingerprint: u64,
    /// The normalized statement text (literals replaced by `?`).
    pub text: String,
    /// Wall time of the execution.
    pub nanos: u64,
    /// Rows returned (or affected, for DML).
    pub rows: u64,
    /// Whether execution returned an error (still counted: calls conserve).
    pub error: bool,
    /// Physical pages read during the execution.
    pub pages_read: u64,
    /// Pdf products + floors + marginalizations evaluated.
    pub pdf_ops: u64,
    /// Tuples examined against an index candidate mask.
    pub index_probes: u64,
    /// Autocommit retries spent on this statement.
    pub txn_retries: u64,
}

/// Why a statement entered the slow ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlowCause {
    /// Latency crossed [`WorkloadConfig::slow_nanos`].
    Threshold,
    /// Picked by the 1-in-N sampler.
    Sampled,
}

impl SlowCause {
    /// Stable lowercase label (`slow` / `sampled`).
    pub fn as_str(&self) -> &'static str {
        match self {
            SlowCause::Threshold => "slow",
            SlowCause::Sampled => "sampled",
        }
    }
}

/// Returned by [`WorkloadRepo::record`] when the statement should be
/// captured: the caller renders the plan and calls
/// [`WorkloadRepo::record_slow`].
#[derive(Debug, Clone, Copy)]
pub struct SlowTicket {
    /// Statement ordinal (1-based across the repository's lifetime).
    pub seq: u64,
    /// What triggered the capture.
    pub cause: SlowCause,
}

/// One captured slow (or sampled) statement.
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// Statement ordinal from the triggering [`SlowTicket`].
    pub seq: u64,
    /// Literal-normalized AST hash.
    pub fingerprint: u64,
    /// Normalized statement text.
    pub text: String,
    /// Wall time of the execution.
    pub nanos: u64,
    /// Rows returned.
    pub rows: u64,
    /// `slow` or `sampled`.
    pub cause: SlowCause,
    /// Rendered `EXPLAIN ANALYZE` tree with est/actual rows and the
    /// chosen-vs-rejected access-path prices (empty when the statement is
    /// not plan-capturable, e.g. DML).
    pub plan: String,
    /// Flight-recorder snippet: the most recent span events at capture time
    /// (empty when the recorder is off).
    pub trace: String,
}

/// Accumulated statistics for one statement fingerprint.
#[derive(Debug, Clone)]
pub struct StatementStats {
    /// Literal-normalized AST hash (0 for the overflow catch-all).
    pub fingerprint: u64,
    /// Normalized statement text (first observed spelling wins).
    pub text: String,
    /// Executions, including failed ones.
    pub calls: u64,
    /// Executions that returned an error.
    pub errors: u64,
    /// Total rows returned across calls.
    pub rows: u64,
    /// Total wall time across calls.
    pub total_nanos: u64,
    /// Total physical pages read.
    pub pages_read: u64,
    /// Total pdf operations.
    pub pdf_ops: u64,
    /// Total index probes.
    pub index_probes: u64,
    /// Total autocommit retries.
    pub txn_retries: u64,
    /// Log2 latency distribution (count equals `calls`).
    pub latency: HistogramSnapshot,
}

impl StatementStats {
    /// Mean latency in nanoseconds.
    pub fn mean_nanos(&self) -> f64 {
        self.latency.mean()
    }

    /// Upper bound of the p99 latency bucket.
    pub fn p99_nanos(&self) -> u64 {
        self.latency.quantile_upper_bound(0.99)
    }
}

#[derive(Debug, Clone)]
struct Entry {
    text: String,
    calls: u64,
    errors: u64,
    rows: u64,
    total_nanos: u64,
    pages_read: u64,
    pdf_ops: u64,
    index_probes: u64,
    txn_retries: u64,
    latency: Vec<u64>,
}

impl Entry {
    fn new(text: String) -> Entry {
        Entry {
            text,
            calls: 0,
            errors: 0,
            rows: 0,
            total_nanos: 0,
            pages_read: 0,
            pdf_ops: 0,
            index_probes: 0,
            txn_retries: 0,
            latency: vec![0; HISTOGRAM_BUCKETS],
        }
    }

    fn fold(&mut self, sample: &ExecSample) {
        self.calls += 1;
        self.errors += u64::from(sample.error);
        self.rows += sample.rows;
        self.total_nanos += sample.nanos;
        self.pages_read += sample.pages_read;
        self.pdf_ops += sample.pdf_ops;
        self.index_probes += sample.index_probes;
        self.txn_retries += sample.txn_retries;
        self.latency[Histogram::bucket_index(sample.nanos)] += 1;
    }

    fn stats(&self, fingerprint: u64) -> StatementStats {
        StatementStats {
            fingerprint,
            text: self.text.clone(),
            calls: self.calls,
            errors: self.errors,
            rows: self.rows,
            total_nanos: self.total_nanos,
            pages_read: self.pages_read,
            pdf_ops: self.pdf_ops,
            index_probes: self.index_probes,
            txn_retries: self.txn_retries,
            latency: HistogramSnapshot {
                count: self.calls,
                sum: self.total_nanos,
                buckets: self.latency.clone(),
            },
        }
    }
}

#[derive(Debug, Default)]
struct RepoInner {
    cfg: WorkloadConfig,
    map: BTreeMap<u64, Entry>,
    slow: VecDeque<SlowQuery>,
    /// Distinct fingerprints folded into the overflow entry.
    overflowed: u64,
    /// Slow captures evicted from the ring.
    slow_evicted: u64,
}

/// The bounded per-engine statement repository. Shared via `Arc`; all
/// methods take `&self`.
#[derive(Debug)]
pub struct WorkloadRepo {
    enabled: AtomicBool,
    seq: AtomicU64,
    inner: Mutex<RepoInner>,
    /// Distinguishes slow dumps written within the same second.
    dump_seq: AtomicU64,
}

impl Default for WorkloadRepo {
    fn default() -> Self {
        WorkloadRepo::new(WorkloadConfig::default())
    }
}

impl WorkloadRepo {
    /// A repository with the given configuration.
    pub fn new(cfg: WorkloadConfig) -> WorkloadRepo {
        WorkloadRepo {
            enabled: AtomicBool::new(cfg.enabled),
            seq: AtomicU64::new(0),
            inner: Mutex::new(RepoInner { cfg, ..RepoInner::default() }),
            dump_seq: AtomicU64::new(0),
        }
    }

    /// A repository configured from the environment.
    pub fn from_env() -> WorkloadRepo {
        WorkloadRepo::new(WorkloadConfig::from_env())
    }

    /// Whether recording is on — one relaxed load, the only cost a disabled
    /// repository imposes per statement.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Current configuration.
    pub fn config(&self) -> WorkloadConfig {
        self.inner.lock().cfg.clone()
    }

    /// Replaces the configuration (the `enabled` field also updates the
    /// fast-path flag).
    pub fn set_config(&self, cfg: WorkloadConfig) {
        self.enabled.store(cfg.enabled, Ordering::Relaxed);
        self.inner.lock().cfg = cfg;
    }

    /// Folds one executed statement into its fingerprint entry. Returns a
    /// ticket when the statement should additionally be captured into the
    /// slow ring (latency threshold crossed or sampler fired); the caller
    /// renders the plan and completes the capture with [`record_slow`].
    ///
    /// [`record_slow`]: WorkloadRepo::record_slow
    pub fn record(&self, sample: &ExecSample) -> Option<SlowTicket> {
        if !self.enabled() {
            return None;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let mut inner = self.inner.lock();
        let max = inner.cfg.max_statements.max(1);
        let known = inner.map.contains_key(&sample.fingerprint);
        let key = if known || inner.map.len() < max {
            sample.fingerprint
        } else {
            // Registry full: conserve calls by folding into the catch-all.
            inner.map.entry(0).or_insert_with(|| Entry::new(OVERFLOW_TEXT.to_string()));
            inner.overflowed += 1;
            0
        };
        inner.map.entry(key).or_insert_with(|| Entry::new(sample.text.clone())).fold(sample);
        let cause = if sample.nanos >= inner.cfg.slow_nanos {
            Some(SlowCause::Threshold)
        } else if inner.cfg.sample_every > 0 && seq.is_multiple_of(inner.cfg.sample_every) {
            Some(SlowCause::Sampled)
        } else {
            None
        };
        cause.map(|cause| SlowTicket { seq, cause })
    }

    /// Completes a capture started by [`WorkloadRepo::record`]: pushes the
    /// query into the bounded slow ring, evicting the oldest entry when
    /// full.
    pub fn record_slow(&self, query: SlowQuery) {
        let mut inner = self.inner.lock();
        let max = inner.cfg.max_slow.max(1);
        while inner.slow.len() >= max {
            inner.slow.pop_front();
            inner.slow_evicted += 1;
        }
        inner.slow.push_back(query);
    }

    /// Per-fingerprint statistics, heaviest (by total latency) first, text
    /// as the tiebreak — the row source for `orion.statements`.
    pub fn statements(&self) -> Vec<StatementStats> {
        let inner = self.inner.lock();
        let mut out: Vec<StatementStats> = inner.map.iter().map(|(&fp, e)| e.stats(fp)).collect();
        out.sort_by(|a, b| b.total_nanos.cmp(&a.total_nanos).then_with(|| a.text.cmp(&b.text)));
        out
    }

    /// The slow ring, oldest first — the row source for
    /// `orion.slow_queries`.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.inner.lock().slow.iter().cloned().collect()
    }

    /// Sum of `calls` across every entry (conservation invariant: equals the
    /// number of statements recorded while enabled).
    pub fn total_calls(&self) -> u64 {
        self.inner.lock().map.values().map(|e| e.calls).sum()
    }

    /// Distinct fingerprints folded into the overflow entry so far.
    pub fn overflowed(&self) -> u64 {
        self.inner.lock().overflowed
    }

    /// Clears statistics, the slow ring and the sequence counter (the
    /// configuration and enabled flag are untouched).
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.slow.clear();
        inner.overflowed = 0;
        inner.slow_evicted = 0;
        self.seq.store(0, Ordering::Relaxed);
    }

    /// JSON form of the whole repository: per-statement counters with their
    /// latency histograms plus the slow ring. Round-trips through
    /// [`WorkloadRepo::load_json`].
    pub fn to_json(&self) -> json::Value {
        let mut statements = json::Value::array();
        for s in self.statements() {
            statements.push(
                json::Value::object()
                    .with("fingerprint", format!("{:016x}", s.fingerprint))
                    .with("text", s.text.as_str())
                    .with("calls", s.calls)
                    .with("errors", s.errors)
                    .with("rows", s.rows)
                    .with("total_nanos", s.total_nanos)
                    .with("pages_read", s.pages_read)
                    .with("pdf_ops", s.pdf_ops)
                    .with("index_probes", s.index_probes)
                    .with("txn_retries", s.txn_retries)
                    .with("latency", s.latency.to_json()),
            );
        }
        let inner = self.inner.lock();
        json::Value::object()
            .with("seq", self.seq.load(Ordering::Relaxed))
            .with("overflowed", inner.overflowed)
            .with("statements", statements)
    }

    /// Merges a [`WorkloadRepo::to_json`] document back in (counters add;
    /// first-seen text wins). The slow ring is not persisted: captured plans
    /// describe a process that no longer exists.
    pub fn load_json(&self, doc: &json::Value) -> Result<(), String> {
        let statements = doc
            .get("statements")
            .and_then(json::Value::as_array)
            .ok_or("workload doc missing statements array")?;
        let mut inner = self.inner.lock();
        for s in statements {
            let fp = s
                .get("fingerprint")
                .and_then(json::Value::as_str)
                .and_then(|h| u64::from_str_radix(h, 16).ok())
                .ok_or("statement missing hex fingerprint")?;
            let text =
                s.get("text").and_then(json::Value::as_str).ok_or("statement missing text")?;
            let get = |k: &str| s.get(k).and_then(json::Value::as_u64).unwrap_or(0);
            let entry = inner.map.entry(fp).or_insert_with(|| Entry::new(text.to_string()));
            entry.calls += get("calls");
            entry.errors += get("errors");
            entry.rows += get("rows");
            entry.total_nanos += get("total_nanos");
            entry.pages_read += get("pages_read");
            entry.pdf_ops += get("pdf_ops");
            entry.index_probes += get("index_probes");
            entry.txn_retries += get("txn_retries");
            if let Some(buckets) =
                s.get("latency").and_then(|l| l.get("buckets")).and_then(json::Value::as_array)
            {
                for b in buckets {
                    let le = b.get("le").and_then(json::Value::as_u64).unwrap_or(0);
                    let n = b.get("n").and_then(json::Value::as_u64).unwrap_or(0);
                    entry.latency[Histogram::bucket_index(le)] += n;
                }
            }
        }
        if let Some(seq) = doc.get("seq").and_then(json::Value::as_u64) {
            self.seq.fetch_add(seq, Ordering::Relaxed);
        }
        if let Some(n) = doc.get("overflowed").and_then(json::Value::as_u64) {
            inner.overflowed += n;
        }
        Ok(())
    }

    /// Dumps the slow ring into `dir` as `slow-<epoch-secs>-<seq>.json`, a
    /// document [`validate_slow_dump`] accepts.
    pub fn dump_slow_to_dir(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let mut queries = json::Value::array();
        for q in self.slow_queries() {
            queries.push(
                json::Value::object()
                    .with("seq", q.seq)
                    .with("fingerprint", format!("{:016x}", q.fingerprint))
                    .with("text", q.text.as_str())
                    .with("nanos", q.nanos)
                    .with("rows", q.rows)
                    .with("cause", q.cause.as_str())
                    .with("plan", q.plan.as_str())
                    .with("trace", q.trace.as_str()),
            );
        }
        let inner = self.inner.lock();
        let doc = json::Value::object()
            .with("kind", "slow_queries")
            .with("evicted", inner.slow_evicted)
            .with("queries", queries);
        drop(inner);
        let secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let seq = self.dump_seq.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("slow-{secs}-{seq}.json"));
        std::fs::create_dir_all(dir)?;
        std::fs::write(&path, doc.to_string_pretty())?;
        Ok(path)
    }
}

/// Validates a slow-query dump written by [`WorkloadRepo::dump_slow_to_dir`]
/// (the `trace_check` tool dispatches here on `"kind": "slow_queries"`).
/// Returns the number of captured queries.
pub fn validate_slow_dump(doc: &json::Value) -> Result<usize, String> {
    if doc.get("kind").and_then(json::Value::as_str) != Some("slow_queries") {
        return Err("not a slow-query dump: missing kind=slow_queries".to_string());
    }
    doc.get("evicted").and_then(json::Value::as_u64).ok_or("missing evicted counter")?;
    let queries =
        doc.get("queries").and_then(json::Value::as_array).ok_or("missing queries array")?;
    let mut seqs = HashSet::new();
    for (i, q) in queries.iter().enumerate() {
        let seq = q
            .get("seq")
            .and_then(json::Value::as_u64)
            .ok_or_else(|| format!("query {i}: missing seq"))?;
        if !seqs.insert(seq) {
            return Err(format!("query {i}: duplicate seq {seq}"));
        }
        let fp = q
            .get("fingerprint")
            .and_then(json::Value::as_str)
            .ok_or_else(|| format!("query {i}: missing fingerprint"))?;
        if fp.len() != 16 || !fp.chars().all(|c| c.is_ascii_hexdigit()) {
            return Err(format!("query {i}: fingerprint {fp:?} is not 16 hex digits"));
        }
        if q.get("text").and_then(json::Value::as_str).is_none_or(str::is_empty) {
            return Err(format!("query {i}: missing statement text"));
        }
        q.get("nanos")
            .and_then(json::Value::as_u64)
            .ok_or_else(|| format!("query {i}: missing nanos"))?;
        match q.get("cause").and_then(json::Value::as_str) {
            Some("slow") | Some("sampled") => {}
            other => return Err(format!("query {i}: bad cause {other:?}")),
        }
        for key in ["plan", "trace"] {
            if q.get(key).and_then(json::Value::as_str).is_none() {
                return Err(format!("query {i}: missing {key}"));
            }
        }
    }
    Ok(queries.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(fp: u64, text: &str, nanos: u64) -> ExecSample {
        ExecSample { fingerprint: fp, text: text.to_string(), nanos, rows: 1, ..Default::default() }
    }

    #[test]
    fn record_accumulates_per_fingerprint() {
        let repo = WorkloadRepo::default();
        assert!(repo.record(&sample(7, "SELECT ?", 100)).is_none());
        repo.record(&ExecSample { error: true, txn_retries: 2, ..sample(7, "SELECT ?", 300) });
        repo.record(&sample(9, "INSERT ?", 50));
        let stats = repo.statements();
        assert_eq!(stats.len(), 2);
        // Heaviest first: fingerprint 7 carries 400ns total.
        assert_eq!(stats[0].fingerprint, 7);
        assert_eq!(stats[0].calls, 2);
        assert_eq!(stats[0].errors, 1);
        assert_eq!(stats[0].txn_retries, 2);
        assert_eq!(stats[0].total_nanos, 400);
        assert_eq!(stats[0].latency.count, 2);
        assert_eq!(repo.total_calls(), 3);
    }

    #[test]
    fn disabled_repo_records_nothing() {
        let repo = WorkloadRepo::default();
        repo.set_enabled(false);
        assert!(repo.record(&sample(1, "SELECT ?", u64::MAX)).is_none());
        assert!(repo.statements().is_empty());
    }

    #[test]
    fn overflow_folds_into_catchall_and_conserves_calls() {
        let cfg = WorkloadConfig { max_statements: 2, ..WorkloadConfig::default() };
        let repo = WorkloadRepo::new(cfg);
        for fp in 1..=5u64 {
            repo.record(&sample(fp, "S", 10));
        }
        repo.record(&sample(1, "S", 10));
        assert_eq!(repo.total_calls(), 6);
        assert_eq!(repo.overflowed(), 3);
        let stats = repo.statements();
        assert!(stats.iter().any(|s| s.fingerprint == 0 && s.text == OVERFLOW_TEXT));
    }

    #[test]
    fn slow_threshold_and_sampler_issue_tickets() {
        let cfg =
            WorkloadConfig { slow_nanos: 1_000, sample_every: 3, ..WorkloadConfig::default() };
        let repo = WorkloadRepo::new(cfg);
        let t = repo.record(&sample(1, "S", 5_000)).expect("over threshold");
        assert_eq!(t.cause, SlowCause::Threshold);
        assert!(repo.record(&sample(1, "S", 10)).is_none());
        // Third statement: the 1-in-3 sampler fires.
        let t = repo.record(&sample(1, "S", 10)).expect("sampled");
        assert_eq!(t.cause, SlowCause::Sampled);
    }

    #[test]
    fn slow_ring_bounds_and_dump_validates() {
        let cfg = WorkloadConfig { slow_nanos: 0, max_slow: 2, ..WorkloadConfig::default() };
        let repo = WorkloadRepo::new(cfg);
        for i in 0..4u64 {
            let t = repo.record(&sample(i + 1, "SELECT ?", 100)).expect("everything is slow");
            repo.record_slow(SlowQuery {
                seq: t.seq,
                fingerprint: i + 1,
                text: "SELECT ?".to_string(),
                nanos: 100,
                rows: 0,
                cause: t.cause,
                plan: "Scan t\n  paths: scan*".to_string(),
                trace: String::new(),
            });
        }
        let ring = repo.slow_queries();
        assert_eq!(ring.len(), 2);
        assert_eq!(ring[0].seq, 3, "oldest two evicted");

        let dir = std::env::temp_dir().join("orion_obs_test").join("workload");
        let path = repo.dump_slow_to_dir(&dir).unwrap();
        let doc = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(validate_slow_dump(&doc).unwrap(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn validate_rejects_malformed_dumps() {
        let not_slow = json::Value::object().with("reason", "panic");
        assert!(validate_slow_dump(&not_slow).is_err());
        let bad_cause = json::Value::object()
            .with("kind", "slow_queries")
            .with("evicted", 0u64)
            .with("queries", {
                let mut a = json::Value::array();
                a.push(
                    json::Value::object()
                        .with("seq", 1u64)
                        .with("fingerprint", "00000000000000aa")
                        .with("text", "SELECT ?")
                        .with("nanos", 5u64)
                        .with("cause", "eh")
                        .with("plan", "")
                        .with("trace", ""),
                );
                a
            });
        assert!(validate_slow_dump(&bad_cause).unwrap_err().contains("bad cause"));
    }

    #[test]
    fn json_round_trip_merges_counters() {
        let repo = WorkloadRepo::default();
        repo.record(&sample(0xabc, "SELECT ?", 128));
        repo.record(&sample(0xabc, "SELECT ?", 4096));
        let doc = repo.to_json();

        let restored = WorkloadRepo::default();
        restored.load_json(&doc).unwrap();
        // Load twice: counters add.
        restored.load_json(&doc).unwrap();
        let stats = restored.statements();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].fingerprint, 0xabc);
        assert_eq!(stats[0].calls, 4);
        assert_eq!(stats[0].total_nanos, 2 * (128 + 4096));
        assert_eq!(stats[0].latency.count, 4);
        // Bucket structure survived the le round trip.
        assert_eq!(stats[0].latency.buckets[Histogram::bucket_index(128)], 2);
        assert_eq!(stats[0].latency.buckets[Histogram::bucket_index(4096)], 2);
    }

    #[test]
    fn config_from_env_defaults() {
        // Only assert the defaults: the test process env may carry knobs.
        let cfg = WorkloadConfig::default();
        assert!(cfg.enabled);
        assert_eq!(cfg.slow_nanos, u64::MAX);
        assert_eq!(cfg.sample_every, 0);
        assert!(!cfg.persist);
    }
}
