//! Dependency-free JSON values, pretty printing, and a small parser.
//!
//! The offline build environment rules out `serde_json`, so this module
//! implements what the engine's observability layer needs: a [`Value`]
//! tree, `From` conversions for the primitive types the exporters use, a
//! stable two-space pretty printer, and — since the trace validator and
//! flight-recorder tests must read emitted artifacts back — a
//! recursive-descent [`parse`] with typed accessors ([`Value::as_str`],
//! [`Value::as_u64`], ...). Object keys keep insertion order so exported
//! artifacts diff cleanly.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Signed integer (emitted without a decimal point).
    Int(i64),
    /// Unsigned integer — counters are u64 and must not lose precision.
    UInt(u64),
    /// Floating-point number; non-finite values print as `null`.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// An empty object, for builder-style construction with [`Value::set`].
    pub fn object() -> Value {
        Value::Object(Vec::new())
    }

    /// An empty array.
    pub fn array() -> Value {
        Value::Array(Vec::new())
    }

    /// Builder-style field insertion; replaces an existing key in place.
    /// Panics when `self` is not an object.
    pub fn with(mut self, key: &str, value: impl Into<Value>) -> Value {
        self.set(key, value);
        self
    }

    /// Inserts or replaces a field. Panics when `self` is not an object.
    pub fn set(&mut self, key: &str, value: impl Into<Value>) {
        let Value::Object(fields) = self else {
            panic!("Value::set on a non-object");
        };
        let value = value.into();
        match fields.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => fields.push((key.to_string(), value)),
        }
    }

    /// Appends an element. Panics when `self` is not an array.
    pub fn push(&mut self, value: impl Into<Value>) {
        let Value::Array(items) = self else {
            panic!("Value::push on a non-array");
        };
        items.push(value.into());
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content, when this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64` — accepts `UInt`, non-negative `Int`, and
    /// integral non-negative `Float` (a reparsed `2.0` should still count).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) => u64::try_from(i).ok(),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// The value as an `f64`, when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(f) => Some(f),
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            _ => None,
        }
    }

    /// The boolean content, when this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The elements, when this is a [`Value::Array`].
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, when this is a [`Value::Object`].
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation and a trailing newline, the
    /// format all Orion-RS JSON artifacts use.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1)
                })
            }
            Value::Object(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1)
                })
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::UInt(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::UInt(u64::from(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::UInt(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Array(v)
    }
}

/// Parses a JSON document. Integers without fraction/exponent parse as
/// [`Value::UInt`]/[`Value::Int`] (so `u64` counters round-trip exactly);
/// everything else numeric parses as [`Value::Float`]. Errors carry a byte
/// offset and a short description.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser { text, bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogates (emitted only for astral chars,
                            // which our writer never escapes) map to the
                            // replacement character rather than an error.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    // ASCII fast path: extend over the whole run so long
                    // plain strings cost one memcpy, not a push per byte.
                    let start = self.pos;
                    while matches!(self.bytes.get(self.pos), Some(&b) if b < 0x80 && b != b'"' && b != b'\\')
                    {
                        self.pos += 1;
                    }
                    out.push_str(&self.text[start..self.pos]);
                }
                Some(_) => {
                    // Multi-byte scalar: the input is a &str and `pos` sits
                    // on a char boundary, so slicing here is O(1) — no
                    // re-validation of the remaining input.
                    let c = self.text[self.pos..].chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            text.parse::<f64>().map(Value::Float).map_err(|_| format!("bad number at byte {start}"))
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Value::Int).map_err(|_| format!("bad number at byte {start}"))
        } else {
            text.parse::<u64>().map(Value::UInt).map_err(|_| format!("bad number at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(Value::Null.to_string_compact(), "null");
        assert_eq!(Value::from(true).to_string_compact(), "true");
        assert_eq!(Value::from(-3i64).to_string_compact(), "-3");
        assert_eq!(Value::from(u64::MAX).to_string_compact(), "18446744073709551615");
        assert_eq!(Value::from(2.5).to_string_compact(), "2.5");
        assert_eq!(Value::from(f64::NAN).to_string_compact(), "null");
    }

    #[test]
    fn strings_escape() {
        let v = Value::from("a\"b\\c\nd\u{1}");
        assert_eq!(v.to_string_compact(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn builder_and_pretty_shape() {
        let v = Value::object()
            .with("name", "scan")
            .with("rows", 3u64)
            .with("children", Vec::<Value>::new());
        assert_eq!(v.to_string_compact(), r#"{"name":"scan","rows":3,"children":[]}"#);
        let pretty = v.to_string_pretty();
        assert!(pretty.starts_with("{\n  \"name\": \"scan\",\n"));
        assert!(pretty.ends_with("}\n"));
    }

    #[test]
    fn set_replaces_existing_key() {
        let mut v = Value::object().with("k", 1u64);
        v.set("k", 2u64);
        assert_eq!(v.get("k"), Some(&Value::UInt(2)));
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let v = Value::object()
            .with("name", "scan \"x\"\n")
            .with("rows", u64::MAX)
            .with("delta", -7i64)
            .with("frac", 2.5)
            .with("flag", true)
            .with("nothing", Value::Null)
            .with("items", vec![Value::UInt(1), Value::Str("two".into())]);
        for text in [v.to_string_compact(), v.to_string_pretty()] {
            assert_eq!(parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn parse_accepts_escapes_and_rejects_garbage() {
        let v = parse(r#"{"s": "aA\t/", "e": 1.5e3, "neg": [-1, 2]}"#).unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some("aA\t/"));
        assert_eq!(v.get("e").and_then(Value::as_f64), Some(1500.0));
        let neg = v.get("neg").and_then(Value::as_array).unwrap();
        assert_eq!(neg[0].as_u64(), None);
        assert_eq!(neg[0].as_f64(), Some(-1.0));
        assert_eq!(neg[1].as_u64(), Some(2));

        for bad in ["{", "[1,", "\"open", "{\"k\" 1}", "tru", "1 2", "{\"k\":}", ""] {
            assert!(parse(bad).is_err(), "expected error for {bad:?}");
        }
    }

    #[test]
    fn parse_strings_mix_ascii_runs_escapes_and_multibyte() {
        // Exercises the ASCII-run fast path and its boundaries: runs broken
        // by escapes, multi-byte scalars (2–4 bytes), and adjacency of all
        // three. The fast path must stop exactly at `"`, `\`, and non-ASCII.
        let v = Value::object()
            .with("plain", "a".repeat(100))
            .with("mixed", "run1\\\"é∑𝄞\\run2\tend")
            .with("unicode_only", "é∑𝄞");
        let text = v.to_string_compact();
        assert_eq!(parse(&text).unwrap(), v);
        // Large document: string parsing must stay linear (a quadratic
        // rescan here turns this test into a multi-minute hang).
        let mut big = Value::array();
        for i in 0..2000 {
            big.push(Value::object().with("name", format!("span-{i}-{}", "x".repeat(100))));
        }
        let text = big.to_string_pretty();
        assert!(text.len() > 200_000);
        assert_eq!(parse(&text).unwrap(), big);
    }

    #[test]
    fn accessors_are_typed() {
        assert_eq!(Value::UInt(3).as_u64(), Some(3));
        assert_eq!(Value::Int(3).as_u64(), Some(3));
        assert_eq!(Value::Int(-3).as_u64(), None);
        assert_eq!(Value::Float(2.0).as_u64(), Some(2));
        assert_eq!(Value::Float(2.5).as_u64(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Str("x".into()).as_u64(), None);
        assert!(Value::object().as_object().is_some());
        assert!(Value::array().as_array().is_some());
    }

    #[test]
    fn nested_array_pretty() {
        let mut rows = Value::array();
        rows.push(Value::object().with("n", 1u64));
        let text = Value::object()
            .with(
                "rows",
                Value::Array(match rows {
                    Value::Array(v) => v,
                    _ => unreachable!(),
                }),
            )
            .to_string_pretty();
        assert!(text.contains("\"rows\": [\n    {\n      \"n\": 1\n    }\n  ]"));
    }
}
