//! Dependency-free JSON values and pretty printing.
//!
//! The offline build environment rules out `serde_json`, and the engine's
//! observability output (metric snapshots, operator profiles, bench
//! artifacts) only ever needs to *produce* JSON — so this module implements
//! exactly that: a [`Value`] tree, `From` conversions for the primitive
//! types the exporters use, and a stable two-space pretty printer. Object
//! keys keep insertion order so exported artifacts diff cleanly.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Signed integer (emitted without a decimal point).
    Int(i64),
    /// Unsigned integer — counters are u64 and must not lose precision.
    UInt(u64),
    /// Floating-point number; non-finite values print as `null`.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// An empty object, for builder-style construction with [`Value::set`].
    pub fn object() -> Value {
        Value::Object(Vec::new())
    }

    /// An empty array.
    pub fn array() -> Value {
        Value::Array(Vec::new())
    }

    /// Builder-style field insertion; replaces an existing key in place.
    /// Panics when `self` is not an object.
    pub fn with(mut self, key: &str, value: impl Into<Value>) -> Value {
        self.set(key, value);
        self
    }

    /// Inserts or replaces a field. Panics when `self` is not an object.
    pub fn set(&mut self, key: &str, value: impl Into<Value>) {
        let Value::Object(fields) = self else {
            panic!("Value::set on a non-object");
        };
        let value = value.into();
        match fields.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => fields.push((key.to_string(), value)),
        }
    }

    /// Appends an element. Panics when `self` is not an array.
    pub fn push(&mut self, value: impl Into<Value>) {
        let Value::Array(items) = self else {
            panic!("Value::push on a non-array");
        };
        items.push(value.into());
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation and a trailing newline, the
    /// format all Orion-RS JSON artifacts use.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1)
                })
            }
            Value::Object(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1)
                })
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::UInt(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::UInt(u64::from(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::UInt(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Array(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(Value::Null.to_string_compact(), "null");
        assert_eq!(Value::from(true).to_string_compact(), "true");
        assert_eq!(Value::from(-3i64).to_string_compact(), "-3");
        assert_eq!(Value::from(u64::MAX).to_string_compact(), "18446744073709551615");
        assert_eq!(Value::from(2.5).to_string_compact(), "2.5");
        assert_eq!(Value::from(f64::NAN).to_string_compact(), "null");
    }

    #[test]
    fn strings_escape() {
        let v = Value::from("a\"b\\c\nd\u{1}");
        assert_eq!(v.to_string_compact(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn builder_and_pretty_shape() {
        let v = Value::object()
            .with("name", "scan")
            .with("rows", 3u64)
            .with("children", Vec::<Value>::new());
        assert_eq!(v.to_string_compact(), r#"{"name":"scan","rows":3,"children":[]}"#);
        let pretty = v.to_string_pretty();
        assert!(pretty.starts_with("{\n  \"name\": \"scan\",\n"));
        assert!(pretty.ends_with("}\n"));
    }

    #[test]
    fn set_replaces_existing_key() {
        let mut v = Value::object().with("k", 1u64);
        v.set("k", 2u64);
        assert_eq!(v.get("k"), Some(&Value::UInt(2)));
    }

    #[test]
    fn nested_array_pretty() {
        let mut rows = Value::array();
        rows.push(Value::object().with("n", 1u64));
        let text = Value::object()
            .with(
                "rows",
                Value::Array(match rows {
                    Value::Array(v) => v,
                    _ => unreachable!(),
                }),
            )
            .to_string_pretty();
        assert!(text.contains("\"rows\": [\n    {\n      \"n\": 1\n    }\n  ]"));
    }
}
