//! The per-operator execution-stats collector.
//!
//! An [`ExecStats`] is a bundle of atomic counters that the relational
//! operators increment while they run: tuple flow, the three pdf operations
//! the paper's cost model is built on (`product`, `floor`, `marginalize`),
//! history-dependent collapses, and wall time. The profiled executors hand
//! each operator its own `Arc<ExecStats>` (via `ExecOptions::stats`), then
//! snapshot it into an [`crate::OpProfile`] node.

use crate::metrics::Counter;
use crate::{fmt_nanos, json};
use std::sync::Mutex;
use std::time::Instant;

/// Work done by one worker of a morsel-parallel operator: how many morsels
/// it claimed and how long it was busy. Recorded by the parallel executor,
/// rendered by `EXPLAIN ANALYZE`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerLane {
    /// Worker index within the pool (0-based).
    pub worker: usize,
    /// Morsels this worker processed.
    pub morsels: u64,
    /// Wall time the worker spent computing, in nanoseconds.
    pub busy_nanos: u64,
}

/// Atomic execution counters for one operator (or one whole query).
#[derive(Debug, Default)]
pub struct ExecStats {
    /// Tuples entering the operator.
    pub tuples_in: Counter,
    /// Tuples in the operator's output.
    pub tuples_out: Counter,
    /// Joint-pdf products taken (independent or history-aware merges).
    pub pdf_products: Counter,
    /// Floors applied (symbolic `floor_axis` and materialized
    /// `floor_predicate` alike).
    pub pdf_floors: Counter,
    /// Marginalizations evaluated during history reconstruction.
    pub pdf_marginalizations: Counter,
    /// History-dependent merges (the paper's Section III-D collapses).
    pub collapses: Counter,
    /// Join pairs skipped before any pdf work because their certain
    /// equi-join attributes already mismatch.
    pub pairs_pruned: Counter,
    /// Columnar batches processed (zero when the operator ran row-at-a-time).
    pub batches: Counter,
    /// Tuples entering those batches (for rows-per-batch diagnostics).
    pub batch_rows: Counter,
    /// Tuples surviving batch-level selection (selection-vector density).
    pub batch_selected: Counter,
    /// Tuples an index access path examined against a candidate mask
    /// (zero when the operator ran without index support).
    pub index_probes: Counter,
    /// Tuples an index access path pruned before probability evaluation.
    pub index_pruned: Counter,
    /// Wall time attributed to the operator, in nanoseconds.
    pub elapsed_nanos: Counter,
    /// Per-worker morsel counts and busy time (empty for serial execution).
    workers: Mutex<Vec<WorkerLane>>,
}

impl ExecStats {
    /// Fresh, all-zero stats.
    pub fn new() -> ExecStats {
        ExecStats::default()
    }

    /// Starts an RAII timer adding to `elapsed_nanos` when dropped.
    pub fn timer(&self) -> ExecTimer<'_> {
        ExecTimer { stats: self, start: Instant::now() }
    }

    /// Adds one worker's contribution to the per-worker lanes. Lanes with
    /// the same worker index accumulate (an operator may run several
    /// parallel phases over one collector).
    pub fn record_worker(&self, worker: usize, morsels: u64, busy_nanos: u64) {
        let mut lanes = self.workers.lock().expect("worker lanes poisoned");
        match lanes.iter_mut().find(|l| l.worker == worker) {
            Some(l) => {
                l.morsels += morsels;
                l.busy_nanos += busy_nanos;
            }
            None => {
                lanes.push(WorkerLane { worker, morsels, busy_nanos });
                lanes.sort_by_key(|l| l.worker);
            }
        }
    }

    /// Point-in-time copy of all counters.
    pub fn snapshot(&self) -> ExecStatsSnapshot {
        ExecStatsSnapshot {
            tuples_in: self.tuples_in.get(),
            tuples_out: self.tuples_out.get(),
            pdf_products: self.pdf_products.get(),
            pdf_floors: self.pdf_floors.get(),
            pdf_marginalizations: self.pdf_marginalizations.get(),
            collapses: self.collapses.get(),
            pairs_pruned: self.pairs_pruned.get(),
            batches: self.batches.get(),
            batch_rows: self.batch_rows.get(),
            batch_selected: self.batch_selected.get(),
            index_probes: self.index_probes.get(),
            index_pruned: self.index_pruned.get(),
            elapsed_nanos: self.elapsed_nanos.get(),
            workers: self.workers.lock().expect("worker lanes poisoned").clone(),
        }
    }
}

/// RAII timer feeding [`ExecStats::elapsed_nanos`].
#[derive(Debug)]
pub struct ExecTimer<'a> {
    stats: &'a ExecStats,
    start: Instant,
}

impl ExecTimer<'_> {
    /// Stops and records now instead of at scope end.
    pub fn stop(self) {}
}

impl Drop for ExecTimer<'_> {
    fn drop(&mut self) {
        let nanos = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.stats.elapsed_nanos.add(nanos);
    }
}

/// Plain-value copy of an [`ExecStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStatsSnapshot {
    /// Tuples entering the operator.
    pub tuples_in: u64,
    /// Tuples in the operator's output.
    pub tuples_out: u64,
    /// Joint-pdf products taken.
    pub pdf_products: u64,
    /// Floors applied.
    pub pdf_floors: u64,
    /// Marginalizations evaluated.
    pub pdf_marginalizations: u64,
    /// History-dependent merges.
    pub collapses: u64,
    /// Join pairs pruned by the certain equi-key pre-filter.
    pub pairs_pruned: u64,
    /// Columnar batches processed (zero for row-at-a-time execution).
    pub batches: u64,
    /// Tuples entering those batches.
    pub batch_rows: u64,
    /// Tuples surviving batch-level selection.
    pub batch_selected: u64,
    /// Tuples examined against an index candidate mask.
    pub index_probes: u64,
    /// Tuples pruned by an index before probability evaluation.
    pub index_pruned: u64,
    /// Attributed wall time in nanoseconds.
    pub elapsed_nanos: u64,
    /// Per-worker morsel counts and busy time, sorted by worker index
    /// (empty when the operator ran serially).
    pub workers: Vec<WorkerLane>,
}

impl ExecStatsSnapshot {
    /// Adds another snapshot's counters into this one.
    pub fn merge(&mut self, other: &ExecStatsSnapshot) {
        self.tuples_in += other.tuples_in;
        self.tuples_out += other.tuples_out;
        self.pdf_products += other.pdf_products;
        self.pdf_floors += other.pdf_floors;
        self.pdf_marginalizations += other.pdf_marginalizations;
        self.collapses += other.collapses;
        self.pairs_pruned += other.pairs_pruned;
        self.batches += other.batches;
        self.batch_rows += other.batch_rows;
        self.batch_selected += other.batch_selected;
        self.index_probes += other.index_probes;
        self.index_pruned += other.index_pruned;
        self.elapsed_nanos += other.elapsed_nanos;
        for lane in &other.workers {
            match self.workers.iter_mut().find(|l| l.worker == lane.worker) {
                Some(l) => {
                    l.morsels += lane.morsels;
                    l.busy_nanos += lane.busy_nanos;
                }
                None => {
                    self.workers.push(lane.clone());
                    self.workers.sort_by_key(|l| l.worker);
                }
            }
        }
    }

    /// One-line rendering used by `EXPLAIN ANALYZE` rows. The worker-lane
    /// section appears only when the operator actually ran in parallel, so
    /// serial plans render exactly as before.
    pub fn render(&self) -> String {
        let mut line = format!(
            "in={} out={} products={} floors={} marginalize={} collapses={} pruned={} time={}",
            self.tuples_in,
            self.tuples_out,
            self.pdf_products,
            self.pdf_floors,
            self.pdf_marginalizations,
            self.collapses,
            self.pairs_pruned,
            fmt_nanos(self.elapsed_nanos),
        );
        if self.batches > 0 {
            let sel_pct = (self.batch_selected * 100).checked_div(self.batch_rows).unwrap_or(0);
            line.push_str(&format!(
                " mode=batch batches={} rows/batch={} sel={}%",
                self.batches,
                self.batch_rows / self.batches,
                sel_pct,
            ));
        } else {
            line.push_str(" mode=row");
        }
        // Index counters render only when an index path actually ran, so
        // un-indexed plans keep their exact historical rendering.
        if self.index_probes > 0 {
            line.push_str(&format!(
                " idx_probes={} idx_pruned={}",
                self.index_probes, self.index_pruned
            ));
        }
        if !self.workers.is_empty() {
            line.push_str(" workers=[");
            for (i, l) in self.workers.iter().enumerate() {
                if i > 0 {
                    line.push(' ');
                }
                line.push_str(&format!("{}:{}m/{}", l.worker, l.morsels, fmt_nanos(l.busy_nanos)));
            }
            line.push(']');
        }
        line
    }

    /// JSON form with one field per counter.
    pub fn to_json(&self) -> json::Value {
        let mut workers = json::Value::array();
        for l in &self.workers {
            workers.push(
                json::Value::object()
                    .with("worker", l.worker as u64)
                    .with("morsels", l.morsels)
                    .with("busy_nanos", l.busy_nanos),
            );
        }
        json::Value::object()
            .with("tuples_in", self.tuples_in)
            .with("tuples_out", self.tuples_out)
            .with("pdf_products", self.pdf_products)
            .with("pdf_floors", self.pdf_floors)
            .with("pdf_marginalizations", self.pdf_marginalizations)
            .with("collapses", self.collapses)
            .with("pairs_pruned", self.pairs_pruned)
            .with("batches", self.batches)
            .with("batch_rows", self.batch_rows)
            .with("batch_selected", self.batch_selected)
            .with("elapsed_nanos", self.elapsed_nanos)
            .with("workers", workers)
            // Appended after the stable keys so existing consumers keep
            // their prefix shape.
            .with("index_probes", self.index_probes)
            .with("index_pruned", self.index_pruned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters() {
        let s = ExecStats::new();
        s.tuples_in.add(10);
        s.tuples_out.add(4);
        s.pdf_products.inc();
        s.pdf_floors.add(2);
        s.pdf_marginalizations.add(3);
        s.collapses.inc();
        let snap = s.snapshot();
        assert_eq!(snap.tuples_in, 10);
        assert_eq!(snap.tuples_out, 4);
        assert_eq!(snap.pdf_products, 1);
        assert_eq!(snap.pdf_floors, 2);
        assert_eq!(snap.pdf_marginalizations, 3);
        assert_eq!(snap.collapses, 1);
    }

    #[test]
    fn timer_accumulates_elapsed() {
        let s = ExecStats::new();
        {
            let _t = s.timer();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(s.snapshot().elapsed_nanos >= 1_000_000);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = ExecStatsSnapshot { tuples_in: 1, pdf_floors: 2, ..Default::default() };
        let b = ExecStatsSnapshot { tuples_in: 3, collapses: 5, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.tuples_in, 4);
        assert_eq!(a.pdf_floors, 2);
        assert_eq!(a.collapses, 5);
    }

    #[test]
    fn render_mentions_every_counter() {
        let snap = ExecStatsSnapshot {
            tuples_in: 2,
            tuples_out: 1,
            pdf_products: 3,
            pdf_floors: 4,
            pdf_marginalizations: 5,
            collapses: 6,
            pairs_pruned: 7,
            batches: 0,
            batch_rows: 0,
            batch_selected: 0,
            index_probes: 0,
            index_pruned: 0,
            elapsed_nanos: 1_500,
            workers: Vec::new(),
        };
        assert_eq!(
            snap.render(),
            "in=2 out=1 products=3 floors=4 marginalize=5 collapses=6 pruned=7 time=1.5us mode=row"
        );
    }

    #[test]
    fn index_counters_render_only_when_probed() {
        let quiet = ExecStatsSnapshot::default();
        assert!(!quiet.render().contains("idx_probes"), "{}", quiet.render());
        let probed =
            ExecStatsSnapshot { index_probes: 100, index_pruned: 93, ..Default::default() };
        assert!(probed.render().contains("idx_probes=100 idx_pruned=93"), "{}", probed.render());
        let mut merged = probed.clone();
        merged.merge(&probed);
        assert_eq!((merged.index_probes, merged.index_pruned), (200, 186));
        assert!(probed.to_json().to_string_compact().contains(r#""index_probes":100"#));
    }

    #[test]
    fn render_reports_batch_counters() {
        let snap = ExecStatsSnapshot {
            tuples_in: 100,
            tuples_out: 25,
            batches: 4,
            batch_rows: 100,
            batch_selected: 25,
            ..Default::default()
        };
        assert!(
            snap.render().ends_with("mode=batch batches=4 rows/batch=25 sel=25%"),
            "{}",
            snap.render()
        );
        // Empty batches render without dividing by zero.
        let empty = ExecStatsSnapshot { batches: 2, ..Default::default() };
        assert!(empty.render().ends_with("mode=batch batches=2 rows/batch=0 sel=0%"));
        // Batch counters merge like the rest.
        let mut a = snap.clone();
        a.merge(&empty);
        assert_eq!((a.batches, a.batch_rows, a.batch_selected), (6, 100, 25));
    }

    #[test]
    fn worker_lanes_accumulate_and_render() {
        let s = ExecStats::new();
        s.record_worker(1, 2, 500);
        s.record_worker(0, 3, 1_000);
        s.record_worker(1, 1, 500);
        let snap = s.snapshot();
        assert_eq!(
            snap.workers,
            vec![
                WorkerLane { worker: 0, morsels: 3, busy_nanos: 1_000 },
                WorkerLane { worker: 1, morsels: 3, busy_nanos: 1_000 },
            ]
        );
        assert!(snap.render().ends_with("workers=[0:3m/1.0us 1:3m/1.0us]"), "{}", snap.render());
    }

    #[test]
    fn merge_sums_worker_lanes_by_index() {
        let mut a = ExecStatsSnapshot {
            workers: vec![WorkerLane { worker: 0, morsels: 1, busy_nanos: 10 }],
            ..Default::default()
        };
        let b = ExecStatsSnapshot {
            workers: vec![
                WorkerLane { worker: 0, morsels: 2, busy_nanos: 5 },
                WorkerLane { worker: 2, morsels: 4, busy_nanos: 7 },
            ],
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(
            a.workers,
            vec![
                WorkerLane { worker: 0, morsels: 3, busy_nanos: 15 },
                WorkerLane { worker: 2, morsels: 4, busy_nanos: 7 },
            ]
        );
    }
}
