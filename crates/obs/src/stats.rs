//! The per-operator execution-stats collector.
//!
//! An [`ExecStats`] is a bundle of atomic counters that the relational
//! operators increment while they run: tuple flow, the three pdf operations
//! the paper's cost model is built on (`product`, `floor`, `marginalize`),
//! history-dependent collapses, and wall time. The profiled executors hand
//! each operator its own `Arc<ExecStats>` (via `ExecOptions::stats`), then
//! snapshot it into an [`crate::OpProfile`] node.

use crate::metrics::Counter;
use crate::{fmt_nanos, json};
use std::time::Instant;

/// Atomic execution counters for one operator (or one whole query).
#[derive(Debug, Default)]
pub struct ExecStats {
    /// Tuples entering the operator.
    pub tuples_in: Counter,
    /// Tuples in the operator's output.
    pub tuples_out: Counter,
    /// Joint-pdf products taken (independent or history-aware merges).
    pub pdf_products: Counter,
    /// Floors applied (symbolic `floor_axis` and materialized
    /// `floor_predicate` alike).
    pub pdf_floors: Counter,
    /// Marginalizations evaluated during history reconstruction.
    pub pdf_marginalizations: Counter,
    /// History-dependent merges (the paper's Section III-D collapses).
    pub collapses: Counter,
    /// Wall time attributed to the operator, in nanoseconds.
    pub elapsed_nanos: Counter,
}

impl ExecStats {
    /// Fresh, all-zero stats.
    pub fn new() -> ExecStats {
        ExecStats::default()
    }

    /// Starts an RAII timer adding to `elapsed_nanos` when dropped.
    pub fn timer(&self) -> ExecTimer<'_> {
        ExecTimer { stats: self, start: Instant::now() }
    }

    /// Point-in-time copy of all counters.
    pub fn snapshot(&self) -> ExecStatsSnapshot {
        ExecStatsSnapshot {
            tuples_in: self.tuples_in.get(),
            tuples_out: self.tuples_out.get(),
            pdf_products: self.pdf_products.get(),
            pdf_floors: self.pdf_floors.get(),
            pdf_marginalizations: self.pdf_marginalizations.get(),
            collapses: self.collapses.get(),
            elapsed_nanos: self.elapsed_nanos.get(),
        }
    }
}

/// RAII timer feeding [`ExecStats::elapsed_nanos`].
#[derive(Debug)]
pub struct ExecTimer<'a> {
    stats: &'a ExecStats,
    start: Instant,
}

impl ExecTimer<'_> {
    /// Stops and records now instead of at scope end.
    pub fn stop(self) {}
}

impl Drop for ExecTimer<'_> {
    fn drop(&mut self) {
        let nanos = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.stats.elapsed_nanos.add(nanos);
    }
}

/// Plain-value copy of an [`ExecStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStatsSnapshot {
    /// Tuples entering the operator.
    pub tuples_in: u64,
    /// Tuples in the operator's output.
    pub tuples_out: u64,
    /// Joint-pdf products taken.
    pub pdf_products: u64,
    /// Floors applied.
    pub pdf_floors: u64,
    /// Marginalizations evaluated.
    pub pdf_marginalizations: u64,
    /// History-dependent merges.
    pub collapses: u64,
    /// Attributed wall time in nanoseconds.
    pub elapsed_nanos: u64,
}

impl ExecStatsSnapshot {
    /// Adds another snapshot's counters into this one.
    pub fn merge(&mut self, other: &ExecStatsSnapshot) {
        self.tuples_in += other.tuples_in;
        self.tuples_out += other.tuples_out;
        self.pdf_products += other.pdf_products;
        self.pdf_floors += other.pdf_floors;
        self.pdf_marginalizations += other.pdf_marginalizations;
        self.collapses += other.collapses;
        self.elapsed_nanos += other.elapsed_nanos;
    }

    /// One-line rendering used by `EXPLAIN ANALYZE` rows.
    pub fn render(&self) -> String {
        format!(
            "in={} out={} products={} floors={} marginalize={} collapses={} time={}",
            self.tuples_in,
            self.tuples_out,
            self.pdf_products,
            self.pdf_floors,
            self.pdf_marginalizations,
            self.collapses,
            fmt_nanos(self.elapsed_nanos),
        )
    }

    /// JSON form with one field per counter.
    pub fn to_json(&self) -> json::Value {
        json::Value::object()
            .with("tuples_in", self.tuples_in)
            .with("tuples_out", self.tuples_out)
            .with("pdf_products", self.pdf_products)
            .with("pdf_floors", self.pdf_floors)
            .with("pdf_marginalizations", self.pdf_marginalizations)
            .with("collapses", self.collapses)
            .with("elapsed_nanos", self.elapsed_nanos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters() {
        let s = ExecStats::new();
        s.tuples_in.add(10);
        s.tuples_out.add(4);
        s.pdf_products.inc();
        s.pdf_floors.add(2);
        s.pdf_marginalizations.add(3);
        s.collapses.inc();
        let snap = s.snapshot();
        assert_eq!(snap.tuples_in, 10);
        assert_eq!(snap.tuples_out, 4);
        assert_eq!(snap.pdf_products, 1);
        assert_eq!(snap.pdf_floors, 2);
        assert_eq!(snap.pdf_marginalizations, 3);
        assert_eq!(snap.collapses, 1);
    }

    #[test]
    fn timer_accumulates_elapsed() {
        let s = ExecStats::new();
        {
            let _t = s.timer();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(s.snapshot().elapsed_nanos >= 1_000_000);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = ExecStatsSnapshot { tuples_in: 1, pdf_floors: 2, ..Default::default() };
        let b = ExecStatsSnapshot { tuples_in: 3, collapses: 5, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.tuples_in, 4);
        assert_eq!(a.pdf_floors, 2);
        assert_eq!(a.collapses, 5);
    }

    #[test]
    fn render_mentions_every_counter() {
        let snap = ExecStatsSnapshot {
            tuples_in: 2,
            tuples_out: 1,
            pdf_products: 3,
            pdf_floors: 4,
            pdf_marginalizations: 5,
            collapses: 6,
            elapsed_nanos: 1_500,
        };
        assert_eq!(
            snap.render(),
            "in=2 out=1 products=3 floors=4 marginalize=5 collapses=6 time=1.5us"
        );
    }
}
