//! Named counters, log2-bucketed latency histograms and the registry that
//! holds them — instance-based and lock-free on the hot path: incrementing
//! a counter or recording a latency touches only relaxed atomics; the
//! registry lock is paid once at handle lookup. One process-wide registry
//! ([`global`]) exists for cross-cutting metrics (WAL batch sizes, fsync
//! latencies) that no single engine instance owns; everything else stays
//! instance-scoped.

use crate::json;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// The process-wide registry. The WAL and checkpoint paths record their
/// batch-size and fsync-latency histograms here (they are always-on:
/// histogram recording is cheap and independent of tracing), and
/// [`MetricsRegistry::render_prometheus`] on this registry gives
/// long-running processes a scrapeable text exposition.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero (tests and bench warm-up only).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Number of buckets in a [`Histogram`]: bucket 0 holds zeros, bucket `i`
/// (1 ≤ i ≤ 64) holds values in `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples (typically nanoseconds).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// The bucket index a value lands in.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive upper bound of a bucket (`2^i - 1`; bucket 0 is exactly 0).
    pub fn bucket_upper_bound(index: usize) -> u64 {
        assert!(index < HISTOGRAM_BUCKETS, "bucket index out of range");
        if index >= 64 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// A point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Per-bucket sample counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean sample value, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile (0 ≤ q ≤ 1) —
    /// an upper estimate with log2 resolution.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Histogram::bucket_upper_bound(i);
            }
        }
        Histogram::bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// JSON form: count, sum, mean, and the non-empty buckets as
    /// `{"le": upper_bound, "n": count}` entries.
    pub fn to_json(&self) -> json::Value {
        let mut buckets = json::Value::array();
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                buckets.push(
                    json::Value::object().with("le", Histogram::bucket_upper_bound(i)).with("n", c),
                );
            }
        }
        json::Value::object()
            .with("count", self.count)
            .with("sum", self.sum)
            .with("mean", self.mean())
            .with("buckets", buckets)
    }
}

/// An instance-scoped registry of named counters and histograms.
///
/// Handles are `Arc`s: look a metric up once, then increment without ever
/// touching the registry lock again. Cloning the registry shares the
/// underlying metrics.
#[derive(Debug, Default, Clone)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Returns (creating on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.inner.counters.lock();
        match map.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Counter::new());
                map.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    /// Returns (creating on first use) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.inner.histograms.lock();
        match map.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::new());
                map.insert(name.to_string(), Arc::clone(&h));
                h
            }
        }
    }

    /// Current value of a counter, 0 when it was never created.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner.counters.lock().get(name).map_or(0, |c| c.get())
    }

    /// Name-sorted snapshot of every counter — the row source for the
    /// `orion.metrics` virtual table.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.inner.counters.lock().iter().map(|(n, c)| (n.clone(), c.get())).collect()
    }

    /// Name-sorted snapshot of every histogram.
    pub fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        self.inner.histograms.lock().iter().map(|(n, h)| (n.clone(), h.snapshot())).collect()
    }

    /// Starts an RAII timer recording into the histogram named `name` when
    /// dropped.
    pub fn span(&self, name: &str) -> SpanTimer {
        SpanTimer::new(self.histogram(name))
    }

    /// Snapshot of every metric, keys sorted, as a JSON object with
    /// `counters` and `histograms` sections.
    pub fn snapshot_json(&self) -> json::Value {
        let mut counters = json::Value::object();
        for (name, c) in self.inner.counters.lock().iter() {
            counters.set(name, c.get());
        }
        let mut histograms = json::Value::object();
        for (name, h) in self.inner.histograms.lock().iter() {
            histograms.set(name, h.snapshot().to_json());
        }
        json::Value::object().with("counters", counters).with("histograms", histograms)
    }

    /// Prometheus text exposition (version 0.0.4) of every metric: counters
    /// as `# TYPE <name> counter`, histograms as cumulative
    /// `<name>_bucket{le="..."}` series plus `_sum` and `_count`. Every log2
    /// upper bound up to the last non-empty bucket is emitted (cumulative
    /// counts, so empty buckets repeat the running total), then `+Inf`.
    /// Metric names are sanitized to `[a-zA-Z0-9_:]` (dots become
    /// underscores), per the Prometheus data model.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, c) in self.inner.counters.lock().iter() {
            let name = sanitize_metric_name(name);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", c.get());
        }
        for (name, h) in self.inner.histograms.lock().iter() {
            let name = sanitize_metric_name(name);
            let snap = h.snapshot();
            let _ = writeln!(out, "# TYPE {name} histogram");
            // Every boundary up to the last non-empty bucket appears, so the
            // cumulative `le` ladder is dense and monotone (empty buckets
            // repeat the running total instead of vanishing); boundaries past
            // the data are elided and +Inf carries the total regardless.
            let mut cumulative = 0u64;
            if let Some(last) = snap.buckets.iter().rposition(|&n| n > 0) {
                for (i, &n) in snap.buckets.iter().enumerate().take(last + 1) {
                    cumulative += n;
                    let _ = writeln!(
                        out,
                        "{name}_bucket{{le=\"{}\"}} {cumulative}",
                        Histogram::bucket_upper_bound(i)
                    );
                }
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count);
            let _ = writeln!(out, "{name}_sum {}", snap.sum);
            let _ = writeln!(out, "{name}_count {}", snap.count);
        }
        out
    }
}

/// Maps a registry metric name onto the Prometheus charset: `[a-zA-Z0-9_:]`
/// pass through, everything else (the registry's `.` separators) becomes
/// `_`.
fn sanitize_metric_name(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() || c == ':' { c } else { '_' }).collect()
}

/// RAII span timer: records the elapsed wall time into a histogram when
/// dropped (or explicitly via [`SpanTimer::stop`]).
#[derive(Debug)]
pub struct SpanTimer {
    hist: Arc<Histogram>,
    start: Instant,
}

impl SpanTimer {
    /// Starts timing into `hist`.
    pub fn new(hist: Arc<Histogram>) -> SpanTimer {
        SpanTimer { hist, start: Instant::now() }
    }

    /// Stops and records now instead of at scope end.
    pub fn stop(self) {}
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        self.hist.record_duration(self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Bucket 0 is exactly zero; bucket i covers [2^(i-1), 2^i).
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper_bound(0), 0);
        assert_eq!(Histogram::bucket_upper_bound(1), 1);
        assert_eq!(Histogram::bucket_upper_bound(11), 2047);
        assert_eq!(Histogram::bucket_upper_bound(64), u64::MAX);
        // Every power of two starts a fresh bucket.
        for i in 1..64u32 {
            let v = 1u64 << i;
            assert_eq!(Histogram::bucket_index(v), Histogram::bucket_index(v - 1) + 1);
        }
    }

    #[test]
    fn histogram_record_and_quantiles() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1105);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 2);
        assert_eq!(s.buckets[2], 1);
        assert!((s.mean() - 1105.0 / 6.0).abs() < 1e-12);
        assert_eq!(s.quantile_upper_bound(0.0), 0);
        assert_eq!(s.quantile_upper_bound(1.0), 1023);
    }

    #[test]
    fn registry_reuses_handles_and_snapshots() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("ops.select");
        let b = reg.counter("ops.select");
        a.inc();
        b.inc();
        assert_eq!(reg.counter_value("ops.select"), 2);
        assert_eq!(reg.counter_value("missing"), 0);
        reg.histogram("lat").record(7);
        let snap = reg.snapshot_json();
        let text = snap.to_string_compact();
        assert!(text.contains("\"ops.select\":2"));
        assert!(text.contains("\"lat\""));
    }

    #[test]
    fn concurrent_increments_from_many_threads() {
        let reg = MetricsRegistry::new();
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let reg = reg.clone();
                s.spawn(move || {
                    let c = reg.counter("shared");
                    let h = reg.histogram("lat");
                    for i in 0..per_thread {
                        c.inc();
                        h.record(i % 17);
                    }
                });
            }
        });
        assert_eq!(reg.counter_value("shared"), threads * per_thread);
        let snap = reg.histogram("lat").snapshot();
        assert_eq!(snap.count, threads * per_thread);
        assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("wal.commits").add(3);
        let h = reg.histogram("wal.fsync_nanos");
        h.record(0);
        h.record(5); // bucket 3, le=7
        h.record(6);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE wal_commits counter\nwal_commits 3\n"), "{text}");
        assert!(text.contains("# TYPE wal_fsync_nanos histogram"), "{text}");
        // Cumulative buckets: le="0" sees the zero sample, le="7" all three.
        assert!(text.contains("wal_fsync_nanos_bucket{le=\"0\"} 1"), "{text}");
        assert!(text.contains("wal_fsync_nanos_bucket{le=\"7\"} 3"), "{text}");
        assert!(text.contains("wal_fsync_nanos_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("wal_fsync_nanos_sum 11"), "{text}");
        assert!(text.contains("wal_fsync_nanos_count 3"), "{text}");
        // Dots were sanitized away.
        assert!(!text.contains("wal.commits"), "{text}");
    }

    #[test]
    fn prometheus_exposition_golden() {
        let reg = MetricsRegistry::new();
        reg.counter("wal.commits").add(3);
        let h = reg.histogram("wal.fsync_nanos");
        h.record(0);
        h.record(5);
        h.record(6);
        // The `le` ladder is dense up to the last non-empty bucket: the empty
        // le="1" boundary still appears, repeating the cumulative count, and
        // boundaries past le="7" are elided in favor of +Inf.
        let golden = "\
# TYPE wal_commits counter
wal_commits 3
# TYPE wal_fsync_nanos histogram
wal_fsync_nanos_bucket{le=\"0\"} 1
wal_fsync_nanos_bucket{le=\"1\"} 1
wal_fsync_nanos_bucket{le=\"3\"} 1
wal_fsync_nanos_bucket{le=\"7\"} 3
wal_fsync_nanos_bucket{le=\"+Inf\"} 3
wal_fsync_nanos_sum 11
wal_fsync_nanos_count 3
";
        assert_eq!(reg.render_prometheus(), golden);
    }

    #[test]
    fn prometheus_empty_histogram_emits_only_inf() {
        let reg = MetricsRegistry::new();
        reg.histogram("idle");
        let text = reg.render_prometheus();
        assert_eq!(
            text,
            "# TYPE idle histogram\nidle_bucket{le=\"+Inf\"} 0\nidle_sum 0\nidle_count 0\n"
        );
    }

    #[test]
    fn span_timer_records_on_drop() {
        let reg = MetricsRegistry::new();
        {
            let _t = reg.span("phase");
            std::thread::sleep(Duration::from_millis(1));
        }
        let s = reg.histogram("phase").snapshot();
        assert_eq!(s.count, 1);
        assert!(s.sum >= 1_000_000, "recorded at least 1ms, got {}ns", s.sum);
    }
}
