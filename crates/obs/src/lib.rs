//! # orion-obs — the Orion-RS observability layer
//!
//! The paper's evaluation (Figures 5–6) is entirely about *where time
//! goes*: operator cost and the overhead of history maintenance. This crate
//! gives the engine the counters to answer that question without guessing:
//!
//! * [`metrics`] — named atomic [`Counter`]s and log2-bucketed latency
//!   [`Histogram`]s grouped in an instance-scoped (global-free)
//!   [`MetricsRegistry`], plus the RAII [`SpanTimer`];
//! * [`stats`] — the per-operator [`ExecStats`] collector threaded through
//!   the relational operators (tuples in/out, pdf products / floors /
//!   marginalizations, history collapses, wall time);
//! * [`profile`] — the [`OpProfile`] tree rendered by `EXPLAIN ANALYZE`
//!   and exported by the bench binaries;
//! * [`json`] — a dependency-free JSON value builder, pretty printer, and
//!   parser (the build environment is offline, so no `serde_json`);
//! * [`trace`] — structured, query-scoped hierarchical spans recorded into
//!   per-lane ring buffers, exported as Chrome trace-event JSON;
//! * [`recorder`] — the crash flight recorder: a bounded process-wide ring
//!   of recent spans dumped to `flight-<ts>.json` on panic or fault kills;
//! * [`workload`] — the pg_stat_statements-style statement repository:
//!   per-fingerprint call/latency/IO counters plus the bounded slow-query
//!   ring with captured plans, fed by the SQL session layer.
//!
//! Engine-scoped state (stats, profiles, per-engine registries) stays
//! instance-based, so two engines in one process keep independent metrics.
//! Three deliberately process-wide pieces exist for cross-cutting
//! observability: [`metrics::global`] (WAL/fsync histograms + Prometheus
//! exposition), [`trace::Tracer::global`] (the tracer the storage layer
//! records into, off unless `ORION_TRACE=1`), and the [`recorder`] flight
//! ring. All three are record-only and cost one relaxed atomic load when
//! disabled.

pub mod json;
pub mod metrics;
pub mod profile;
pub mod recorder;
pub mod stats;
pub mod trace;
pub mod workload;

pub use metrics::{Counter, Histogram, HistogramSnapshot, MetricsRegistry, SpanTimer};
pub use profile::{AltPath, OpProfile};
pub use stats::{ExecStats, ExecStatsSnapshot, ExecTimer, WorkerLane};
pub use trace::{
    validate_chrome_trace, validate_flight_dump, Lane, LaneStats, Span, TraceEvent, Tracer,
};
pub use workload::{
    validate_slow_dump, ExecSample, SlowCause, SlowQuery, SlowTicket, StatementStats,
    WorkloadConfig, WorkloadRepo,
};

/// Formats a nanosecond count in adaptive human units (`412ns`, `3.1us`,
/// `2.4ms`, `1.20s`).
pub fn fmt_nanos(nanos: u64) -> String {
    let n = nanos as f64;
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}us", n / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.1}ms", n / 1e6)
    } else {
        format!("{:.2}s", n / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::fmt_nanos;

    #[test]
    fn nanos_formatting_units() {
        assert_eq!(fmt_nanos(17), "17ns");
        assert_eq!(fmt_nanos(4_200), "4.2us");
        assert_eq!(fmt_nanos(7_350_000), "7.3ms");
        assert_eq!(fmt_nanos(2_500_000_000), "2.50s");
    }
}
