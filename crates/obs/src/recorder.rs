//! Crash flight recorder: a bounded, process-wide ring of the most recent
//! span events, dumped to `flight-<ts>.json` when something dies.
//!
//! The global [`crate::trace::Tracer`] copies every closed span in here
//! (private tracers do not feed the ring, so tests stay isolated). The ring
//! keeps the last [`FLIGHT_CAPACITY`] events; on a panic, a simulated
//! `FaultyStore` kill, or an explicit [`dump`] call, the ring is written as
//! a Chrome trace-event document with a top-level `"reason"` key — so every
//! crash-matrix failure comes with a trace of what the process was doing.
//!
//! Like the tracer, the disabled path is one relaxed atomic load.

use crate::json;
use crate::trace::TraceEvent;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Once, OnceLock};

/// Events kept in the global flight ring.
pub const FLIGHT_CAPACITY: usize = 4_096;

struct Flight {
    enabled: AtomicBool,
    ring: Mutex<VecDeque<TraceEvent>>,
    dump_dir: Mutex<Option<PathBuf>>,
    /// Distinguishes dumps written within the same second.
    seq: AtomicU64,
}

fn flight() -> &'static Flight {
    static FLIGHT: OnceLock<Flight> = OnceLock::new();
    FLIGHT.get_or_init(|| Flight {
        enabled: AtomicBool::new(crate::trace::env_trace_enabled()),
        ring: Mutex::new(VecDeque::new()),
        dump_dir: Mutex::new(None),
        seq: AtomicU64::new(0),
    })
}

/// Whether the recorder is accepting events (relaxed load).
pub fn enabled() -> bool {
    flight().enabled.load(Ordering::Relaxed)
}

/// Turns the recorder on or off. Initialized from `ORION_TRACE`.
pub fn set_enabled(on: bool) {
    flight().enabled.store(on, Ordering::Relaxed);
}

/// Copies one closed span into the ring (no-op while disabled).
pub fn record(event: &TraceEvent) {
    let f = flight();
    if !f.enabled.load(Ordering::Relaxed) {
        return;
    }
    let mut ring = f.ring.lock();
    if ring.len() >= FLIGHT_CAPACITY {
        ring.pop_front();
    }
    ring.push_back(event.clone());
}

/// Registers the directory [`dump`] writes into. `DurableDb::open_with`
/// points this at the database directory so crash dumps land next to the
/// data they describe.
pub fn set_dump_dir(dir: &Path) {
    *flight().dump_dir.lock() = Some(dir.to_path_buf());
}

/// The currently registered dump directory, if any.
pub fn dump_dir() -> Option<PathBuf> {
    flight().dump_dir.lock().clone()
}

/// Number of events currently in the ring.
pub fn len() -> usize {
    flight().ring.lock().len()
}

/// Whether the ring holds no events.
pub fn is_empty() -> bool {
    len() == 0
}

/// Empties the ring (enabled flag and dump dir are untouched).
pub fn clear() {
    flight().ring.lock().clear();
}

/// The most recent `n` events, oldest first — the slow-query log attaches
/// these as a context snippet next to a captured plan.
pub fn recent(n: usize) -> Vec<TraceEvent> {
    let ring = flight().ring.lock();
    let skip = ring.len().saturating_sub(n);
    ring.iter().skip(skip).cloned().collect()
}

/// Dumps the ring to the registered dump directory. Returns the written
/// path, or `None` when the recorder is disabled, no directory is
/// registered, or the write fails (a crash dump must never crash harder).
pub fn dump(reason: &str) -> Option<PathBuf> {
    if !enabled() {
        return None;
    }
    let dir = dump_dir()?;
    dump_to_dir(&dir, reason).ok()
}

/// Dumps the ring into `dir` as `flight-<epoch-secs>-<seq>.json`
/// regardless of whether a dump directory is registered.
pub fn dump_to_dir(dir: &Path, reason: &str) -> std::io::Result<PathBuf> {
    let f = flight();
    let events: Vec<TraceEvent> = f.ring.lock().iter().cloned().collect();
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let seq = f.seq.fetch_add(1, Ordering::Relaxed);
    let path = dir.join(format!("flight-{secs}-{seq}.json"));
    let doc = json::Value::object()
        .with("reason", reason)
        .with("traceEvents", crate::trace::chrome_events_json(&events));
    std::fs::create_dir_all(dir)?;
    std::fs::write(&path, doc.to_string_pretty())?;
    Ok(path)
}

/// Installs a panic hook (once per process) that dumps the flight ring
/// before delegating to the previous hook. Dumps only when the recorder is
/// enabled and a dump directory is registered, so the hook is inert in
/// untraced processes.
pub fn install_panic_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if let Some(path) = dump("panic") {
                eprintln!("flight recorder dumped to {}", path.display());
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::validate_chrome_trace;

    fn event(name: &str, start_ns: u64, end_ns: u64) -> TraceEvent {
        TraceEvent {
            name: name.to_string(),
            cat: "test",
            tid: 1,
            span_id: start_ns + 1,
            parent_id: 0,
            trace_id: 0,
            start_ns,
            end_ns,
            args: Vec::new(),
        }
    }

    // The recorder is process-global, so exercise it in one test to avoid
    // cross-test interference.
    #[test]
    fn ring_records_bounded_and_dumps_parseable_json() {
        let was = enabled();
        set_enabled(true);
        clear();
        for i in 0..(FLIGHT_CAPACITY as u64 + 10) {
            record(&event("e", i * 1_000, i * 1_000 + 500));
        }
        assert_eq!(len(), FLIGHT_CAPACITY);
        let tail = recent(3);
        assert_eq!(tail.len(), 3);
        // Oldest-first: the last element is the newest event recorded.
        assert_eq!(tail[2].start_ns, (FLIGHT_CAPACITY as u64 + 9) * 1_000);

        let dir = std::env::temp_dir().join("orion_obs_test").join("recorder");
        let path = dump_to_dir(&dir, "unit-test").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = json::parse(&text).unwrap();
        assert_eq!(doc.get("reason").and_then(json::Value::as_str), Some("unit-test"));
        validate_chrome_trace(&doc).unwrap();

        // Disabled recorder accepts nothing and dump() declines.
        set_enabled(false);
        clear();
        record(&event("ignored", 0, 1));
        assert!(is_empty());
        assert!(dump("nope").is_none());

        std::fs::remove_dir_all(&dir).ok();
        set_enabled(was);
    }
}
