//! Structured tracing: query-scoped hierarchical spans across threads,
//! recorded into per-lane ring buffers and exported as Chrome trace-event
//! JSON (loadable in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev)).
//!
//! # Model
//!
//! A [`Tracer`] owns a set of **lanes** — one per logical thread of
//! execution (the query driver, each morsel worker, the WAL, the buffer
//! pool). A lane hands out RAII [`Span`] guards; dropping the guard closes
//! the span and records one [`TraceEvent`] into the lane's bounded ring
//! buffer (oldest events are evicted first, so a long-running process keeps
//! the *recent* history). Spans on one lane nest like a stack, which is
//! exactly the discipline the RAII guard enforces, so parent links come for
//! free and the Chrome "X" (complete) events render as a flame graph.
//!
//! # ID scheme
//!
//! Span ids are allocated from one process-wide-per-tracer atomic counter
//! (never reused, never 0 — 0 means "no parent"). Trace ids group every
//! span recorded between two [`Tracer::begin_trace`] calls, which the SQL
//! layer uses to stamp each `EXPLAIN TRACE` query; spans that run outside
//! any query (WAL background work) carry the last started trace id.
//!
//! # Disabled cost
//!
//! When disabled, [`Lane::span`] is a single relaxed atomic load returning
//! an inert guard — no allocation, no lock, no clock read. Tracing is
//! record-only: it never branches on data values, so enabling it cannot
//! perturb query results (see `tests/parallel_equiv.rs`).

use crate::json;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Events kept per lane before the oldest is evicted.
pub const DEFAULT_RING_CAPACITY: usize = 16_384;

/// One closed span: a named interval on a lane, with its ids and arguments.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Span name (operator, morsel, fsync, ...).
    pub name: String,
    /// Category, used by trace viewers to color/filter (`exec`, `wal`, ...).
    pub cat: &'static str,
    /// Lane id, exported as the Chrome `tid`.
    pub tid: u64,
    /// This span's id (unique per tracer, never 0).
    pub span_id: u64,
    /// Enclosing span's id on the same lane, 0 for a root span.
    pub parent_id: u64,
    /// Trace (query) id current when the span opened.
    pub trace_id: u64,
    /// Start, nanoseconds since the tracer's origin instant.
    pub start_ns: u64,
    /// End, nanoseconds since the tracer's origin instant.
    pub end_ns: u64,
    /// Span arguments (counters, deltas), exported as Chrome `args`.
    pub args: Vec<(String, json::Value)>,
}

#[derive(Debug, Default)]
struct LaneState {
    ring: VecDeque<TraceEvent>,
    /// Events evicted because the ring was full.
    dropped: u64,
    /// Stack of currently-open span ids on this lane.
    open: Vec<u64>,
}

#[derive(Debug)]
struct LaneInner {
    name: String,
    tid: u64,
    state: Mutex<LaneState>,
}

#[derive(Debug)]
struct TracerInner {
    /// The whole disabled-path cost: one relaxed load of this flag.
    enabled: AtomicBool,
    /// Whether closed spans are also copied into the process-wide flight
    /// recorder (true only for the global tracer, so private test tracers
    /// stay isolated).
    feed_flight: bool,
    origin: Instant,
    next_span: AtomicU64,
    next_trace: AtomicU64,
    current_trace: AtomicU64,
    capacity: usize,
    lanes: Mutex<Vec<Arc<LaneInner>>>,
}

/// A lock-light, thread-safe span recorder. Cheap to clone (shared state).
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A fresh, **disabled** tracer with the default ring capacity.
    pub fn new() -> Tracer {
        Tracer::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A fresh, disabled tracer keeping at most `capacity` events per lane.
    pub fn with_capacity(capacity: usize) -> Tracer {
        Tracer {
            inner: Arc::new(TracerInner {
                enabled: AtomicBool::new(false),
                feed_flight: false,
                origin: Instant::now(),
                next_span: AtomicU64::new(0),
                next_trace: AtomicU64::new(0),
                current_trace: AtomicU64::new(0),
                capacity,
                lanes: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The process-wide tracer the storage and durability layers record
    /// into. Enabled at first use when the `ORION_TRACE` environment
    /// variable is `1`/`true`/`on`; toggleable afterwards with
    /// [`Tracer::set_enabled`]. Its closed spans also feed the
    /// [`crate::recorder`] flight ring.
    pub fn global() -> &'static Tracer {
        static GLOBAL: OnceLock<Tracer> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let t = Tracer {
                inner: Arc::new(TracerInner {
                    enabled: AtomicBool::new(env_trace_enabled()),
                    feed_flight: true,
                    origin: Instant::now(),
                    next_span: AtomicU64::new(0),
                    next_trace: AtomicU64::new(0),
                    current_trace: AtomicU64::new(0),
                    capacity: DEFAULT_RING_CAPACITY,
                    lanes: Mutex::new(Vec::new()),
                }),
            };
            if t.enabled() {
                crate::recorder::set_enabled(true);
            }
            t
        })
    }

    /// Whether spans are currently recorded (relaxed load).
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off. Open spans on either side of the flip
    /// record iff they were opened while enabled.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Starts a new trace (query) scope and returns its id (≥ 1). Spans
    /// opened afterwards carry this id until the next call.
    pub fn begin_trace(&self) -> u64 {
        let id = self.inner.next_trace.fetch_add(1, Ordering::Relaxed) + 1;
        self.inner.current_trace.store(id, Ordering::Relaxed);
        id
    }

    /// The lane named `name`, creating it on first use. Lanes are keyed by
    /// name so repeated lookups share one ring. **A shared lane requires
    /// the caller to serialize its spans** (one thread, or one mutex held
    /// across every span) — overlapping spans on one lane would break
    /// Chrome nesting. Contexts that cannot guarantee that use
    /// [`Tracer::thread_lane`] or [`Tracer::unique_lane`].
    pub fn lane(&self, name: &str) -> Lane {
        let mut lanes = self.inner.lanes.lock();
        let lane = match lanes.iter().find(|l| l.name == name) {
            Some(l) => Arc::clone(l),
            None => Self::push_lane(&mut lanes, name),
        };
        Lane { tracer: Arc::clone(&self.inner), lane }
    }

    /// A lane named `{prefix} (t{N})` where `N` identifies the calling
    /// thread — spans from it are serialized by construction, so
    /// concurrent queries on different threads never interleave on one
    /// lane. Repeated calls from the same thread share the lane.
    pub fn thread_lane(&self, prefix: &str) -> Lane {
        self.lane(&format!("{prefix} (t{})", thread_tag()))
    }

    /// A **new** lane on every call, even when the display name repeats —
    /// for short-lived serialized contexts like the morsel workers of one
    /// query (each invocation gets fresh lanes; Chrome `tid`s stay
    /// distinct, so viewers render duplicates as separate tracks).
    pub fn unique_lane(&self, name: &str) -> Lane {
        let mut lanes = self.inner.lanes.lock();
        let lane = Self::push_lane(&mut lanes, name);
        Lane { tracer: Arc::clone(&self.inner), lane }
    }

    fn push_lane(lanes: &mut Vec<Arc<LaneInner>>, name: &str) -> Arc<LaneInner> {
        let l = Arc::new(LaneInner {
            name: name.to_string(),
            tid: lanes.len() as u64 + 1,
            state: Mutex::new(LaneState::default()),
        });
        lanes.push(Arc::clone(&l));
        l
    }

    /// Empties every lane's ring (and open-span stacks). Lane registrations
    /// and id counters survive, so ids stay unique across clears.
    pub fn clear(&self) {
        let lanes = self.inner.lanes.lock();
        for lane in lanes.iter() {
            let mut st = lane.state.lock();
            st.ring.clear();
            st.open.clear();
            st.dropped = 0;
        }
    }

    /// Every recorded event, across all lanes, sorted by start time (ties:
    /// longer span first, so parents precede their children).
    pub fn events(&self) -> Vec<TraceEvent> {
        let lanes = self.inner.lanes.lock();
        let mut events: Vec<TraceEvent> = Vec::new();
        for lane in lanes.iter() {
            events.extend(lane.state.lock().ring.iter().cloned());
        }
        events.sort_by(|a, b| a.start_ns.cmp(&b.start_ns).then(b.end_ns.cmp(&a.end_ns)));
        events
    }

    /// Total events evicted from full rings since the last clear.
    pub fn dropped(&self) -> u64 {
        self.inner.lanes.lock().iter().map(|l| l.state.lock().dropped).sum()
    }

    /// Per-lane accounting in registration order — the row source for the
    /// `orion.trace_lanes` virtual table.
    pub fn lane_stats(&self) -> Vec<LaneStats> {
        let lanes = self.inner.lanes.lock();
        lanes
            .iter()
            .map(|l| {
                let st = l.state.lock();
                LaneStats {
                    name: l.name.clone(),
                    tid: l.tid,
                    events: st.ring.len() as u64,
                    dropped: st.dropped,
                }
            })
            .collect()
    }

    /// Exports the recorded spans as a Chrome trace-event JSON document:
    /// `{"traceEvents": [...]}` with one `"M"` thread-name metadata event
    /// per lane and one `"X"` complete event per span, sorted by start
    /// time. Timestamps are microseconds (`ts`/`dur`), floor-truncated from
    /// nanoseconds — the floor is monotone, so child spans stay inside
    /// their parents.
    pub fn export_chrome_json(&self) -> json::Value {
        let mut arr = json::Value::array();
        {
            let lanes = self.inner.lanes.lock();
            for lane in lanes.iter() {
                arr.push(
                    json::Value::object()
                        .with("ph", "M")
                        .with("name", "thread_name")
                        .with("pid", 1u64)
                        .with("tid", lane.tid)
                        .with("args", json::Value::object().with("name", lane.name.as_str())),
                );
            }
        }
        for e in self.events() {
            arr.push(chrome_event(&e));
        }
        json::Value::object().with("traceEvents", arr).with("displayTimeUnit", "ms")
    }

    /// Writes [`Tracer::export_chrome_json`] to `path` (pretty-printed).
    pub fn write_chrome_trace(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.export_chrome_json().to_string_pretty())
    }

    /// Renders the recorded spans as a text tree, one section per lane,
    /// children indented under their parents. At most `max_children`
    /// children are shown per node (`… (+N more)` marks the rest) so
    /// morsel-heavy traces stay readable.
    pub fn render_span_tree(&self, max_children: usize) -> String {
        let events = self.events();
        let lanes: Vec<(u64, String)> = {
            let lanes = self.inner.lanes.lock();
            lanes.iter().map(|l| (l.tid, l.name.clone())).collect()
        };
        let mut out = String::new();
        for (tid, name) in lanes {
            let lane_events: Vec<&TraceEvent> = events.iter().filter(|e| e.tid == tid).collect();
            if lane_events.is_empty() {
                continue;
            }
            out.push_str(&format!("lane {tid} [{name}]\n"));
            // Children by parent id; events are start-sorted already.
            let ids: std::collections::HashSet<u64> =
                lane_events.iter().map(|e| e.span_id).collect();
            let roots: Vec<&TraceEvent> = lane_events
                .iter()
                .filter(|e| e.parent_id == 0 || !ids.contains(&e.parent_id))
                .copied()
                .collect();
            render_nodes(&mut out, &lane_events, &roots, 1, max_children);
        }
        out
    }
}

fn render_nodes(
    out: &mut String,
    all: &[&TraceEvent],
    nodes: &[&TraceEvent],
    depth: usize,
    max_children: usize,
) {
    for (i, e) in nodes.iter().enumerate() {
        if i == max_children {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&format!("… (+{} more)\n", nodes.len() - max_children));
            return;
        }
        out.push_str(&"  ".repeat(depth));
        out.push_str(&e.name);
        for (k, v) in &e.args {
            out.push_str(&format!(" {k}={}", v.to_string_compact()));
        }
        out.push_str(&format!(" ({})\n", crate::fmt_nanos(e.end_ns.saturating_sub(e.start_ns))));
        let children: Vec<&TraceEvent> =
            all.iter().filter(|c| c.parent_id == e.span_id).copied().collect();
        render_nodes(out, all, &children, depth + 1, max_children);
    }
}

/// One Chrome `"X"` (complete) event for a closed span.
fn chrome_event(e: &TraceEvent) -> json::Value {
    let ts = e.start_ns / 1_000;
    let dur = (e.end_ns / 1_000).saturating_sub(ts);
    let mut args = json::Value::object().with("trace_id", e.trace_id);
    for (k, v) in &e.args {
        args.set(k, v.clone());
    }
    json::Value::object()
        .with("ph", "X")
        .with("name", e.name.as_str())
        .with("cat", e.cat)
        .with("ts", ts)
        .with("dur", dur)
        .with("pid", 1u64)
        .with("tid", e.tid)
        .with("args", args)
}

/// Renders a slice of events (e.g. a flight-recorder dump) as a Chrome
/// trace-event array, sorted by start time.
pub(crate) fn chrome_events_json(events: &[TraceEvent]) -> json::Value {
    let mut sorted: Vec<&TraceEvent> = events.iter().collect();
    sorted.sort_by(|a, b| a.start_ns.cmp(&b.start_ns).then(b.end_ns.cmp(&a.end_ns)));
    let mut arr = json::Value::array();
    for e in sorted {
        arr.push(chrome_event(e));
    }
    arr
}

/// A small process-unique tag for the calling thread, used by
/// [`Tracer::thread_lane`] (dense, unlike the opaque `std::thread::ThreadId`).
fn thread_tag() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static TAG: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TAG.with(|t| *t)
}

/// Whether `ORION_TRACE` asks for tracing (`1`/`true`/`on`, like
/// `ORION_THREADS` this is read from the environment once at first use).
pub fn env_trace_enabled() -> bool {
    match std::env::var("ORION_TRACE") {
        Ok(v) => matches!(v.trim().to_ascii_lowercase().as_str(), "1" | "true" | "on"),
        Err(_) => false,
    }
}

/// Point-in-time accounting for one lane (see [`Tracer::lane_stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneStats {
    /// Lane display name.
    pub name: String,
    /// Lane id (the Chrome `tid`).
    pub tid: u64,
    /// Events currently held in the ring.
    pub events: u64,
    /// Events evicted because the ring was full.
    pub dropped: u64,
}

/// A handle onto one lane of a tracer: cheap to clone, `Send + Sync`, and
/// the only way to open spans.
#[derive(Debug, Clone)]
pub struct Lane {
    tracer: Arc<TracerInner>,
    lane: Arc<LaneInner>,
}

impl Lane {
    /// Opens a span. When the tracer is disabled this is one relaxed
    /// atomic load and returns an inert guard.
    pub fn span(&self, name: impl Into<String>, cat: &'static str) -> Span {
        if !self.tracer.enabled.load(Ordering::Relaxed) {
            return Span { active: None };
        }
        let span_id = self.tracer.next_span.fetch_add(1, Ordering::Relaxed) + 1;
        let parent_id = {
            let mut st = self.lane.state.lock();
            let p = st.open.last().copied().unwrap_or(0);
            st.open.push(span_id);
            p
        };
        Span {
            active: Some(ActiveSpan {
                tracer: Arc::clone(&self.tracer),
                lane: Arc::clone(&self.lane),
                name: name.into(),
                cat,
                span_id,
                parent_id,
                trace_id: self.tracer.current_trace.load(Ordering::Relaxed),
                start_ns: elapsed_ns(self.tracer.origin),
                args: Vec::new(),
            }),
        }
    }
}

fn elapsed_ns(origin: Instant) -> u64 {
    u64::try_from(origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[derive(Debug)]
struct ActiveSpan {
    tracer: Arc<TracerInner>,
    lane: Arc<LaneInner>,
    name: String,
    cat: &'static str,
    span_id: u64,
    parent_id: u64,
    trace_id: u64,
    start_ns: u64,
    args: Vec<(String, json::Value)>,
}

/// RAII span guard: records one [`TraceEvent`] when dropped. Inert (free)
/// when the tracer was disabled at open time.
#[derive(Debug)]
#[must_use = "a span records when dropped; binding it to _ closes it immediately"]
pub struct Span {
    active: Option<ActiveSpan>,
}

impl Span {
    /// An inert span, for call sites that trace conditionally.
    pub fn noop() -> Span {
        Span { active: None }
    }

    /// Whether this span will record an event.
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }

    /// Attaches an argument (exported under Chrome `args`). No-op when
    /// inert.
    pub fn arg(&mut self, key: &str, value: impl Into<json::Value>) {
        if let Some(a) = &mut self.active {
            a.args.push((key.to_string(), value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        let end_ns = elapsed_ns(a.tracer.origin);
        let event = TraceEvent {
            name: a.name,
            cat: a.cat,
            tid: a.lane.tid,
            span_id: a.span_id,
            parent_id: a.parent_id,
            trace_id: a.trace_id,
            start_ns: a.start_ns,
            end_ns,
            args: a.args,
        };
        if a.tracer.feed_flight {
            crate::recorder::record(&event);
        }
        let mut st = a.lane.state.lock();
        if let Some(pos) = st.open.iter().rposition(|&id| id == a.span_id) {
            st.open.truncate(pos);
        }
        if st.ring.len() >= a.tracer.capacity {
            st.ring.pop_front();
            st.dropped += 1;
        }
        st.ring.push_back(event);
    }
}

/// Validates a parsed Chrome trace-event document: a `traceEvents` array
/// whose `"X"` events all carry `ph`/`ts`/`dur`/`pid`/`tid`/`name`, with
/// `ts` monotone non-decreasing over the array and spans well-nested per
/// `tid` (each span fits inside the enclosing open span). Used by the
/// golden shape test and the `trace_check` CI binary.
pub fn validate_chrome_trace(doc: &json::Value) -> Result<(), String> {
    let Some(events) = doc.get("traceEvents") else {
        return Err("missing top-level \"traceEvents\" key".into());
    };
    let json::Value::Array(items) = events else {
        return Err("\"traceEvents\" is not an array".into());
    };
    let mut last_ts: Option<u64> = None;
    // Per-tid stack of (start, end) for nesting checks.
    let mut stacks: std::collections::HashMap<u64, Vec<(u64, u64)>> = Default::default();
    let mut n_complete = 0usize;
    for (i, item) in items.iter().enumerate() {
        let ph = item
            .get("ph")
            .and_then(json::Value::as_str)
            .ok_or_else(|| format!("event {i}: missing \"ph\""))?;
        if ph != "X" {
            continue;
        }
        n_complete += 1;
        let field = |key: &str| -> Result<u64, String> {
            item.get(key)
                .and_then(json::Value::as_u64)
                .ok_or_else(|| format!("event {i}: missing or non-numeric \"{key}\""))
        };
        if item.get("name").and_then(json::Value::as_str).is_none() {
            return Err(format!("event {i}: missing \"name\""));
        }
        let (ts, dur, _pid, tid) = (field("ts")?, field("dur")?, field("pid")?, field("tid")?);
        if let Some(prev) = last_ts {
            if ts < prev {
                return Err(format!("event {i}: ts {ts} decreases below {prev}"));
            }
        }
        last_ts = Some(ts);
        let stack = stacks.entry(tid).or_default();
        while stack.last().is_some_and(|&(_, end)| end <= ts) {
            stack.pop();
        }
        if let Some(&(p_ts, p_end)) = stack.last() {
            if ts + dur > p_end {
                return Err(format!(
                    "event {i}: span [{ts}, {}] escapes enclosing span [{p_ts}, {p_end}] on tid {tid}",
                    ts + dur
                ));
            }
        }
        stack.push((ts, ts + dur));
    }
    if n_complete == 0 {
        return Err("no \"X\" (complete) events in trace".into());
    }
    Ok(())
}

/// Validates a flight-recorder dump document (`flight-*.json`): the same
/// Chrome trace-event checks as [`validate_chrome_trace`], plus the
/// recorder's own contract — a non-empty top-level `"reason"` string
/// saying why the dump was taken. Used by the `trace_check` CI binary and
/// the crash-matrix spot-check.
pub fn validate_flight_dump(doc: &json::Value) -> Result<(), String> {
    match doc.get("reason").and_then(json::Value::as_str) {
        None => return Err("missing top-level \"reason\" string".into()),
        Some("") => return Err("empty \"reason\"".into()),
        Some(_) => {}
    }
    validate_chrome_trace(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        let t = Tracer::new();
        let lane = t.lane("main");
        {
            let mut s = lane.span("work", "test");
            s.arg("k", 1u64);
            assert!(!s.is_recording());
        }
        assert!(t.events().is_empty());
    }

    #[test]
    fn spans_nest_and_carry_ids() {
        let t = Tracer::new();
        t.set_enabled(true);
        let q = t.begin_trace();
        let lane = t.lane("main");
        {
            let _outer = lane.span("outer", "test");
            let _inner = lane.span("inner", "test");
        }
        let events = t.events();
        assert_eq!(events.len(), 2);
        let outer = events.iter().find(|e| e.name == "outer").unwrap();
        let inner = events.iter().find(|e| e.name == "inner").unwrap();
        assert_eq!(outer.parent_id, 0);
        assert_eq!(inner.parent_id, outer.span_id);
        assert_eq!(outer.trace_id, q);
        assert!(inner.start_ns >= outer.start_ns && inner.end_ns <= outer.end_ns);
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let t = Tracer::with_capacity(4);
        t.set_enabled(true);
        let lane = t.lane("main");
        for i in 0..10 {
            let _s = lane.span(format!("s{i}"), "test");
        }
        assert_eq!(t.events().len(), 4);
        assert_eq!(t.dropped(), 6);
        t.clear();
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn export_validates_and_names_lanes() {
        let t = Tracer::new();
        t.set_enabled(true);
        let a = t.lane("alpha");
        let b = t.lane("beta");
        {
            let mut s = a.span("root", "test");
            s.arg("items", 3u64);
            let _c = a.span("child", "test");
            let _o = b.span("other", "test");
        }
        let doc = t.export_chrome_json();
        validate_chrome_trace(&doc).unwrap();
        let text = doc.to_string_compact();
        assert!(text.contains("\"thread_name\""), "{text}");
        assert!(text.contains("\"alpha\"") && text.contains("\"beta\""), "{text}");
        assert!(text.contains("\"items\":3"), "{text}");
        // Round-trips through the parser.
        let parsed = json::parse(&doc.to_string_pretty()).unwrap();
        validate_chrome_trace(&parsed).unwrap();
    }

    #[test]
    fn span_tree_renders_nesting_and_caps_children() {
        let t = Tracer::new();
        t.set_enabled(true);
        let lane = t.lane("exec");
        {
            let _root = lane.span("query", "exec");
            for i in 0..5 {
                let _m = lane.span(format!("morsel{i}"), "exec");
            }
        }
        let tree = t.render_span_tree(3);
        assert!(tree.contains("lane 1 [exec]"), "{tree}");
        assert!(tree.contains("query"), "{tree}");
        assert!(tree.contains("morsel0"), "{tree}");
        assert!(tree.contains("(+2 more)"), "{tree}");
    }

    #[test]
    fn unique_lanes_get_fresh_tids_and_thread_lane_reuses() {
        let t = Tracer::new();
        t.set_enabled(true);
        let a = t.unique_lane("worker-0");
        let b = t.unique_lane("worker-0");
        {
            let _sa = a.span("x", "test");
        }
        {
            let _sb = b.span("y", "test");
        }
        let events = t.events();
        assert_eq!(events.len(), 2);
        assert_ne!(events[0].tid, events[1].tid, "unique lanes have distinct tids");
        let l1 = t.thread_lane("exec");
        let l2 = t.thread_lane("exec");
        {
            let _s1 = l1.span("p", "test");
            let _s2 = l2.span("c", "test");
        }
        let events = t.events();
        let p = events.iter().find(|e| e.name == "p").unwrap();
        let c = events.iter().find(|e| e.name == "c").unwrap();
        assert_eq!(p.tid, c.tid, "same thread shares one lane");
        assert_eq!(c.parent_id, p.span_id);
    }

    #[test]
    fn concurrent_unique_lanes_validate() {
        // Overlapping spans from concurrent threads must not break Chrome
        // nesting because every worker records on its own lane.
        let t = Tracer::new();
        t.set_enabled(true);
        std::thread::scope(|s| {
            for w in 0..4 {
                let lane = t.unique_lane(&format!("worker-{w}"));
                s.spawn(move || {
                    for i in 0..20 {
                        let mut sp = lane.span("morsel", "exec");
                        sp.arg("i", i as u64);
                    }
                });
            }
        });
        validate_chrome_trace(&t.export_chrome_json()).unwrap();
        assert_eq!(t.events().len(), 80);
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        // Missing traceEvents.
        assert!(validate_chrome_trace(&json::Value::object()).is_err());
        // ts going backwards.
        let mut arr = json::Value::array();
        for ts in [10u64, 5] {
            arr.push(
                json::Value::object()
                    .with("ph", "X")
                    .with("name", "a")
                    .with("ts", ts)
                    .with("dur", 1u64)
                    .with("pid", 1u64)
                    .with("tid", 1u64),
            );
        }
        let doc = json::Value::object().with("traceEvents", arr);
        assert!(validate_chrome_trace(&doc).unwrap_err().contains("decreases"));
        // Child escaping its parent.
        let mut arr = json::Value::array();
        for (ts, dur) in [(0u64, 10u64), (5, 20)] {
            arr.push(
                json::Value::object()
                    .with("ph", "X")
                    .with("name", "a")
                    .with("ts", ts)
                    .with("dur", dur)
                    .with("pid", 1u64)
                    .with("tid", 1u64),
            );
        }
        let doc = json::Value::object().with("traceEvents", arr);
        assert!(validate_chrome_trace(&doc).unwrap_err().contains("escapes"));
    }

    #[test]
    fn lane_stats_track_events_and_drops() {
        let t = Tracer::with_capacity(2);
        t.set_enabled(true);
        let lane = t.lane("exec");
        for i in 0..5 {
            let _s = lane.span(format!("s{i}"), "test");
        }
        let stats = t.lane_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].name, "exec");
        assert_eq!(stats[0].tid, 1);
        assert_eq!(stats[0].events, 2);
        assert_eq!(stats[0].dropped, 3);
    }

    #[test]
    fn flight_dump_validator_requires_reason() {
        let t = Tracer::new();
        t.set_enabled(true);
        {
            let _s = t.lane("main").span("work", "test");
        }
        let trace = t.export_chrome_json();
        // A valid trace without a reason is not a valid flight dump.
        assert!(validate_flight_dump(&trace).unwrap_err().contains("reason"));
        let dump = trace.clone().with("reason", "panic: boom");
        validate_flight_dump(&dump).unwrap();
        let empty = trace.with("reason", "");
        assert!(validate_flight_dump(&empty).is_err());
    }

    #[test]
    fn truncation_preserves_nesting_in_export() {
        // A child fully inside its parent in nanoseconds must stay inside
        // after the floor division to microseconds.
        let t = Tracer::new();
        t.set_enabled(true);
        let lane = t.lane("main");
        {
            let _p = lane.span("parent", "test");
            for _ in 0..50 {
                let _c = lane.span("child", "test");
            }
        }
        validate_chrome_trace(&t.export_chrome_json()).unwrap();
    }
}
