//! Moving-object workload: objects with jointly distributed 2-D position
//! uncertainty (the paper's motivating example for intra-tuple correlation,
//! Section II-A).

use orion_core::prelude::*;
use orion_pdf::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator for 2-D moving objects on a `[0, extent]²` field.
pub struct MovingObjectsWorkload {
    rng: StdRng,
    /// Side length of the square field.
    pub extent: f64,
    /// Grid resolution for each object's joint position pdf.
    pub grid_bins: usize,
}

impl MovingObjectsWorkload {
    /// A deterministic workload from a seed.
    pub fn new(seed: u64) -> Self {
        MovingObjectsWorkload { rng: StdRng::seed_from_u64(seed), extent: 100.0, grid_bins: 16 }
    }

    /// Builds a correlated 2-D position pdf: the object moves along a
    /// heading, so x- and y-uncertainty are correlated (mass concentrated
    /// near a diagonal band of the local grid).
    pub fn position_joint(&mut self) -> (f64, f64, JointPdf) {
        let cx = self.rng.gen_range(5.0..self.extent - 5.0);
        let cy = self.rng.gen_range(5.0..self.extent - 5.0);
        let spread = self.rng.gen_range(1.0..4.0);
        let slope: f64 = self.rng.gen_range(-1.0..1.0);
        let bins = self.grid_bins;
        let dims = vec![
            GridDim::over(cx - spread, cx + spread, bins).expect("valid axis"),
            GridDim::over(cy - spread, cy + spread, bins).expect("valid axis"),
        ];
        // Band density: Gaussian fall-off from the heading line.
        let grid = JointGrid::from_density(dims, 1.0, |p| {
            let dx = p[0] - cx;
            let dy = p[1] - cy;
            let dist = dy - slope * dx;
            (-dist * dist / (0.5 * spread * spread)).exp()
        })
        .expect("valid grid");
        (cx, cy, JointPdf::from_grid(grid))
    }

    /// Builds a relation `objects(oid, x, y)` with `n` objects whose (x, y)
    /// are jointly distributed, registering histories in `reg`.
    pub fn relation(&mut self, n: usize, reg: &mut HistoryRegistry) -> Relation {
        let schema = ProbSchema::new(
            vec![
                ("oid", ColumnType::Int, false),
                ("x", ColumnType::Real, true),
                ("y", ColumnType::Real, true),
            ],
            vec![vec!["x", "y"]],
        )
        .expect("valid schema");
        let mut rel = Relation::new("objects", schema);
        for oid in 1..=n as i64 {
            let (_, _, joint) = self.position_joint();
            rel.insert(reg, &[("oid", Value::Int(oid))], vec![(vec!["x", "y"], joint)])
                .expect("valid insert");
        }
        rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joint_positions_are_correlated() {
        let mut w = MovingObjectsWorkload::new(5);
        let (cx, cy, j) = w.position_joint();
        assert_eq!(j.arity(), 2);
        assert!((j.mass() - 1.0).abs() < 1e-9);
        // The expectation sits near the center.
        assert!((j.expected(0).unwrap() - cx).abs() < 1.0);
        assert!((j.expected(1).unwrap() - cy).abs() < 1.0);
    }

    #[test]
    fn relation_builds_with_joint_nodes() {
        let mut w = MovingObjectsWorkload::new(11);
        let mut reg = HistoryRegistry::new();
        let rel = w.relation(4, &mut reg);
        assert_eq!(rel.len(), 4);
        assert_eq!(reg.len(), 4, "one base pdf per object");
        for t in &rel.tuples {
            assert_eq!(t.nodes.len(), 1, "x and y share one dependency set");
            assert_eq!(t.nodes[0].dims.len(), 2);
        }
    }

    #[test]
    fn range_selection_on_x_floors_joint() {
        let mut w = MovingObjectsWorkload::new(3);
        let mut reg = HistoryRegistry::new();
        let rel = w.relation(6, &mut reg);
        let out = orion_core::select::select(
            &rel,
            &Predicate::cmp("x", CmpOp::Lt, 50.0),
            &mut reg,
            &ExecOptions::default(),
        )
        .unwrap();
        // Every surviving tuple's mass equals P(x < 50) for that object.
        for (i, t) in out.tuples.iter().enumerate() {
            let m = t.nodes[0].mass();
            assert!(m > 0.0 && m <= 1.0 + 1e-9, "tuple {i} mass {m}");
        }
    }
}
