//! Data-cleaning workload: dirty readings with discrete alternative values
//! — the paper's Section I motivation "multiple alternatives for an
//! incorrect value".

use orion_core::prelude::*;
use orion_pdf::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator for records whose corrupted fields have a small set of
/// candidate repairs with confidences.
pub struct CleaningWorkload {
    rng: StdRng,
    /// Maximum number of alternative repairs per dirty value.
    pub max_alternatives: usize,
}

impl CleaningWorkload {
    /// A deterministic workload from a seed.
    pub fn new(seed: u64) -> Self {
        CleaningWorkload { rng: StdRng::seed_from_u64(seed), max_alternatives: 4 }
    }

    /// A discrete pdf over candidate repairs around a true value.
    pub fn repair_pdf(&mut self, truth: f64) -> Pdf1 {
        let k = self.rng.gen_range(2..=self.max_alternatives);
        // Random positive weights, normalized; candidates near the truth.
        let mut weights: Vec<f64> = (0..k).map(|_| self.rng.gen_range(0.2..1.0)).collect();
        let total: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= total;
        }
        let mut points = Vec::with_capacity(k);
        let mut used = std::collections::BTreeSet::new();
        for w in weights {
            let mut off = self.rng.gen_range(-3i64..=3);
            while !used.insert(off) {
                off = self.rng.gen_range(-10i64..=10);
            }
            points.push((truth + off as f64, w));
        }
        Pdf1::discrete(points).expect("valid discrete pdf")
    }

    /// Builds a relation `dirty(rid, amount)` with `n` records whose
    /// amounts carry discrete repair uncertainty.
    pub fn relation(&mut self, n: usize, reg: &mut HistoryRegistry) -> Relation {
        let schema = ProbSchema::new(
            vec![("rid", ColumnType::Int, false), ("amount", ColumnType::Real, true)],
            vec![],
        )
        .expect("valid schema");
        let mut rel = Relation::new("dirty", schema);
        for rid in 1..=n as i64 {
            let truth = self.rng.gen_range(10.0..1000.0_f64).round();
            let pdf = self.repair_pdf(truth);
            rel.insert_simple(reg, &[("rid", Value::Int(rid))], &[("amount", pdf)])
                .expect("valid insert");
        }
        rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repair_pdfs_are_normalized_discrete() {
        let mut w = CleaningWorkload::new(21);
        for _ in 0..50 {
            let p = w.repair_pdf(100.0);
            assert!((p.mass() - 1.0).abs() < 1e-9);
            assert!(p.is_discrete());
        }
    }

    #[test]
    fn relation_supports_pws_enumeration() {
        let mut w = CleaningWorkload::new(8);
        let mut reg = HistoryRegistry::new();
        let rel = w.relation(3, &mut reg);
        assert_eq!(rel.len(), 3);
        // Discrete base data enumerates under PWS.
        for t in &rel.tuples {
            assert!(t.nodes[0].joint.enumerate().is_ok());
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut r1 = HistoryRegistry::new();
        let mut r2 = HistoryRegistry::new();
        let a = CleaningWorkload::new(3).relation(5, &mut r1);
        let b = CleaningWorkload::new(3).relation(5, &mut r2);
        for (x, y) in a.tuples.iter().zip(&b.tuples) {
            assert_eq!(x.certain, y.certain);
            assert_eq!(x.nodes[0].joint, y.nodes[0].joint);
        }
    }
}
