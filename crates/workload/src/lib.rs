//! # orion-workload — synthetic workloads from the ICDE 2008 evaluation
//!
//! Seeded generators reproducing the paper's Section IV datasets:
//!
//! * **Sensor readings** `Readings(rid, value)` — Gaussian pdfs whose means
//!   are uniform on `[0, 100]` and whose standard deviations are normal
//!   with `mu = 2`, `sigma = 0.5`.
//! * **Range queries** — midpoints uniform on `[0, 100]`, interval lengths
//!   normal with `mu = 10`, `sigma = 3`.
//!
//! Plus the workloads used by the examples: 2-D moving objects (jointly
//! distributed x/y) and data-cleaning alternatives (discrete pdfs).

pub mod cleaning;
pub mod moving;
pub mod sensors;

pub use cleaning::CleaningWorkload;
pub use moving::MovingObjectsWorkload;
pub use sensors::{RangeQuery, SensorReading, SensorWorkload};
