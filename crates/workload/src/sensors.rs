//! The paper's Section IV evaluation workload: random "sensor readings"
//! with Gaussian uncertainty, and random range queries.

use orion_pdf::prelude::{Interval, Pdf1};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr_lite::Normal;

/// A minimal Box–Muller normal sampler (avoids the rand_distr dependency).
mod rand_distr_lite {
    use rand::Rng;

    /// Normal distribution sampler.
    pub struct Normal {
        pub mean: f64,
        pub sd: f64,
    }

    impl Normal {
        /// Samples using the Box–Muller transform.
        pub fn sample(&self, rng: &mut impl Rng) -> f64 {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            self.mean + self.sd * z
        }
    }
}

/// One uncertain sensor reading.
#[derive(Debug, Clone)]
pub struct SensorReading {
    /// Reading id.
    pub rid: i64,
    /// Mean of the Gaussian (uniform on `[0, 100]`).
    pub mean: f64,
    /// Standard deviation (normal, `mu = 2`, `sigma = 0.5`, clamped > 0).
    pub sd: f64,
}

impl SensorReading {
    /// The exact symbolic pdf of this reading.
    pub fn pdf(&self) -> Pdf1 {
        Pdf1::gaussian(self.mean, self.sd * self.sd).expect("valid parameters")
    }
}

/// One range query over the value domain.
#[derive(Debug, Clone, Copy)]
pub struct RangeQuery {
    /// Query interval lower bound.
    pub lo: f64,
    /// Query interval upper bound.
    pub hi: f64,
}

impl RangeQuery {
    /// The query interval.
    pub fn interval(&self) -> Interval {
        Interval::new(self.lo, self.hi)
    }
}

/// Seeded generator for the sensor workload.
pub struct SensorWorkload {
    rng: StdRng,
    next_rid: i64,
}

impl SensorWorkload {
    /// A deterministic workload from a seed.
    pub fn new(seed: u64) -> Self {
        SensorWorkload { rng: StdRng::seed_from_u64(seed), next_rid: 1 }
    }

    /// Generates one reading: mean ~ U(0, 100), sd ~ N(2, 0.5) clamped to a
    /// sane positive range.
    pub fn reading(&mut self) -> SensorReading {
        let mean = self.rng.gen_range(0.0..100.0);
        let sd = Normal { mean: 2.0, sd: 0.5 }.sample(&mut self.rng).clamp(0.25, 5.0);
        let rid = self.next_rid;
        self.next_rid += 1;
        SensorReading { rid, mean, sd }
    }

    /// Generates `n` readings.
    pub fn readings(&mut self, n: usize) -> Vec<SensorReading> {
        (0..n).map(|_| self.reading()).collect()
    }

    /// Generates one range query: midpoint ~ U(0, 100), length ~ N(10, 3)
    /// clamped positive.
    pub fn range_query(&mut self) -> RangeQuery {
        let mid = self.rng.gen_range(0.0..100.0);
        let len = Normal { mean: 10.0, sd: 3.0 }.sample(&mut self.rng).clamp(0.5, 30.0);
        RangeQuery { lo: mid - len / 2.0, hi: mid + len / 2.0 }
    }

    /// Generates `n` range queries.
    pub fn range_queries(&mut self, n: usize) -> Vec<RangeQuery> {
        (0..n).map(|_| self.range_query()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = SensorWorkload::new(42).readings(10);
        let b = SensorWorkload::new(42).readings(10);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.rid, y.rid);
            assert_eq!(x.mean, y.mean);
            assert_eq!(x.sd, y.sd);
        }
        let c = SensorWorkload::new(43).readings(10);
        assert!(a.iter().zip(&c).any(|(x, y)| x.mean != y.mean));
    }

    #[test]
    fn reading_parameters_in_paper_ranges() {
        let readings = SensorWorkload::new(7).readings(2000);
        let mut mean_sum = 0.0;
        let mut sd_sum = 0.0;
        for r in &readings {
            assert!((0.0..100.0).contains(&r.mean));
            assert!(r.sd > 0.0);
            mean_sum += r.mean;
            sd_sum += r.sd;
        }
        let n = readings.len() as f64;
        assert!((mean_sum / n - 50.0).abs() < 3.0, "means uniform on [0,100]");
        assert!((sd_sum / n - 2.0).abs() < 0.1, "sds normal around 2");
    }

    #[test]
    fn query_parameters_in_paper_ranges() {
        let mut w = SensorWorkload::new(9);
        let qs = w.range_queries(2000);
        let mut len_sum = 0.0;
        for q in &qs {
            assert!(q.lo < q.hi);
            len_sum += q.hi - q.lo;
        }
        assert!((len_sum / qs.len() as f64 - 10.0).abs() < 0.5, "lengths around 10");
    }

    #[test]
    fn pdf_construction() {
        let r = SensorReading { rid: 1, mean: 20.0, sd: 5.0_f64.sqrt() };
        let p = r.pdf();
        assert!((p.expected_value().unwrap() - 20.0).abs() < 1e-12);
        assert!((p.range_prob(&RangeQuery { lo: 0.0, hi: 100.0 }.interval()) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rids_are_sequential() {
        let rs = SensorWorkload::new(1).readings(5);
        assert_eq!(rs.iter().map(|r| r.rid).collect::<Vec<_>>(), vec![1, 2, 3, 4, 5]);
    }
}
