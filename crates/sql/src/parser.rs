//! Recursive-descent parser for the Orion SQL dialect.

use crate::ast::*;
use crate::error::{Result, SqlError};
use crate::token::{lex, Token};
use orion_core::prelude::{CmpOp, ColumnType};

/// Parses one statement (a trailing semicolon is optional).
pub fn parse(input: &str) -> Result<Statement> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_semicolons();
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token, what: &str) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn eat_semicolons(&mut self) {
        while self.eat(&Token::Semicolon) {}
    }

    fn expect_eof(&mut self) -> Result<()> {
        if self.peek() == &Token::Eof {
            Ok(())
        } else {
            Err(SqlError::Parse(format!("trailing input: {:?}", self.peek())))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.next() {
            Token::Ident(s) => Ok(s),
            other => Err(SqlError::Parse(format!("expected {what}, found {other:?}"))),
        }
    }

    fn number(&mut self, what: &str) -> Result<f64> {
        let neg = self.eat(&Token::Minus);
        match self.next() {
            Token::Number(n) => Ok(if neg { -n } else { n }),
            other => Err(SqlError::Parse(format!("expected {what}, found {other:?}"))),
        }
    }

    /// Swallows the optional `TRANSACTION` / `WORK` noise word after
    /// `BEGIN` / `COMMIT` / `ROLLBACK`.
    fn eat_txn_noise(&mut self) {
        if !self.eat_kw("transaction") {
            self.eat_kw("work");
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.eat_kw("explain") {
            let analyze = self.eat_kw("analyze");
            let trace = !analyze && self.eat_kw("trace");
            let inner = self.statement()?;
            return Ok(Statement::Explain { analyze, trace, inner: Box::new(inner) });
        }
        if self.eat_kw("create") {
            if self.eat_kw("index") {
                self.create_index()
            } else {
                self.create_table()
            }
        } else if self.eat_kw("insert") {
            self.insert()
        } else if self.eat_kw("select") {
            self.select()
        } else if self.eat_kw("update") {
            let table = self.ident("table name")?;
            self.expect_kw("set")?;
            let mut sets = Vec::new();
            loop {
                let col = self.ident("column name")?;
                self.expect(&Token::Eq, "'='")?;
                sets.push((col, self.insert_value()?));
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            let filter = if self.eat_kw("where") { Some(self.pred()?) } else { None };
            Ok(Statement::Update { table, sets, filter })
        } else if self.eat_kw("delete") {
            self.expect_kw("from")?;
            let table = self.ident("table name")?;
            let filter = if self.eat_kw("where") { Some(self.pred()?) } else { None };
            Ok(Statement::Delete { table, filter })
        } else if self.eat_kw("drop") {
            if self.eat_kw("index") {
                let name = self.ident("index name")?;
                Ok(Statement::DropIndex { name })
            } else {
                self.expect_kw("table")?;
                let name = self.ident("table name")?;
                Ok(Statement::DropTable { name })
            }
        } else if self.eat_kw("analyze") {
            let table = self.ident("table name")?;
            Ok(Statement::Analyze { table })
        } else if self.eat_kw("begin") {
            self.eat_txn_noise();
            Ok(Statement::Begin)
        } else if self.eat_kw("commit") {
            self.eat_txn_noise();
            Ok(Statement::Commit)
        } else if self.eat_kw("rollback") {
            self.eat_txn_noise();
            Ok(Statement::Rollback)
        } else {
            Err(SqlError::Parse(format!("unknown statement start: {:?}", self.peek())))
        }
    }

    fn column_type(&mut self) -> Result<ColumnType> {
        let t = self.ident("column type")?;
        match t.to_ascii_lowercase().as_str() {
            "int" | "integer" | "bigint" => Ok(ColumnType::Int),
            "real" | "float" | "double" => Ok(ColumnType::Real),
            "text" | "varchar" | "string" => Ok(ColumnType::Text),
            "bool" | "boolean" => Ok(ColumnType::Bool),
            other => Err(SqlError::Parse(format!("unknown type '{other}'"))),
        }
    }

    fn create_table(&mut self) -> Result<Statement> {
        self.expect_kw("table")?;
        let name = self.ident("table name")?;
        self.expect(&Token::LParen, "'('")?;
        let mut columns = Vec::new();
        let mut correlated = Vec::new();
        loop {
            if self.eat_kw("correlated") {
                self.expect(&Token::LParen, "'('")?;
                let mut group = Vec::new();
                loop {
                    group.push(self.ident("column name")?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen, "')'")?;
                correlated.push(group);
            } else {
                let col = self.ident("column name")?;
                let ty = self.column_type()?;
                let uncertain = self.eat_kw("uncertain");
                columns.push(ColumnDef { name: col, ty, uncertain });
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen, "')'")?;
        Ok(Statement::CreateTable { name, columns, correlated })
    }

    fn create_index(&mut self) -> Result<Statement> {
        let name = self.ident("index name")?;
        self.expect_kw("on")?;
        let table = self.ident("table name")?;
        self.expect(&Token::LParen, "'('")?;
        let column = self.ident("column name")?;
        self.expect(&Token::RParen, "')'")?;
        let kind = if self.eat_kw("using") { Some(self.ident("index kind")?) } else { None };
        Ok(Statement::CreateIndex { name, table, column, kind })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("into")?;
        let table = self.ident("table name")?;
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LParen, "'('")?;
            let mut row = Vec::new();
            loop {
                row.push(self.insert_value()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen, "')'")?;
            rows.push(row);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn insert_value(&mut self) -> Result<InsertValue> {
        match self.peek().clone() {
            Token::Number(_) | Token::Minus => Ok(InsertValue::Number(self.number("number")?)),
            Token::Str(s) => {
                self.next();
                Ok(InsertValue::Text(s))
            }
            Token::Ident(id) => {
                let lower = id.to_ascii_lowercase();
                match lower.as_str() {
                    "null" => {
                        self.next();
                        Ok(InsertValue::Null)
                    }
                    "true" => {
                        self.next();
                        Ok(InsertValue::Bool(true))
                    }
                    "false" => {
                        self.next();
                        Ok(InsertValue::Bool(false))
                    }
                    _ => Ok(InsertValue::Pdf(self.pdf_expr()?)),
                }
            }
            other => Err(SqlError::Parse(format!("expected value, found {other:?}"))),
        }
    }

    fn pdf_expr(&mut self) -> Result<PdfExpr> {
        let name = self.ident("pdf constructor")?.to_ascii_lowercase();
        self.expect(&Token::LParen, "'('")?;
        let expr = match name.as_str() {
            "gaussian" | "gaus" | "normal" => {
                let m = self.number("mean")?;
                self.expect(&Token::Comma, "','")?;
                let v = self.number("variance")?;
                PdfExpr::Gaussian(m, v)
            }
            "uniform" | "unif" => {
                let a = self.number("lo")?;
                self.expect(&Token::Comma, "','")?;
                let b = self.number("hi")?;
                PdfExpr::Uniform(a, b)
            }
            "exponential" | "expo" => PdfExpr::Exponential(self.number("rate")?),
            "poisson" | "pois" => PdfExpr::Poisson(self.number("lambda")?),
            "binomial" | "binom" => {
                let n = self.number("n")?;
                self.expect(&Token::Comma, "','")?;
                let p = self.number("p")?;
                if n < 1.0 || n.fract() != 0.0 {
                    return Err(SqlError::Parse("BINOMIAL n must be a positive integer".into()));
                }
                PdfExpr::Binomial(n as u64, p)
            }
            "bernoulli" | "bern" => PdfExpr::Bernoulli(self.number("p")?),
            "geometric" | "geom" => PdfExpr::Geometric(self.number("p")?),
            "discrete" => {
                let mut pts = Vec::new();
                loop {
                    let v = self.number("value")?;
                    self.expect(&Token::Colon, "':'")?;
                    let p = self.number("probability")?;
                    pts.push((v, p));
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                PdfExpr::Discrete(pts)
            }
            "histogram" | "hist" => {
                let lo = self.number("lo")?;
                self.expect(&Token::Comma, "','")?;
                let width = self.number("width")?;
                let mut masses = Vec::new();
                while self.eat(&Token::Comma) {
                    masses.push(self.number("mass")?);
                }
                PdfExpr::Histogram { lo, width, masses }
            }
            "joint" => {
                let mut pts = Vec::new();
                loop {
                    self.expect(&Token::LParen, "'('")?;
                    let mut v = Vec::new();
                    loop {
                        v.push(self.number("coordinate")?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                    self.expect(&Token::RParen, "')'")?;
                    self.expect(&Token::Colon, "':'")?;
                    let p = self.number("probability")?;
                    pts.push((v, p));
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                PdfExpr::Joint(pts)
            }
            other => return Err(SqlError::Parse(format!("unknown pdf constructor '{other}'"))),
        };
        self.expect(&Token::RParen, "')'")?;
        Ok(expr)
    }

    fn select(&mut self) -> Result<Statement> {
        let distinct = self.eat_kw("distinct");
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect_kw("from")?;
        let from = self.from_clause()?;
        let filter = if self.eat_kw("where") { Some(self.pred()?) } else { None };
        let order_by = if self.eat_kw("order") {
            self.expect_kw("by")?;
            let col = self.ident("column name")?;
            let desc = if self.eat_kw("desc") {
                true
            } else {
                self.eat_kw("asc");
                false
            };
            Some((col, desc))
        } else {
            None
        };
        let limit = if self.eat_kw("limit") {
            let n = self.number("limit count")?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(SqlError::Parse("LIMIT must be a non-negative integer".into()));
            }
            Some(n as usize)
        } else {
            None
        };
        Ok(Statement::Select { items, from, filter, distinct, order_by, limit })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        let id = self.ident("column or function")?;
        let lower = id.to_ascii_lowercase();
        // Function names are only functions when a '(' follows; otherwise
        // they are ordinary column references (so columns named `median`,
        // `prob`, ... keep working).
        if self.peek() != &Token::LParen {
            return Ok(SelectItem::Column(id));
        }
        match lower.as_str() {
            "expected" => {
                self.expect(&Token::LParen, "'('")?;
                let col = self.ident("column")?;
                self.expect(&Token::RParen, "')'")?;
                Ok(SelectItem::Expected(col))
            }
            "prob" => {
                self.expect(&Token::LParen, "'('")?;
                let inner = self.pred()?;
                self.expect(&Token::RParen, "')'")?;
                Ok(SelectItem::ProbOf(inner))
            }
            "variance" => {
                self.expect(&Token::LParen, "'('")?;
                let col = self.ident("column")?;
                self.expect(&Token::RParen, "')'")?;
                Ok(SelectItem::Variance(col))
            }
            "median" => {
                self.expect(&Token::LParen, "'('")?;
                let col = self.ident("column")?;
                self.expect(&Token::RParen, "')'")?;
                Ok(SelectItem::Median(col))
            }
            "quantile" => {
                self.expect(&Token::LParen, "'('")?;
                let col = self.ident("column")?;
                self.expect(&Token::Comma, "','")?;
                let q = self.number("quantile level")?;
                self.expect(&Token::RParen, "')'")?;
                if !(0.0..=1.0).contains(&q) {
                    return Err(SqlError::Parse("QUANTILE level must be in [0, 1]".into()));
                }
                Ok(SelectItem::Quantile(col, q))
            }
            "esum" => {
                self.expect(&Token::LParen, "'('")?;
                let col = self.ident("column")?;
                self.expect(&Token::RParen, "')'")?;
                Ok(SelectItem::SumAgg(col))
            }
            "ecount" => {
                self.expect(&Token::LParen, "'('")?;
                self.expect(&Token::Star, "'*'")?;
                self.expect(&Token::RParen, "')'")?;
                Ok(SelectItem::CountAgg)
            }
            "eavg" => {
                self.expect(&Token::LParen, "'('")?;
                let col = self.ident("column")?;
                self.expect(&Token::RParen, "')'")?;
                Ok(SelectItem::AvgAgg(col))
            }
            _ => Ok(SelectItem::Column(id)),
        }
    }

    #[allow(clippy::wrong_self_convention)]
    fn from_clause(&mut self) -> Result<FromClause> {
        let left = self.ident("table name")?;
        if self.eat_kw("join") {
            let right = self.ident("table name")?;
            let on = if self.eat_kw("on") { Some(self.pred()?) } else { None };
            return Ok(FromClause::Join { left, right, on });
        }
        if self.eat(&Token::Comma) {
            let right = self.ident("table name")?;
            return Ok(FromClause::Join { left, right, on: None });
        }
        Ok(FromClause::Table(left))
    }

    /// `pred := or_term`
    fn pred(&mut self) -> Result<Pred> {
        self.or_pred()
    }

    fn or_pred(&mut self) -> Result<Pred> {
        let mut parts = vec![self.and_pred()?];
        while self.eat_kw("or") {
            parts.push(self.and_pred()?);
        }
        Ok(if parts.len() == 1 { parts.pop().expect("one part") } else { Pred::Or(parts) })
    }

    fn and_pred(&mut self) -> Result<Pred> {
        let mut parts = vec![self.atom_pred()?];
        while self.eat_kw("and") {
            parts.push(self.atom_pred()?);
        }
        Ok(if parts.len() == 1 { parts.pop().expect("one part") } else { Pred::And(parts) })
    }

    fn atom_pred(&mut self) -> Result<Pred> {
        if self.eat_kw("not") {
            return Ok(Pred::Not(Box::new(self.atom_pred()?)));
        }
        if self.peek().is_kw("prob") {
            self.next();
            self.expect(&Token::LParen, "'('")?;
            // Attribute-set form: PROB(col [, col]*) — distinguished by a
            // following ')' or ',' right after identifiers.
            let save = self.pos;
            if let Ok(attrs) = self.try_attr_list() {
                let op = self.cmp_op()?;
                let p = self.number("probability")?;
                return Ok(Pred::AttrThreshold(attrs, op, p));
            }
            self.pos = save;
            let inner = self.pred()?;
            self.expect(&Token::RParen, "')'")?;
            let op = self.cmp_op()?;
            let p = self.number("probability")?;
            return Ok(Pred::ProbThreshold(Box::new(inner), op, p));
        }
        if self.eat(&Token::LParen) {
            let inner = self.pred()?;
            self.expect(&Token::RParen, "')'")?;
            return Ok(inner);
        }
        // term [BETWEEN a AND b | op term]
        let left = self.term()?;
        if self.peek().is_kw("between") {
            let col = match left {
                Term::Col(c) => c,
                _ => return Err(SqlError::Parse("BETWEEN requires a column".into())),
            };
            self.next();
            let lo = self.number("lower bound")?;
            self.expect_kw("and")?;
            let hi = self.number("upper bound")?;
            return Ok(Pred::Between(col, lo, hi));
        }
        let op = self.cmp_op()?;
        let right = self.term()?;
        Ok(Pred::Cmp(left, op, right))
    }

    /// Attempts to parse `col [, col]* )` — the attribute-set form of PROB.
    fn try_attr_list(&mut self) -> Result<Vec<String>> {
        let mut attrs = Vec::new();
        loop {
            match self.peek().clone() {
                Token::Ident(s)
                    if !s.eq_ignore_ascii_case("not") && !s.eq_ignore_ascii_case("prob") =>
                {
                    self.next();
                    attrs.push(s);
                }
                _ => return Err(SqlError::Parse("not an attribute list".into())),
            }
            if self.eat(&Token::Comma) {
                continue;
            }
            if self.eat(&Token::RParen) {
                // Must be followed by a comparison for the threshold form.
                match self.peek() {
                    Token::Lt | Token::Le | Token::Gt | Token::Ge | Token::Eq | Token::Ne => {
                        return Ok(attrs)
                    }
                    _ => return Err(SqlError::Parse("not an attribute threshold".into())),
                }
            }
            return Err(SqlError::Parse("not an attribute list".into()));
        }
    }

    fn cmp_op(&mut self) -> Result<CmpOp> {
        let op = match self.peek() {
            Token::Lt => CmpOp::Lt,
            Token::Le => CmpOp::Le,
            Token::Gt => CmpOp::Gt,
            Token::Ge => CmpOp::Ge,
            Token::Eq => CmpOp::Eq,
            Token::Ne => CmpOp::Ne,
            other => return Err(SqlError::Parse(format!("expected comparison, found {other:?}"))),
        };
        self.next();
        Ok(op)
    }

    fn term(&mut self) -> Result<Term> {
        match self.peek().clone() {
            Token::Number(_) | Token::Minus => Ok(Term::Num(self.number("number")?)),
            Token::Str(s) => {
                self.next();
                Ok(Term::Str(s))
            }
            Token::Ident(id) => {
                self.next();
                match id.to_ascii_lowercase().as_str() {
                    "null" => Ok(Term::Null),
                    "true" => Ok(Term::Bool(true)),
                    "false" => Ok(Term::Bool(false)),
                    _ => Ok(Term::Col(id)),
                }
            }
            other => Err(SqlError::Parse(format!("expected term, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table_with_uncertainty() {
        let s = parse(
            "CREATE TABLE obj (oid INT, x REAL UNCERTAIN, y REAL UNCERTAIN, CORRELATED (x, y))",
        )
        .unwrap();
        match s {
            Statement::CreateTable { name, columns, correlated } => {
                assert_eq!(name, "obj");
                assert_eq!(columns.len(), 3);
                assert!(!columns[0].uncertain);
                assert!(columns[1].uncertain && columns[2].uncertain);
                assert_eq!(correlated, vec![vec!["x".to_string(), "y".to_string()]]);
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn insert_with_pdf_constructors() {
        let s =
            parse("INSERT INTO readings VALUES (1, GAUSSIAN(20, 5)), (2, DISCRETE(0:0.1, 1:0.9))")
                .unwrap();
        match s {
            Statement::Insert { table, rows } => {
                assert_eq!(table, "readings");
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0][1], InsertValue::Pdf(PdfExpr::Gaussian(20.0, 5.0)));
                assert_eq!(
                    rows[1][1],
                    InsertValue::Pdf(PdfExpr::Discrete(vec![(0.0, 0.1), (1.0, 0.9)]))
                );
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn insert_joint_pdf() {
        let s = parse("INSERT INTO t VALUES (JOINT((4, 5):0.9, (2, 3):0.1))").unwrap();
        match s {
            Statement::Insert { rows, .. } => match &rows[0][0] {
                InsertValue::Pdf(PdfExpr::Joint(pts)) => {
                    assert_eq!(pts.len(), 2);
                    assert_eq!(pts[0], (vec![4.0, 5.0], 0.9));
                }
                other => panic!("wrong value: {other:?}"),
            },
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn select_with_where() {
        let s = parse("SELECT rid, value FROM readings WHERE value < 20 AND rid >= 2").unwrap();
        match s {
            Statement::Select { items, from, filter, .. } => {
                assert_eq!(items.len(), 2);
                assert_eq!(from, FromClause::Table("readings".into()));
                assert!(matches!(filter, Some(Pred::And(_))));
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn select_join() {
        let s = parse("SELECT * FROM a JOIN b ON a.x < b.y").unwrap();
        match s {
            Statement::Select { from, .. } => match from {
                FromClause::Join { left, right, on } => {
                    assert_eq!((left.as_str(), right.as_str()), ("a", "b"));
                    assert!(matches!(on, Some(Pred::Cmp(_, CmpOp::Lt, _))));
                }
                other => panic!("wrong from: {other:?}"),
            },
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn prob_threshold_forms() {
        let s = parse("SELECT * FROM t WHERE PROB(x BETWEEN 10 AND 20) > 0.5").unwrap();
        match s {
            Statement::Select {
                filter: Some(Pred::ProbThreshold(inner, CmpOp::Gt, p)), ..
            } => {
                assert_eq!(*inner, Pred::Between("x".into(), 10.0, 20.0));
                assert_eq!(p, 0.5);
            }
            other => panic!("wrong statement: {other:?}"),
        }
        let s = parse("SELECT * FROM t WHERE PROB(x) >= 0.8").unwrap();
        match s {
            Statement::Select {
                filter: Some(Pred::AttrThreshold(attrs, CmpOp::Ge, p)), ..
            } => {
                assert_eq!(attrs, vec!["x".to_string()]);
                assert_eq!(p, 0.8);
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn aggregates_and_expected() {
        let s = parse("SELECT ECOUNT(*), ESUM(x), EAVG(x) FROM t").unwrap();
        match s {
            Statement::Select { items, .. } => {
                assert_eq!(items[0], SelectItem::CountAgg);
                assert_eq!(items[1], SelectItem::SumAgg("x".into()));
                assert_eq!(items[2], SelectItem::AvgAgg("x".into()));
            }
            other => panic!("wrong statement: {other:?}"),
        }
        let s = parse("SELECT rid, EXPECTED(value) FROM t").unwrap();
        match s {
            Statement::Select { items, .. } => {
                assert_eq!(items[1], SelectItem::Expected("value".into()));
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn delete_and_drop() {
        assert_eq!(
            parse("DELETE FROM t WHERE rid = 3").unwrap(),
            Statement::Delete {
                table: "t".into(),
                filter: Some(Pred::Cmp(Term::Col("rid".into()), CmpOp::Eq, Term::Num(3.0))),
            }
        );
        assert_eq!(parse("DROP TABLE t;").unwrap(), Statement::DropTable { name: "t".into() });
    }

    #[test]
    fn parse_errors() {
        assert!(parse("SELEC * FROM t").is_err());
        assert!(parse("SELECT * FORM t").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("INSERT INTO t VALUES (NOPE(1))").is_err());
        assert!(parse("CREATE TABLE t (x BLOB)").is_err());
        assert!(parse("SELECT * FROM t extra garbage").is_err());
    }

    #[test]
    fn negative_numbers_in_pdfs() {
        let s = parse("INSERT INTO t VALUES (UNIFORM(-5, 5))").unwrap();
        match s {
            Statement::Insert { rows, .. } => {
                assert_eq!(rows[0][0], InsertValue::Pdf(PdfExpr::Uniform(-5.0, 5.0)));
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn function_names_need_parens() {
        // A column named like a function parses as a column when no '('
        // follows.
        let s = parse("SELECT median, prob FROM t").unwrap();
        match s {
            Statement::Select { items, .. } => {
                assert_eq!(items[0], SelectItem::Column("median".into()));
                assert_eq!(items[1], SelectItem::Column("prob".into()));
            }
            other => panic!("wrong statement: {other:?}"),
        }
        let s = parse("SELECT MEDIAN(x) FROM t").unwrap();
        match s {
            Statement::Select { items, .. } => {
                assert_eq!(items[0], SelectItem::Median("x".into()));
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn update_statement_parses() {
        let s = parse("UPDATE t SET x = GAUSSIAN(1, 2), k = 5 WHERE k = 3").unwrap();
        match s {
            Statement::Update { table, sets, filter } => {
                assert_eq!(table, "t");
                assert_eq!(sets.len(), 2);
                assert_eq!(sets[0].0, "x");
                assert_eq!(sets[0].1, InsertValue::Pdf(PdfExpr::Gaussian(1.0, 2.0)));
                assert_eq!(sets[1].1, InsertValue::Number(5.0));
                assert!(filter.is_some());
            }
            other => panic!("wrong statement: {other:?}"),
        }
        assert!(parse("UPDATE t SET").is_err());
        assert!(parse("UPDATE t x = 5").is_err());
    }

    #[test]
    fn order_by_limit_distinct_parse() {
        let s = parse("SELECT DISTINCT a FROM t ORDER BY a DESC LIMIT 3").unwrap();
        match s {
            Statement::Select { distinct, order_by, limit, .. } => {
                assert!(distinct);
                assert_eq!(order_by, Some(("a".to_string(), true)));
                assert_eq!(limit, Some(3));
            }
            other => panic!("wrong statement: {other:?}"),
        }
        let s = parse("SELECT a FROM t ORDER BY a ASC").unwrap();
        match s {
            Statement::Select { distinct, order_by, limit, .. } => {
                assert!(!distinct);
                assert_eq!(order_by, Some(("a".to_string(), false)));
                assert_eq!(limit, None);
            }
            other => panic!("wrong statement: {other:?}"),
        }
        assert!(parse("SELECT a FROM t LIMIT 2.5").is_err());
        assert!(parse("SELECT a FROM t ORDER a").is_err());
    }

    #[test]
    fn analyze_statement_parses() {
        assert_eq!(
            parse("ANALYZE readings;").unwrap(),
            Statement::Analyze { table: "readings".into() }
        );
        // EXPLAIN ANALYZE still binds ANALYZE as the explain modifier.
        match parse("EXPLAIN ANALYZE SELECT * FROM t").unwrap() {
            Statement::Explain { analyze: true, trace: false, inner } => {
                assert!(matches!(*inner, Statement::Select { .. }));
            }
            other => panic!("wrong statement: {other:?}"),
        }
        assert!(parse("ANALYZE").is_err());
    }

    #[test]
    fn index_ddl_parses() {
        assert_eq!(
            parse("CREATE INDEX ix_v ON readings (v) USING cdf").unwrap(),
            Statement::CreateIndex {
                name: "ix_v".into(),
                table: "readings".into(),
                column: "v".into(),
                kind: Some("cdf".into()),
            }
        );
        assert_eq!(
            parse("CREATE INDEX ix_rid ON readings (rid);").unwrap(),
            Statement::CreateIndex {
                name: "ix_rid".into(),
                table: "readings".into(),
                column: "rid".into(),
                kind: None,
            }
        );
        assert_eq!(parse("DROP INDEX ix_v").unwrap(), Statement::DropIndex { name: "ix_v".into() });
        assert!(parse("CREATE INDEX ix ON t").is_err(), "missing column list");
        assert!(parse("CREATE INDEX ON t (v)").is_err(), "missing name");
        assert!(parse("DROP INDEX").is_err());
    }

    #[test]
    fn not_and_parens() {
        let s = parse("SELECT * FROM t WHERE NOT (x < 5 OR y > 2)").unwrap();
        match s {
            Statement::Select { filter: Some(Pred::Not(inner)), .. } => {
                assert!(matches!(*inner, Pred::Or(_)));
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }
}
