//! Durable transactional SQL sessions.
//!
//! A [`DurableSession`] runs the Orion SQL dialect against a
//! [`SharedDurableDb`] with snapshot-isolation transactions:
//!
//! * `BEGIN` / `COMMIT` / `ROLLBACK` bracket an explicit transaction; all
//!   DML inside it stages into one [`Txn`] and reaches the WAL as a single
//!   atomic group at `COMMIT`.
//! * DML outside an explicit transaction auto-commits: each statement runs
//!   in its own transaction, retried with bounded exponential backoff when
//!   a concurrent committer wins (retryable
//!   [`EngineError::TxnConflict`](orion_core::prelude::EngineError)).
//!   An explicit `COMMIT` is **not** auto-retried — replaying a
//!   multi-statement transaction needs the client's logic, so the conflict
//!   surfaces to the caller (who may BEGIN again).
//! * Reads (`SELECT`, `EXPLAIN`, system tables) run on a point-in-time
//!   copy of the session's current view: the private transaction snapshot
//!   when one is open — so a transaction reads its own writes — and the
//!   latest committed state otherwise.
//!
//! `DROP TABLE` is not supported durably, and `ANALYZE` cannot run inside
//! a transaction (statistics are session/engine state, not row data).

use crate::ast::Statement;
use crate::error::{Result, SqlError};
use crate::exec::{
    certain_eval, check_certain_pred, translate_assignments, translate_insert_row, translate_pred,
    Assign, Database, Output, SYS_PREFIX,
};
use crate::fingerprint::fingerprint;
use crate::parser::parse;
use orion_core::prelude::*;
use orion_core::tuple::PdfNode;
use orion_obs::{recorder, ExecSample, ExecStats, SlowQuery};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Auto-commit conflict retries before giving up (first-committer-wins
/// losers re-run on a fresh snapshot).
const AUTOCOMMIT_RETRIES: u32 = 5;

/// Base backoff before an auto-commit retry; doubles per attempt.
const RETRY_BACKOFF: Duration = Duration::from_micros(100);

/// How many recent flight-recorder events a slow-query capture keeps.
const SLOW_TRACE_EVENTS: usize = 16;

/// A SQL session over a durable engine, with transactions.
pub struct DurableSession {
    db: SharedDurableDb,
    txn: Option<Txn>,
    /// Session-held ANALYZE results, seeded into every per-statement query
    /// database (the durable engine persists its own copy via the WAL).
    stats: StatsCatalog,
    /// Per-session operator counters (pdf ops, index probes), attached to
    /// every query database when the workload repository is enabled so the
    /// statement repository can charge pdf work to statements.
    exec_stats: Arc<ExecStats>,
}

impl DurableSession {
    /// Opens (or creates) a durable database directory with default group
    /// commit settings.
    pub fn open(dir: &Path) -> Result<Self> {
        Self::open_with(dir, GroupCommitConfig::default())
    }

    /// Opens with explicit group-commit tuning.
    pub fn open_with(dir: &Path, cfg: GroupCommitConfig) -> Result<Self> {
        let db = SharedDurableDb::open(dir, cfg)?;
        Ok(Self::from_db(db))
    }

    /// Wraps an already-open shared engine.
    pub fn from_db(db: SharedDurableDb) -> Self {
        DurableSession {
            db,
            txn: None,
            stats: StatsCatalog::new(),
            exec_stats: Arc::new(ExecStats::new()),
        }
    }

    /// The underlying shared engine.
    pub fn db(&self) -> &SharedDurableDb {
        &self.db
    }

    /// Whether an explicit transaction is open.
    pub fn in_txn(&self) -> bool {
        self.txn.is_some()
    }

    /// Parses and executes one statement, recording it into the engine's
    /// workload repository when enabled (one relaxed atomic load when not).
    pub fn execute(&mut self, sql: &str) -> Result<Output> {
        let stmt = parse(sql)?;
        let workload = self.db.workload();
        let mut retries = 0u64;
        if !workload.enabled() {
            return self.dispatch(stmt, &mut retries);
        }
        let (fp, text) = fingerprint(&stmt);
        // Only reads can be re-run for a captured plan: re-executing DML
        // would apply its effects twice.
        let candidate = match &stmt {
            Statement::Select { .. } => Some(stmt.clone()),
            _ => None,
        };
        let stats_before = self.exec_stats.snapshot();
        let io_before = self.db.io_stats().snapshot();
        let start = Instant::now();
        let result = self.dispatch(stmt, &mut retries);
        let nanos = start.elapsed().as_nanos() as u64;
        let stats_after = self.exec_stats.snapshot();
        let io_after = self.db.io_stats().snapshot();
        let rows = match &result {
            Ok(Output::Table(rel)) => rel.len() as u64,
            Ok(Output::Rows { rows, .. }) => rows.len() as u64,
            Ok(Output::Count(n)) => *n as u64,
            _ => 0,
        };
        let pdf_ops = (stats_after.pdf_products - stats_before.pdf_products)
            + (stats_after.pdf_floors - stats_before.pdf_floors)
            + (stats_after.pdf_marginalizations - stats_before.pdf_marginalizations);
        let sample = ExecSample {
            fingerprint: fp,
            text,
            nanos,
            rows,
            error: result.is_err(),
            pages_read: io_after.physical_reads.saturating_sub(io_before.physical_reads),
            pdf_ops,
            index_probes: stats_after.index_probes.saturating_sub(stats_before.index_probes),
            txn_retries: retries,
        };
        if let Some(ticket) = workload.record(&sample) {
            let plan = candidate.map(|inner| self.capture_plan(inner)).unwrap_or_default();
            workload.record_slow(SlowQuery {
                seq: ticket.seq,
                fingerprint: fp,
                text: sample.text,
                nanos,
                rows,
                cause: ticket.cause,
                plan,
                trace: trace_snippet(),
            });
        }
        result
    }

    /// Routes one parsed statement; `retries` counts auto-commit conflict
    /// re-runs for the workload repository.
    fn dispatch(&mut self, stmt: Statement, retries: &mut u64) -> Result<Output> {
        match stmt {
            Statement::Begin => {
                if self.txn.is_some() {
                    return Err(SqlError::Exec("a transaction is already open".into()));
                }
                self.txn = Some(Txn::begin(&self.db));
                Ok(Output::Ok)
            }
            Statement::Commit => {
                let txn = self
                    .txn
                    .take()
                    .ok_or_else(|| SqlError::Exec("COMMIT outside a transaction".into()))?;
                txn.commit()?;
                Ok(Output::Ok)
            }
            Statement::Rollback => {
                let txn = self
                    .txn
                    .take()
                    .ok_or_else(|| SqlError::Exec("ROLLBACK outside a transaction".into()))?;
                txn.rollback();
                Ok(Output::Ok)
            }
            dml @ (Statement::CreateTable { .. }
            | Statement::Insert { .. }
            | Statement::Update { .. }
            | Statement::Delete { .. }) => match self.txn.as_mut() {
                Some(txn) => apply_dml(txn, dml),
                None => self.autocommit(dml, retries),
            },
            Statement::DropTable { .. } => Err(SqlError::Exec(
                "DROP TABLE is not supported on durable sessions (deleted base tuples may \
                 still anchor histories of derived data)"
                    .into(),
            )),
            Statement::CreateIndex { name, table, column, kind } => {
                self.reject_in_txn("CREATE INDEX")?;
                let kind = crate::exec::translate_index_kind(kind.as_deref())?;
                self.db.create_index(&name, &table, &column, kind)?;
                Ok(Output::Ok)
            }
            Statement::DropIndex { name } => {
                self.reject_in_txn("DROP INDEX")?;
                self.db.drop_index(&name)?;
                Ok(Output::Ok)
            }
            Statement::Analyze { table } => {
                if self.txn.is_some() {
                    return Err(SqlError::Exec(
                        "ANALYZE cannot run inside a transaction (statistics are engine \
                         state, not transactional row data)"
                            .into(),
                    ));
                }
                self.db.analyze_table(&table)?;
                let ts = self
                    .db
                    .with_tables(|tables, _| tables.get(&table).map(analyze_relation))
                    .ok_or_else(|| SqlError::Exec(format!("unknown table '{table}'")))??;
                self.stats.insert(ts.clone());
                Ok(Output::Analyze(ts))
            }
            read => self.query_db().run(read),
        }
    }

    /// Index DDL is engine state logged at its own WAL commit point, not
    /// transactional row data — like ANALYZE it cannot run inside an open
    /// transaction.
    fn reject_in_txn(&self, stmt: &str) -> Result<()> {
        if self.txn.is_some() {
            return Err(SqlError::Exec(format!(
                "{stmt} cannot run inside a transaction (index definitions are engine \
                 state, logged at their own WAL commit point)"
            )));
        }
        Ok(())
    }

    /// Runs one DML statement as its own transaction, retrying conflicts
    /// with bounded exponential backoff. `retries` reports the number of
    /// conflict re-runs to the workload repository.
    fn autocommit(&mut self, stmt: Statement, retries: &mut u64) -> Result<Output> {
        let mut attempt = 0u32;
        loop {
            let mut txn = Txn::begin(&self.db);
            let out = apply_dml(&mut txn, stmt.clone())?;
            match txn.commit() {
                Ok(_) => return Ok(out),
                Err(e) if e.is_retryable() && attempt < AUTOCOMMIT_RETRIES => {
                    attempt += 1;
                    *retries += 1;
                    std::thread::sleep(RETRY_BACKOFF * 2u32.pow(attempt - 1));
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Re-runs a read as `EXPLAIN ANALYZE` on a fresh point-in-time query
    /// database to capture the operator tree for the slow-query log. The
    /// re-run also folds a second estimate-vs-actual observation into the
    /// planner-feedback store, which is the point: slow statements deserve
    /// the planner's attention.
    fn capture_plan(&mut self, inner: Statement) -> String {
        let explain = Statement::Explain { analyze: true, trace: false, inner: Box::new(inner) };
        match self.query_db().run(explain) {
            Ok(Output::Explain { profile, .. }) => profile.render(true),
            Ok(_) => String::new(),
            Err(e) => format!("<plan capture failed: {e}>"),
        }
    }

    /// Builds the per-statement query database: a point-in-time copy of
    /// the current view (transaction snapshot or committed state) with the
    /// session's stats catalog and the engine's IO / transaction registries
    /// attached for the `orion.*` system tables.
    fn query_db(&mut self) -> Database {
        let (tables, reg) = match self.txn.as_mut() {
            Some(txn) => txn.with_view(|t, r| (t.clone(), r.clone())),
            None => self.db.with_tables(|t, r| (t.clone(), r.clone())),
        };
        let mut qdb = Database::new();
        for rel in tables.into_values() {
            qdb.register_table(rel);
        }
        *qdb.registry_mut() = reg;
        qdb.set_stats_catalog(self.stats.clone());
        qdb.set_io_stats(self.db.io_stats());
        qdb.set_txn_db(self.db.clone());
        // A defs+epochs snapshot of the engine catalog (no built cache):
        // any tree the statement builds comes from its own point-in-time
        // table copy and is never cached back into the shared catalog, so
        // a commit racing this statement cannot poison freshness.
        let cat = self.db.indexes().lock().snapshot();
        qdb.set_index_handle(IndexHandle::from_catalog(cat));
        let workload = self.db.workload();
        if workload.enabled() {
            // Operator-level counters (pdf ops, index probes) cost atomic
            // increments in the hot loops, so they are only attached when
            // the workload repository will read them.
            qdb.set_exec_stats(Arc::clone(&self.exec_stats));
        }
        qdb.set_workload(workload);
        qdb.set_plan_feedback(self.db.plan_feedback());
        qdb
    }
}

/// Formats the tail of the flight-recorder ring as one line per span for
/// slow-query captures. Empty when the recorder is disabled.
fn trace_snippet() -> String {
    let events = recorder::recent(SLOW_TRACE_EVENTS);
    let mut out = String::new();
    for e in &events {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&format!("[{}] {} {}ns", e.cat, e.name, e.end_ns.saturating_sub(e.start_ns)));
    }
    out
}

/// Stages one DML statement into a transaction.
fn apply_dml(txn: &mut Txn, stmt: Statement) -> Result<Output> {
    match stmt {
        Statement::CreateTable { name, columns, correlated } => {
            if name.starts_with(SYS_PREFIX) {
                return Err(SqlError::Exec(format!(
                    "the '{SYS_PREFIX}' namespace is reserved for system tables"
                )));
            }
            let cols: Vec<(&str, ColumnType, bool)> =
                columns.iter().map(|c| (c.name.as_str(), c.ty, c.uncertain)).collect();
            let groups: Vec<Vec<&str>> =
                correlated.iter().map(|g| g.iter().map(|s| s.as_str()).collect()).collect();
            let schema = ProbSchema::new(cols, groups)?;
            txn.create_table(&name, schema)?;
            Ok(Output::Ok)
        }
        Statement::Insert { table, rows } => {
            let n = rows.len();
            let schema = txn.table(&table)?.schema.clone();
            for row in rows {
                let (certain, uncertain) = translate_insert_row(&schema, row)?;
                let certain_refs: Vec<(&str, Value)> =
                    certain.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
                let uncertain_refs: Vec<(Vec<&str>, orion_pdf::prelude::JointPdf)> = uncertain
                    .iter()
                    .map(|(ns, j)| (ns.iter().map(|s| s.as_str()).collect(), j.clone()))
                    .collect();
                txn.insert(&table, &certain_refs, uncertain_refs)?;
            }
            Ok(Output::Count(n))
        }
        Statement::Delete { table, filter } => {
            let pred = filter.map(|p| translate_pred(&p)).transpose()?;
            let schema = txn.table(&table)?.schema.clone();
            let removed = match pred {
                None => txn.delete_where(&table, |_| true)?,
                Some(p) => {
                    check_certain_pred(&schema, &p, "DELETE")?;
                    txn.delete_where(&table, |t| certain_eval(&schema, t, &p))?
                }
            };
            Ok(Output::Count(removed))
        }
        Statement::Update { table, sets, filter } => {
            let pred = filter.map(|p| translate_pred(&p)).transpose()?;
            let schema = txn.table(&table)?.schema.clone();
            if let Some(p) = &pred {
                check_certain_pred(&schema, p, "UPDATE")?;
            }
            let assigns = translate_assignments(&schema, &sets)?;
            let sel_schema = schema.clone();
            let updated = txn.update_where(
                &table,
                move |t| match &pred {
                    None => true,
                    Some(p) => certain_eval(&sel_schema, t, p),
                },
                move |t, reg| {
                    for a in &assigns {
                        match a {
                            Assign::Certain(idx, v) => t.certain[*idx] = v.clone(),
                            Assign::Node(group, joint) => {
                                // Fresh base pdf, fresh history. No add_refs
                                // here: Txn::update_where diffs old vs new
                                // nodes and does the reference bookkeeping,
                                // exactly like WAL replay.
                                let ni = t.node_index_for(group[0]).ok_or_else(|| {
                                    EngineError::Operator("uncertain column lost its node".into())
                                })?;
                                let id = reg.register(group.clone(), joint.clone());
                                t.nodes[ni] = PdfNode::base(
                                    id,
                                    group,
                                    joint.clone(),
                                    [id].into_iter().collect(),
                                );
                            }
                        }
                    }
                    Ok(())
                },
            )?;
            Ok(Output::Count(updated))
        }
        other => unreachable!("apply_dml only receives DML, got {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("orion_session_test").join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn int_cell(out: &Output, col: &str) -> i64 {
        let Output::Table(rel) = out else { panic!("expected table, got {out:?}") };
        let Value::Int(v) = rel.value(0, col).unwrap() else { panic!("expected int") };
        *v
    }

    #[test]
    fn dml_autocommits_and_survives_reopen() {
        let dir = temp_dir("autocommit");
        {
            let mut s = DurableSession::open(&dir).unwrap();
            s.execute("CREATE TABLE readings (rid INT, value REAL UNCERTAIN)").unwrap();
            s.execute("INSERT INTO readings VALUES (1, GAUSSIAN(20, 5)), (2, GAUSSIAN(25, 4))")
                .unwrap();
            s.execute("UPDATE readings SET value = GAUSSIAN(99, 1) WHERE rid = 2").unwrap();
            s.execute("DELETE FROM readings WHERE rid = 1").unwrap();
        }
        let mut s = DurableSession::open(&dir).unwrap();
        let out = s.execute("SELECT * FROM readings").unwrap();
        let Output::Table(rel) = out else { panic!("expected table") };
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.value(0, "rid").unwrap(), &Value::Int(2));
        assert_eq!(rel.marginal(0, "value").unwrap().to_string(), "Gaus(99,1)");
        s.db().check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn begin_commit_groups_statements_atomically() {
        let dir = temp_dir("explicit");
        let mut s = DurableSession::open(&dir).unwrap();
        s.execute("CREATE TABLE t (a INT, x REAL UNCERTAIN)").unwrap();
        let wal_before = s.db().wal_len();
        s.execute("BEGIN").unwrap();
        s.execute("INSERT INTO t VALUES (1, UNIFORM(0, 1))").unwrap();
        s.execute("INSERT INTO t VALUES (2, UNIFORM(1, 2))").unwrap();
        // Inside the txn, the session reads its own writes...
        assert_eq!(int_cell(&s.execute("SELECT a FROM t WHERE a = 2").unwrap(), "a"), 2);
        // ...but nothing reached the log or the shared state yet.
        assert_eq!(s.db().wal_len(), wal_before);
        s.db().with_tables(|tables, _| assert_eq!(tables["t"].len(), 0));
        s.execute("COMMIT").unwrap();
        assert!(s.db().wal_len() > wal_before);
        s.db().with_tables(|tables, _| assert_eq!(tables["t"].len(), 2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rollback_discards_everything() {
        let dir = temp_dir("rollback");
        let mut s = DurableSession::open(&dir).unwrap();
        s.execute("CREATE TABLE t (a INT, x REAL UNCERTAIN)").unwrap();
        s.execute("INSERT INTO t VALUES (1, UNIFORM(0, 1))").unwrap();
        s.execute("BEGIN TRANSACTION").unwrap();
        s.execute("INSERT INTO t VALUES (2, UNIFORM(0, 1))").unwrap();
        s.execute("DELETE FROM t WHERE a = 1").unwrap();
        s.execute("ROLLBACK").unwrap();
        let Output::Table(rel) = s.execute("SELECT * FROM t").unwrap() else { panic!("table") };
        assert_eq!(rel.len(), 1, "rollback left the committed row alone");
        assert_eq!(rel.value(0, "a").unwrap(), &Value::Int(1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn txn_statement_errors() {
        let dir = temp_dir("errors");
        let mut s = DurableSession::open(&dir).unwrap();
        assert!(s.execute("COMMIT").is_err(), "commit outside txn");
        assert!(s.execute("ROLLBACK").is_err(), "rollback outside txn");
        s.execute("BEGIN").unwrap();
        assert!(s.execute("BEGIN").is_err(), "nested begin");
        assert!(s.execute("ANALYZE t").is_err(), "analyze inside txn");
        s.execute("ROLLBACK").unwrap();
        assert!(s.execute("DROP TABLE t").is_err(), "drop unsupported");
        // Plain in-memory Database refuses transaction statements.
        let mut mem = Database::new();
        assert!(mem.execute("BEGIN").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn orion_txns_reflects_open_transaction() {
        let dir = temp_dir("sys_txns");
        let mut s = DurableSession::open(&dir).unwrap();
        s.execute("CREATE TABLE t (a INT, x REAL UNCERTAIN)").unwrap();
        let Output::Table(rel) = s.execute("SELECT * FROM orion.txns").unwrap() else {
            panic!("table")
        };
        assert_eq!(rel.len(), 0, "no transaction open");
        s.execute("BEGIN").unwrap();
        s.execute("INSERT INTO t VALUES (1, UNIFORM(0, 1))").unwrap();
        let out = s.execute("SELECT * FROM orion.txns").unwrap();
        let Output::Table(rel) = out else { panic!("table") };
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.value(0, "writes").unwrap(), &Value::Int(1));
        s.execute("COMMIT").unwrap();
        let Output::Table(rel) = s.execute("SELECT * FROM orion.txns").unwrap() else {
            panic!("table")
        };
        assert_eq!(rel.len(), 0, "committed transaction left the registry");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn conflicting_explicit_commit_surfaces_retryable_error() {
        let dir = temp_dir("conflict");
        let mut a = DurableSession::open(&dir).unwrap();
        a.execute("CREATE TABLE t (a INT, x REAL UNCERTAIN)").unwrap();
        a.execute("INSERT INTO t VALUES (1, UNIFORM(0, 1))").unwrap();
        let mut b = DurableSession::from_db(a.db().clone());
        a.execute("BEGIN").unwrap();
        b.execute("BEGIN").unwrap();
        a.execute("DELETE FROM t WHERE a = 1").unwrap();
        b.execute("DELETE FROM t WHERE a = 1").unwrap();
        a.execute("COMMIT").unwrap();
        let err = b.execute("COMMIT").unwrap_err();
        let SqlError::Engine(e) = &err else { panic!("expected engine error, got {err:?}") };
        assert!(e.is_retryable(), "losers may retry: {e}");
        // The loser retries on a fresh snapshot and succeeds.
        b.execute("BEGIN").unwrap();
        b.execute("INSERT INTO t VALUES (2, UNIFORM(0, 1))").unwrap();
        b.execute("COMMIT").unwrap();
        let Output::Table(rel) = a.execute("SELECT * FROM t").unwrap() else { panic!("table") };
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.value(0, "a").unwrap(), &Value::Int(2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn index_ddl_is_durable_and_rejected_inside_txn() {
        let dir = temp_dir("index_ddl");
        {
            let mut s = DurableSession::open(&dir).unwrap();
            s.execute("CREATE TABLE t (a INT, x REAL UNCERTAIN)").unwrap();
            s.execute("INSERT INTO t VALUES (1, UNIFORM(0, 1)), (2, UNIFORM(1, 2))").unwrap();
            s.execute("CREATE INDEX ix_x ON t (x)").unwrap();
            s.execute("CREATE INDEX ix_a ON t (a) USING evx").unwrap();
            s.execute("DROP INDEX ix_a").unwrap();
            s.execute("BEGIN").unwrap();
            assert!(s.execute("CREATE INDEX ix2 ON t (a)").is_err(), "DDL inside txn");
            assert!(s.execute("DROP INDEX ix_x").is_err(), "DDL inside txn");
            s.execute("ROLLBACK").unwrap();
        }
        // The definition replays from the WAL; the dropped one stays gone.
        let mut s = DurableSession::open(&dir).unwrap();
        let Output::Table(rel) = s.execute("SELECT * FROM orion.indexes").unwrap() else {
            panic!("table")
        };
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.value(0, "name").unwrap(), &Value::Text("ix_x".into()));
        assert_eq!(rel.value(0, "kind").unwrap(), &Value::Text("cdf".into()));
        // Indexed and scan-only sessions agree on threshold results.
        let out = s.execute("SELECT a FROM t WHERE PROB(x > 0.5) > 0.4").unwrap();
        let Output::Table(rel) = out else { panic!("table") };
        assert_eq!(rel.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn workload_repo_records_statements_and_slow_captures() {
        let dir = temp_dir("workload");
        let mut s = DurableSession::open(&dir).unwrap();
        let repo = s.db().workload();
        let mut cfg = repo.config();
        cfg.slow_nanos = 0; // capture every statement into the slow log
        repo.set_config(cfg);
        s.execute("CREATE TABLE t (a INT, x REAL UNCERTAIN)").unwrap();
        s.execute("INSERT INTO t VALUES (1, GAUSSIAN(20, 5)), (2, GAUSSIAN(25, 4))").unwrap();
        s.execute("SELECT a FROM t WHERE PROB(x < 30) > 0.1").unwrap();
        s.execute("SELECT a FROM t WHERE PROB(x < 99) > 0.2").unwrap();
        assert!(s.execute("SELECT a FROM missing").is_err());

        let stmts = repo.statements();
        // The two SELECTs differ only in literals and share one fingerprint.
        let sel = stmts.iter().find(|st| st.text.starts_with("SELECT a FROM t")).unwrap();
        assert_eq!(sel.calls, 2);
        assert_eq!(sel.rows, 4);
        assert_eq!(sel.errors, 0);
        let err = stmts.iter().find(|st| st.text.contains("missing")).unwrap();
        assert_eq!(err.errors, 1);
        assert_eq!(repo.total_calls(), 5);

        let slow = repo.slow_queries();
        assert_eq!(slow.len(), 5, "slow_nanos=0 captures everything");
        let sq = slow.iter().find(|q| q.text.starts_with("SELECT a FROM t")).unwrap();
        assert!(sq.plan.contains("Scan"), "captured plan has operators: {:?}", sq.plan);
        assert!(sq.plan.contains("actual="), "EXPLAIN ANALYZE form: {:?}", sq.plan);
        // The EXPLAIN ANALYZE re-run folded estimate-vs-actual feedback.
        assert!(!s.db().plan_feedback().summaries().is_empty());

        // The same stores back the orion.* vtables.
        let Output::Table(rel) = s.execute("SELECT * FROM orion.statements").unwrap() else {
            panic!("table")
        };
        assert!(rel.len() >= 4, "one row per fingerprint, got {}", rel.len());
        let Output::Table(rel) = s.execute("SELECT * FROM orion.slow_queries").unwrap() else {
            panic!("table")
        };
        assert!(rel.len() >= 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disabled_workload_repo_records_nothing() {
        let dir = temp_dir("workload_off");
        let mut s = DurableSession::open(&dir).unwrap();
        s.db().workload().set_enabled(false);
        s.execute("CREATE TABLE t (a INT, x REAL UNCERTAIN)").unwrap();
        s.execute("SELECT a FROM t").unwrap();
        assert_eq!(s.db().workload().total_calls(), 0);
        assert!(s.db().workload().statements().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn analyze_feeds_session_stats_and_explain() {
        let dir = temp_dir("analyze");
        let mut s = DurableSession::open(&dir).unwrap();
        s.execute("CREATE TABLE t (a INT, x REAL UNCERTAIN)").unwrap();
        s.execute("INSERT INTO t VALUES (1, UNIFORM(0, 1)), (2, UNIFORM(1, 2))").unwrap();
        let Output::Analyze(ts) = s.execute("ANALYZE t").unwrap() else { panic!("analyze") };
        assert_eq!(ts.rows, 2);
        // The stats feed EXPLAIN estimates (scan knows its 2 rows) and
        // orion.stats on later statements.
        let Output::Explain { profile, .. } = s.execute("EXPLAIN SELECT a FROM t").unwrap() else {
            panic!("explain")
        };
        assert!(profile.render(false).contains("est_rows=2"), "{}", profile.render(false));
        let Output::Table(rel) = s.execute("SELECT * FROM orion.stats").unwrap() else {
            panic!("table")
        };
        assert_eq!(rel.len(), 2, "one stats row per column");
        std::fs::remove_dir_all(&dir).ok();
    }
}
