//! Abstract syntax of the Orion SQL dialect.
//!
//! The dialect extends a small SQL core with the paper's uncertainty
//! features: `UNCERTAIN` column modifiers, `CORRELATED (...)` dependency
//! groups, symbolic pdf constructors in `VALUES`, `PROB(...)` threshold
//! predicates, and the `EXPECTED`/`ESUM`/`ECOUNT`/`EAVG` aggregates.

use orion_core::prelude::{CmpOp, ColumnType};

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col type [UNCERTAIN], ..., [CORRELATED (a, b)])`.
    CreateTable { name: String, columns: Vec<ColumnDef>, correlated: Vec<Vec<String>> },
    /// `INSERT INTO name VALUES (expr, ...), (expr, ...)`.
    Insert { table: String, rows: Vec<Vec<InsertValue>> },
    /// `SELECT [DISTINCT] items FROM source [WHERE pred]
    /// [ORDER BY col [DESC]] [LIMIT n]`.
    Select {
        items: Vec<SelectItem>,
        from: FromClause,
        filter: Option<Pred>,
        distinct: bool,
        order_by: Option<(String, bool)>,
        limit: Option<usize>,
    },
    /// `UPDATE name SET col = value, ... [WHERE pred]` (certain predicate).
    Update { table: String, sets: Vec<(String, InsertValue)>, filter: Option<Pred> },
    /// `DELETE FROM name [WHERE pred]`.
    Delete { table: String, filter: Option<Pred> },
    /// `DROP TABLE name`.
    DropTable { name: String },
    /// `CREATE INDEX name ON table (col) [USING evx|cdf]` — a persistent
    /// secondary index; the kind defaults by column certainty (`cdf` for
    /// uncertain columns, `evx` for certain ones).
    CreateIndex { name: String, table: String, column: String, kind: Option<String> },
    /// `DROP INDEX name`.
    DropIndex { name: String },
    /// `ANALYZE name` — collects per-column statistics (equi-depth
    /// histograms over certain values / expected values, cdf-bound
    /// summaries for uncertain columns, a tuple-existence histogram) into
    /// the engine's stats catalog for use by `EXPLAIN` cardinality
    /// estimates and the `orion.stats` virtual table.
    Analyze { table: String },
    /// `EXPLAIN [ANALYZE | TRACE] stmt` — renders the operator tree the
    /// statement would run; with `ANALYZE`, executes it and annotates each
    /// operator with its execution stats; with `TRACE`, executes it with
    /// the global tracer enabled, writes a Chrome trace-event JSON file,
    /// and reports the path plus the recorded span tree.
    Explain { analyze: bool, trace: bool, inner: Box<Statement> },
    /// `BEGIN [TRANSACTION | WORK]` — opens a snapshot-isolation
    /// transaction (durable sessions only).
    Begin,
    /// `COMMIT [TRANSACTION | WORK]`.
    Commit,
    /// `ROLLBACK [TRANSACTION | WORK]`.
    Rollback,
}

/// A column definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: ColumnType,
    pub uncertain: bool,
}

/// One value in an INSERT row: a certain literal or a pdf constructor.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertValue {
    Null,
    Number(f64),
    Text(String),
    Bool(bool),
    Pdf(PdfExpr),
}

/// A pdf constructor expression.
#[derive(Debug, Clone, PartialEq)]
pub enum PdfExpr {
    Gaussian(f64, f64),
    Uniform(f64, f64),
    Exponential(f64),
    Poisson(f64),
    Binomial(u64, f64),
    Bernoulli(f64),
    Geometric(f64),
    /// `DISCRETE(v:p, v:p, ...)`.
    Discrete(Vec<(f64, f64)>),
    /// `HISTOGRAM(lo, width, m1, m2, ...)`.
    Histogram {
        lo: f64,
        width: f64,
        masses: Vec<f64>,
    },
    /// `JOINT((v1, v2):p, ...)` — a correlated joint pmf supplied for a
    /// CORRELATED column group; spans as many columns as the group.
    Joint(Vec<(Vec<f64>, f64)>),
}

/// A SELECT list item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Wildcard,
    /// A plain column.
    Column(String),
    /// `EXPECTED(col)` — per-tuple conditional expectation.
    Expected(String),
    /// `VARIANCE(col)` — per-tuple conditional variance.
    Variance(String),
    /// `QUANTILE(col, q)` — per-tuple conditional quantile.
    Quantile(String, f64),
    /// `MEDIAN(col)` — per-tuple conditional median (quantile 0.5, kept as
    /// its own variant so the output header reads `median(col)`).
    Median(String),
    /// `PROB(pred)` — per-tuple probability of a predicate.
    ProbOf(Pred),
    /// `ESUM(col)` — Gaussian-approximated SUM aggregate.
    SumAgg(String),
    /// `ECOUNT(*)` — expected count aggregate.
    CountAgg,
    /// `EAVG(col)` — existence-weighted average aggregate.
    AvgAgg(String),
}

impl SelectItem {
    /// Whether this item is a whole-relation aggregate.
    pub fn is_aggregate(&self) -> bool {
        matches!(self, SelectItem::SumAgg(_) | SelectItem::CountAgg | SelectItem::AvgAgg(_))
    }
}

/// FROM clause: one table or a join of two.
#[derive(Debug, Clone, PartialEq)]
pub enum FromClause {
    Table(String),
    /// `a JOIN b ON pred` (`pred` empty = cross join).
    Join {
        left: String,
        right: String,
        on: Option<Pred>,
    },
}

/// A scalar term in a predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    Col(String),
    Num(f64),
    Str(String),
    Bool(bool),
    Null,
}

/// Predicates, including the probability-threshold extension.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    Cmp(Term, CmpOp, Term),
    /// `col BETWEEN lo AND hi`.
    Between(String, f64, f64),
    And(Vec<Pred>),
    Or(Vec<Pred>),
    Not(Box<Pred>),
    /// `PROB(pred) op p` — Section III-E threshold.
    ProbThreshold(Box<Pred>, CmpOp, f64),
    /// `PROB(col1, col2, ...) op p` — Pr over an attribute set.
    AttrThreshold(Vec<String>, CmpOp, f64),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection() {
        assert!(SelectItem::SumAgg("x".into()).is_aggregate());
        assert!(SelectItem::CountAgg.is_aggregate());
        assert!(!SelectItem::Column("x".into()).is_aggregate());
        assert!(!SelectItem::Wildcard.is_aggregate());
    }
}
