//! Text rendering of query outputs (used by the examples and the REPL-style
//! binaries).

use crate::error::Result;
use crate::exec::Output;
use orion_core::prelude::Relation;

/// Renders a relation as an aligned text table, showing certain values and
/// pdf summaries for uncertain columns (plus an `exists` column when any
/// tuple is a maybe-tuple).
pub fn render_relation(rel: &Relation) -> Result<String> {
    let mut header: Vec<String> = rel.schema.columns().iter().map(|c| c.name.clone()).collect();
    let show_exists = rel.tuples.iter().any(|t| (t.naive_existence() - 1.0).abs() > 1e-9);
    if show_exists {
        header.push("Pr(exists)".to_string());
    }
    let mut rows: Vec<Vec<String>> = Vec::with_capacity(rel.len());
    for (ti, t) in rel.tuples.iter().enumerate() {
        let mut row = Vec::with_capacity(header.len());
        for c in rel.schema.columns() {
            if c.uncertain {
                row.push(rel.marginal(ti, &c.name)?.to_string());
            } else {
                row.push(t.certain[rel.schema.index_of(&c.name).expect("col")].to_string());
            }
        }
        if show_exists {
            row.push(format!("{:.4}", t.naive_existence()));
        }
        rows.push(row);
    }
    Ok(render_grid(&header, &rows))
}

/// Renders an [`Output`] for display.
pub fn render_output(out: &Output) -> Result<String> {
    match out {
        Output::Table(rel) => render_relation(rel),
        Output::Rows { header, rows } => Ok(render_grid(header, rows)),
        Output::Count(n) => Ok(format!("{n} tuple(s) affected")),
        Output::Ok => Ok("OK".to_string()),
        Output::Explain { profile, analyze, trace } => {
            let mut text = profile.render(*analyze);
            if let Some(t) = trace {
                text.push_str(&format!("\ntrace: {}\n", t.path));
                text.push_str(&t.tree);
            }
            Ok(text)
        }
        Output::Analyze(ts) => Ok(render_table_stats(ts)),
    }
}

/// Renders the summary of one `ANALYZE <table>`: a headline with row count
/// and expected cardinality, then one grid row per column.
fn render_table_stats(ts: &orion_core::prelude::TableStats) -> String {
    let header: Vec<String> =
        ["col", "kind", "ndv", "nulls", "lo", "hi"].iter().map(|s| s.to_string()).collect();
    let fmt_f = |v: f64| format!("{v:.3}");
    let rows: Vec<Vec<String>> = ts
        .columns
        .iter()
        .map(|c| {
            let (lo, hi) = match (&c.bounds, c.hist.bounds.first(), c.hist.bounds.last()) {
                (Some(b), _, _) => (fmt_f(b.lo_min), fmt_f(b.hi_max)),
                (None, Some(&lo), Some(&hi)) => (fmt_f(lo), fmt_f(hi)),
                _ => ("NULL".to_string(), "NULL".to_string()),
            };
            vec![
                c.name.clone(),
                if c.uncertain { "uncertain" } else { "certain" }.to_string(),
                c.distinct.to_string(),
                c.nulls.to_string(),
                lo,
                hi,
            ]
        })
        .collect();
    format!(
        "ANALYZE {}: {} rows (expected cardinality {:.3})\n{}",
        ts.table,
        ts.rows,
        ts.exist_sum,
        render_grid(&header, &rows)
    )
}

/// Aligns a header and rows into a text grid. Embedded newlines and tabs
/// (e.g. the captured plan text in `orion.slow_queries`) are escaped so
/// every cell occupies exactly one grid line and alignment survives.
fn render_grid(header: &[String], rows: &[Vec<String>]) -> String {
    let escape = |c: &String| -> String {
        if c.contains(['\n', '\t']) {
            c.replace('\n', "\\n").replace('\t', "\\t")
        } else {
            c.clone()
        }
    };
    let rows: Vec<Vec<String>> = rows.iter().map(|r| r.iter().map(escape).collect()).collect();
    let rows = &rows;
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| -> String {
        let mut s = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(" {:width$} |", c, width = widths[i]));
        }
        s
    };
    let sep = {
        let mut s = String::from("+");
        for w in &widths {
            s.push_str(&"-".repeat(w + 2));
            s.push('+');
        }
        s
    };
    let mut out = String::new();
    out.push_str(&sep);
    out.push('\n');
    out.push_str(&line(header));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&line(row));
        out.push('\n');
    }
    out.push_str(&sep);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Database;

    #[test]
    fn renders_sensor_table() {
        let mut db = Database::new();
        db.execute("CREATE TABLE r (rid INT, v REAL UNCERTAIN)").unwrap();
        db.execute("INSERT INTO r VALUES (1, GAUSSIAN(20, 5))").unwrap();
        let out = db.execute("SELECT * FROM r").unwrap();
        let text = render_output(&out).unwrap();
        assert!(text.contains("rid"), "{text}");
        assert!(text.contains("Gaus(20,5)"), "{text}");
        assert!(!text.contains("Pr(exists)"), "full-mass table: {text}");
    }

    #[test]
    fn shows_existence_for_maybe_tuples() {
        let mut db = Database::new();
        db.execute("CREATE TABLE r (v REAL UNCERTAIN)").unwrap();
        db.execute("INSERT INTO r VALUES (DISCRETE(1:0.4))").unwrap();
        let out = db.execute("SELECT * FROM r").unwrap();
        let text = render_output(&out).unwrap();
        assert!(text.contains("Pr(exists)"), "{text}");
        assert!(text.contains("0.4000"), "{text}");
    }

    #[test]
    fn renders_analyze_summary() {
        let mut db = Database::new();
        db.execute("CREATE TABLE r (rid INT, v REAL UNCERTAIN)").unwrap();
        db.execute("INSERT INTO r VALUES (1, GAUSSIAN(20, 5)), (2, GAUSSIAN(30, 5))").unwrap();
        let out = db.execute("ANALYZE r").unwrap();
        let text = render_output(&out).unwrap();
        assert!(text.starts_with("ANALYZE r: 2 rows (expected cardinality 2.000)"), "{text}");
        assert!(text.contains("uncertain"), "{text}");
        assert!(text.contains("| rid"), "{text}");
    }

    #[test]
    fn renders_counts_and_ok() {
        assert_eq!(render_output(&Output::Count(2)).unwrap(), "2 tuple(s) affected");
        assert_eq!(render_output(&Output::Ok).unwrap(), "OK");
    }

    #[test]
    fn grid_alignment() {
        let g = render_grid(
            &["a".to_string(), "long_header".to_string()],
            &[vec!["xxxx".to_string(), "y".to_string()]],
        );
        for l in g.lines() {
            assert_eq!(l.len(), g.lines().next().unwrap().len(), "aligned: {g}");
        }
    }

    #[test]
    fn grid_escapes_multiline_cells() {
        let g = render_grid(&["plan".to_string()], &[vec!["Scan t\n  ThresholdPred".to_string()]]);
        assert!(g.contains("Scan t\\n  ThresholdPred"), "{g}");
        for l in g.lines() {
            assert_eq!(l.len(), g.lines().next().unwrap().len(), "aligned: {g}");
        }
    }
}
