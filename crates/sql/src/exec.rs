//! SQL execution: a [`Database`] session holding named relations, the
//! shared history registry, and execution options.

use crate::ast::*;
use crate::error::{Result, SqlError};
use crate::parser::parse;
use orion_core::agg;
use orion_core::join::join;
use orion_core::plan::{
    annotate_estimates, execute_profiled_with, plan_select_access, plan_threshold_access, Plan,
};
use orion_core::prelude::*;
use orion_core::project::project;
use orion_core::select::select_masked;
use orion_core::threshold::{
    predicate_probability, threshold_attrs, threshold_pred, threshold_pred_masked,
};
use orion_obs::{ExecStats, MetricsRegistry, OpProfile, Tracer, WorkloadRepo};
use orion_pdf::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Name prefix of the read-only system (virtual) tables.
pub const SYS_PREFIX: &str = "orion.";

/// Where an `EXPLAIN TRACE` query wrote its trace, plus a text rendering
/// of the spans it recorded.
#[derive(Debug, Clone)]
pub struct ExplainTrace {
    /// Path of the Chrome trace-event JSON file (open it in
    /// `chrome://tracing` or Perfetto).
    pub path: String,
    /// The recorded span tree (lanes, nested spans, durations).
    pub tree: String,
}

/// The result of executing one statement.
#[derive(Debug, Clone)]
pub enum Output {
    /// A probabilistic relation (SELECT of plain columns or `*`).
    Table(Relation),
    /// Computed rows (EXPECTED / PROB select items, aggregates).
    Rows { header: Vec<String>, rows: Vec<Vec<String>> },
    /// Number of affected tuples (INSERT / DELETE).
    Count(usize),
    /// Statement completed with nothing to return (CREATE / DROP).
    Ok,
    /// The statistics collected by `ANALYZE <table>` (a copy of what was
    /// installed into the session's stats catalog).
    Analyze(TableStats),
    /// The operator tree of an `EXPLAIN [ANALYZE | TRACE]` statement. With
    /// `analyze` the profile carries real execution stats; without, only
    /// the plan shape is meaningful. `trace` is set by `EXPLAIN TRACE`.
    Explain { profile: OpProfile, analyze: bool, trace: Option<ExplainTrace> },
}

/// An in-memory Orion SQL session.
pub struct Database {
    tables: HashMap<String, Relation>,
    reg: HistoryRegistry,
    opts: ExecOptions,
    stats: StatsCatalog,
    metrics: MetricsRegistry,
    io: Arc<IoStats>,
    txn_db: Option<SharedDurableDb>,
    workload: Option<Arc<WorkloadRepo>>,
    feedback: Arc<PlanFeedbackStore>,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// An empty database with default execution options.
    pub fn new() -> Self {
        Self::with_options(ExecOptions::default())
    }

    /// Overrides execution options (resolution, history maintenance, ...).
    /// A session without an index catalog gets a fresh private one, so
    /// `CREATE INDEX` and the access-path planner work out of the box.
    pub fn with_options(mut opts: ExecOptions) -> Self {
        if opts.indexes.is_none() {
            opts.indexes = Some(IndexHandle::new());
        }
        Database {
            tables: HashMap::new(),
            reg: HistoryRegistry::new(),
            opts,
            stats: StatsCatalog::new(),
            metrics: orion_obs::metrics::global().clone(),
            io: Arc::new(IoStats::default()),
            txn_db: None,
            workload: None,
            feedback: Arc::new(PlanFeedbackStore::new()),
        }
    }

    /// The session's stats catalog, filled by `ANALYZE` and surfaced by
    /// `orion.stats` / `EXPLAIN` cardinality estimates.
    pub fn stats_catalog(&self) -> &StatsCatalog {
        &self.stats
    }

    /// Replaces the registry behind `orion.metrics` (defaults to the
    /// process-wide one; cloning a registry shares its metrics).
    pub fn set_metrics(&mut self, metrics: MetricsRegistry) {
        self.metrics = metrics;
    }

    /// Attaches the buffer-pool counters behind `orion.io` (e.g. a durable
    /// engine's [`DurableDb::io_stats`](orion_core::durable::DurableDb::io_stats);
    /// defaults to a detached all-zero instance).
    pub fn set_io_stats(&mut self, io: Arc<IoStats>) {
        self.io = io;
    }

    /// Attaches a durable engine behind `orion.txns` (its live transaction
    /// registry; defaults to none, rendering an empty table).
    pub fn set_txn_db(&mut self, db: SharedDurableDb) {
        self.txn_db = Some(db);
    }

    /// Replaces the session's ANALYZE stats catalog (durable sessions seed
    /// their per-statement query databases with the session-held catalog).
    pub fn set_stats_catalog(&mut self, stats: StatsCatalog) {
        self.stats = stats;
    }

    /// Replaces the session's index catalog handle (durable sessions seed
    /// per-statement query databases with a snapshot of the engine's
    /// catalog; see [`IndexCatalog::snapshot`]).
    pub fn set_index_handle(&mut self, indexes: IndexHandle) {
        self.opts.indexes = Some(indexes);
    }

    /// The session's index catalog handle.
    pub fn index_handle(&self) -> IndexHandle {
        self.opts.indexes.clone().expect("seeded at construction")
    }

    /// Attaches the workload repository behind `orion.statements` /
    /// `orion.slow_queries` (durable sessions share the engine's instance;
    /// defaults to none, rendering empty tables).
    pub fn set_workload(&mut self, repo: Arc<WorkloadRepo>) {
        self.workload = Some(repo);
    }

    /// Replaces the planner-feedback store behind `orion.plan_feedback`.
    /// Defaults to a private instance; durable sessions attach the engine's
    /// so feedback accumulates across statements and sessions.
    pub fn set_plan_feedback(&mut self, store: Arc<PlanFeedbackStore>) {
        self.feedback = store;
    }

    /// The planner-feedback store profiled executions fold into.
    pub fn plan_feedback(&self) -> Arc<PlanFeedbackStore> {
        Arc::clone(&self.feedback)
    }

    /// Attaches a per-statement operator-stats collector: operators count
    /// pdf products/floors/marginalizations and index probes into it, and
    /// the session layer reads the deltas for the workload repository.
    pub fn set_exec_stats(&mut self, stats: Arc<ExecStats>) {
        self.opts.stats = Some(stats);
    }

    /// Bumps the staleness epoch of every index over `table` (DML makes
    /// built trees unsound: they carry tuple positions).
    fn note_index_mutation(&self, table: &str) {
        if let Some(h) = &self.opts.indexes {
            h.lock().note_mutation(table);
        }
    }

    /// Direct access to a stored relation.
    pub fn table(&self, name: &str) -> Option<&Relation> {
        self.tables.get(name)
    }

    /// Names of all stored tables (unordered).
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Registers an externally built relation (e.g. from a workload
    /// generator that used [`Database::registry_mut`]).
    pub fn register_table(&mut self, rel: Relation) {
        self.tables.insert(rel.name.clone(), rel);
    }

    /// The shared history registry.
    pub fn registry_mut(&mut self) -> &mut HistoryRegistry {
        &mut self.reg
    }

    /// Saves every table, the history registry, the ANALYZE stats catalog,
    /// and the secondary-index definitions to one file. Only index
    /// definitions are persisted — trees are rebuilt deterministically on
    /// first use after reopening.
    pub fn save(&self, path: &std::path::Path) -> Result<()> {
        let indexes = match &self.opts.indexes {
            Some(h) => h.lock().snapshot(),
            None => orion_core::pindex::IndexCatalog::new(),
        };
        orion_core::persist::save_snapshot_full(
            path,
            &self.tables,
            &self.reg,
            &self.stats,
            &indexes,
            0,
        )?;
        Ok(())
    }

    /// Opens a database previously written by [`Database::save`].
    pub fn open(path: &std::path::Path) -> Result<Self> {
        Self::open_with_options(path, ExecOptions::default())
    }

    /// Opens a saved database with specific execution options. Persisted
    /// index definitions are installed into the session's index handle (the
    /// caller-supplied one, if `opts` carries one).
    pub fn open_with_options(path: &std::path::Path, opts: ExecOptions) -> Result<Self> {
        let mut state = orion_core::persist::LoadState::default();
        orion_core::persist::load_into(path, &mut state)?;
        let stats = state.take_stats();
        let indexes = state.take_indexes();
        let (tables, reg) = state.finish();
        let mut db = Self::with_options(opts);
        db.tables = tables;
        db.reg = reg;
        db.stats = stats;
        if let Some(h) = &db.opts.indexes {
            let mut cat = h.lock();
            for def in indexes.defs() {
                cat.install(def.clone());
            }
        }
        Ok(db)
    }

    /// Parses and executes one statement.
    pub fn execute(&mut self, sql: &str) -> Result<Output> {
        let stmt = parse(sql)?;
        self.run(stmt)
    }

    pub(crate) fn run(&mut self, stmt: Statement) -> Result<Output> {
        match stmt {
            Statement::CreateTable { name, columns, correlated } => {
                if name.starts_with(SYS_PREFIX) {
                    return Err(SqlError::Exec(format!(
                        "the '{SYS_PREFIX}' namespace is reserved for system tables"
                    )));
                }
                if self.tables.contains_key(&name) {
                    return Err(SqlError::Exec(format!("table '{name}' already exists")));
                }
                let cols: Vec<(&str, ColumnType, bool)> =
                    columns.iter().map(|c| (c.name.as_str(), c.ty, c.uncertain)).collect();
                let groups: Vec<Vec<&str>> =
                    correlated.iter().map(|g| g.iter().map(|s| s.as_str()).collect()).collect();
                let schema = ProbSchema::new(cols, groups)?;
                self.tables.insert(name.clone(), Relation::new(name, schema));
                Ok(Output::Ok)
            }
            Statement::Insert { table, rows } => {
                let n = rows.len();
                for row in rows {
                    self.insert_row(&table, row)?;
                }
                self.note_index_mutation(&table);
                Ok(Output::Count(n))
            }
            Statement::Select { items, from, filter, distinct, order_by, limit } => {
                self.select(items, from, filter, distinct, order_by, limit)
            }
            Statement::Update { table, sets, filter } => self.update(table, sets, filter),
            Statement::Delete { table, filter } => {
                let pred = filter.map(|p| translate_pred(&p)).transpose()?;
                let rel = self
                    .tables
                    .get_mut(&table)
                    .ok_or_else(|| SqlError::Exec(format!("unknown table '{table}'")))?;
                // DELETE decides tuple-by-tuple on the certain attributes
                // (deleting by uncertain predicate would need user-specified
                // semantics: a tuple either stays or goes).
                let schema = rel.schema.clone();
                let removed = match pred {
                    None => {
                        let all = rel.len();
                        let reg = &mut self.reg;
                        rel.delete_where(reg, |_| true);
                        all
                    }
                    Some(p) => {
                        check_certain_pred(&schema, &p, "DELETE")?;
                        let reg = &mut self.reg;
                        rel.delete_where(reg, |t| certain_eval(&schema, t, &p))
                    }
                };
                self.note_index_mutation(&table);
                Ok(Output::Count(removed))
            }
            Statement::DropTable { name } => {
                let rel = self
                    .tables
                    .remove(&name)
                    .ok_or_else(|| SqlError::Exec(format!("unknown table '{name}'")))?;
                rel.release(&mut self.reg);
                self.stats.remove(&name);
                if let Some(h) = &self.opts.indexes {
                    h.lock().drop_table(&name);
                }
                Ok(Output::Ok)
            }
            Statement::CreateIndex { name, table, column, kind } => {
                let kind = translate_index_kind(kind.as_deref())?;
                let handle = self.index_handle();
                let def = orion_core::durable::validate_index_def(
                    &self.tables,
                    &handle,
                    &name,
                    &table,
                    &column,
                    kind,
                )?;
                handle.lock().create(def)?;
                Ok(Output::Ok)
            }
            Statement::DropIndex { name } => {
                self.index_handle().lock().drop_index(&name)?;
                Ok(Output::Ok)
            }
            Statement::Analyze { table } => {
                let rel = self
                    .tables
                    .get(&table)
                    .ok_or_else(|| SqlError::Exec(format!("unknown table '{table}'")))?;
                let ts = analyze_relation(rel)?;
                self.stats.insert(ts.clone());
                Ok(Output::Analyze(ts))
            }
            Statement::Explain { analyze, trace, inner } => self.explain(analyze, trace, *inner),
            Statement::Begin | Statement::Commit | Statement::Rollback => Err(SqlError::Exec(
                "transactions need a durable session (open one with DurableSession::open)".into(),
            )),
        }
    }

    /// `EXPLAIN [ANALYZE | TRACE] SELECT ...`: lowers the statement onto
    /// the core plan algebra and executes it with per-operator profiling.
    /// All forms run the query (the result relation is discarded); the
    /// plain form renders only the plan shape. `TRACE` additionally runs
    /// with the global tracer enabled and writes a Chrome trace-event JSON
    /// file (to `ORION_TRACE_FILE` if set, else the system temp dir).
    /// Post-relational stages (DISTINCT, ORDER BY, LIMIT, computed select
    /// items, aggregates) are not part of the operator algebra and are
    /// rejected.
    fn explain(&mut self, analyze: bool, trace: bool, inner: Statement) -> Result<Output> {
        let Statement::Select { items, from, filter, distinct, order_by, limit } = inner else {
            return Err(SqlError::Exec("EXPLAIN supports only SELECT statements".into()));
        };
        if distinct || order_by.is_some() || limit.is_some() {
            return Err(SqlError::Exec(
                "EXPLAIN covers the relational pipeline only \
                 (no DISTINCT / ORDER BY / LIMIT)"
                    .into(),
            ));
        }
        let scan_names: Vec<String> = match &from {
            FromClause::Table(name) => vec![name.clone()],
            FromClause::Join { left, right, .. } => vec![left.clone(), right.clone()],
        };
        let mut plan = match from {
            FromClause::Table(name) => Plan::Scan(name),
            FromClause::Join { left, right, on } => Plan::Join(
                Box::new(Plan::Scan(left)),
                Box::new(Plan::Scan(right)),
                on.map(|p| translate_pred(&p)).transpose()?,
            ),
        };
        // Mirror `select()`: one σ for all PWS conjuncts, then thresholds.
        if let Some(f) = filter {
            let mut pws_parts: Vec<Predicate> = Vec::new();
            let mut thresholds: Vec<Pred> = Vec::new();
            for c in split_conjuncts(f) {
                match c {
                    Pred::ProbThreshold(..) | Pred::AttrThreshold(..) => thresholds.push(c),
                    other => pws_parts.push(translate_pred(&other)?),
                }
            }
            if !pws_parts.is_empty() {
                let pred = if pws_parts.len() == 1 {
                    pws_parts.pop().expect("one part")
                } else {
                    Predicate::And(pws_parts)
                };
                plan = plan.select(pred);
            }
            for t in thresholds {
                plan = match t {
                    Pred::ProbThreshold(inner, op, p) => {
                        Plan::ThresholdPred(Box::new(plan), translate_pred(&inner)?, op, p)
                    }
                    Pred::AttrThreshold(attrs, op, p) => {
                        Plan::ThresholdAttrs(Box::new(plan), attrs, op, p)
                    }
                    _ => unreachable!("partitioned above"),
                };
            }
        }
        if !items.iter().any(|i| matches!(i, SelectItem::Wildcard)) {
            let cols: Vec<String> = items
                .iter()
                .map(|i| match i {
                    SelectItem::Column(c) => Ok(c.clone()),
                    other => Err(SqlError::Exec(format!(
                        "EXPLAIN covers the relational pipeline only \
                         (unsupported select item {other:?})"
                    ))),
                })
                .collect::<Result<_>>()?;
            plan = Plan::Project(Box::new(plan), cols);
        }
        // System tables join the plan like any stored relation: materialize
        // them into a merged table map scoped to this query.
        let mut vtables: Option<HashMap<String, Relation>> = None;
        for n in &scan_names {
            if let Some(rel) = self.virtual_table(n)? {
                vtables.get_or_insert_with(|| self.tables.clone()).insert(n.clone(), rel);
            }
        }
        let tables = vtables.as_ref().unwrap_or(&self.tables);
        // The result relation is discarded like any undisplayed SELECT
        // output (a bare Scan result holds no refs of its own, so an
        // explicit release here could over-release the stored table).
        if !trace {
            let (_rel, mut profile) =
                execute_profiled_with(&plan, tables, &mut self.reg, &self.opts, Some(&self.stats))?;
            annotate_estimates(&mut profile, &plan, &self.stats);
            self.feedback.fold(&profile, &plan);
            return Ok(Output::Explain { profile, analyze, trace: None });
        }
        let tracer = Tracer::global();
        let was_enabled = tracer.enabled();
        if !was_enabled {
            // Ambient tracing was off: start from empty rings so the file
            // holds exactly this query. When `ORION_TRACE=1` keep whatever
            // the process recorded so far (WAL, checkpoints) — the query's
            // spans are distinguished by their trace id.
            tracer.clear();
            tracer.set_enabled(true);
        }
        let query_id = tracer.begin_trace();
        let result =
            execute_profiled_with(&plan, tables, &mut self.reg, &self.opts, Some(&self.stats));
        if !was_enabled {
            tracer.set_enabled(false);
        }
        let (_rel, mut profile) = result?;
        annotate_estimates(&mut profile, &plan, &self.stats);
        self.feedback.fold(&profile, &plan);
        let path = match std::env::var_os("ORION_TRACE_FILE") {
            Some(p) => std::path::PathBuf::from(p),
            None => std::env::temp_dir().join(format!("orion-trace-{query_id}.json")),
        };
        tracer
            .write_chrome_trace(&path)
            .map_err(|e| SqlError::Exec(format!("cannot write trace file {path:?}: {e}")))?;
        let tree = tracer.render_span_tree(8);
        let info = ExplainTrace { path: path.display().to_string(), tree };
        Ok(Output::Explain { profile, analyze, trace: Some(info) })
    }

    /// Resolves a FROM name: system tables first, then stored relations.
    fn source(&self, name: &str) -> Result<Relation> {
        if let Some(rel) = self.virtual_table(name)? {
            return Ok(rel);
        }
        self.tables
            .get(name)
            .cloned()
            .ok_or_else(|| SqlError::Exec(format!("unknown table '{name}'")))
    }

    /// Materializes a system (`orion.*`) relation, `None` when `name` is
    /// outside the system namespace. The rows are a point-in-time snapshot;
    /// re-query to observe newer state.
    fn virtual_table(&self, name: &str) -> Result<Option<Relation>> {
        if !name.starts_with(SYS_PREFIX) {
            return Ok(None);
        }
        let rel = match name {
            "orion.tables" => self.sys_tables()?,
            "orion.columns" => self.sys_columns()?,
            "orion.stats" => self.sys_stats()?,
            "orion.indexes" => self.sys_indexes()?,
            "orion.metrics" => self.sys_metrics()?,
            "orion.io" => self.sys_io()?,
            "orion.trace_lanes" => self.sys_trace_lanes()?,
            "orion.txns" => self.sys_txns()?,
            "orion.statements" => self.sys_statements()?,
            "orion.slow_queries" => self.sys_slow_queries()?,
            "orion.plan_feedback" => self.sys_plan_feedback()?,
            other => {
                return Err(SqlError::Exec(format!(
                    "unknown system table '{other}' (available: orion.tables, orion.columns, \
                     orion.stats, orion.indexes, orion.metrics, orion.io, orion.trace_lanes, \
                     orion.txns, orion.statements, orion.slow_queries, orion.plan_feedback)"
                )))
            }
        };
        Ok(Some(rel))
    }

    /// Stored relations in name order (system-table row order is stable).
    fn sorted_user_tables(&self) -> Vec<&Relation> {
        let mut rels: Vec<&Relation> = self.tables.values().collect();
        rels.sort_by(|a, b| a.name.cmp(&b.name));
        rels
    }

    /// `orion.tables`: one row per stored table.
    fn sys_tables(&self) -> Result<Relation> {
        let mut rows = Vec::new();
        for rel in self.sorted_user_tables() {
            let analyzed = self.stats.get(&rel.name);
            rows.push(vec![
                Value::Text(rel.name.clone()),
                Value::Int(rel.len() as i64),
                Value::Int(rel.schema.columns().len() as i64),
                Value::Bool(analyzed.is_some()),
                analyzed.map_or(Value::Null, |ts| Value::Real(ts.exist_sum)),
            ]);
        }
        system_rel(
            "orion.tables",
            &[
                ("tbl", ColumnType::Text),
                ("rows", ColumnType::Int),
                ("cols", ColumnType::Int),
                ("analyzed", ColumnType::Bool),
                ("exist_sum", ColumnType::Real),
            ],
            rows,
        )
    }

    /// `orion.columns`: one row per column of every stored table.
    fn sys_columns(&self) -> Result<Relation> {
        let mut rows = Vec::new();
        for rel in self.sorted_user_tables() {
            for c in rel.schema.columns() {
                rows.push(vec![
                    Value::Text(rel.name.clone()),
                    Value::Text(c.name.clone()),
                    Value::Text(column_type_name(c.ty).to_string()),
                    Value::Bool(c.uncertain),
                ]);
            }
        }
        system_rel(
            "orion.columns",
            &[
                ("tbl", ColumnType::Text),
                ("col", ColumnType::Text),
                ("ty", ColumnType::Text),
                ("uncertain", ColumnType::Bool),
            ],
            rows,
        )
    }

    /// `orion.stats`: one row per analyzed column. `lo`/`hi` come from the
    /// cdf-bound summary for uncertain columns (histogram bounds otherwise);
    /// `width_mean` is the mean effective-support width (NULL for certain).
    fn sys_stats(&self) -> Result<Relation> {
        let mut rows = Vec::new();
        for ts in self.stats.iter() {
            for c in &ts.columns {
                let (lo, hi) = match (&c.bounds, c.hist.bounds.first(), c.hist.bounds.last()) {
                    (Some(b), _, _) => (Value::Real(b.lo_min), Value::Real(b.hi_max)),
                    (None, Some(&lo), Some(&hi)) => (Value::Real(lo), Value::Real(hi)),
                    _ => (Value::Null, Value::Null),
                };
                rows.push(vec![
                    Value::Text(ts.table.clone()),
                    Value::Text(c.name.clone()),
                    Value::Text(if c.uncertain { "uncertain" } else { "certain" }.to_string()),
                    Value::Int(ts.rows as i64),
                    Value::Int(c.distinct as i64),
                    Value::Int(c.nulls as i64),
                    lo,
                    hi,
                    c.bounds.as_ref().map_or(Value::Null, |b| Value::Real(b.width_mean)),
                ]);
            }
        }
        system_rel(
            "orion.stats",
            &[
                ("tbl", ColumnType::Text),
                ("col", ColumnType::Text),
                ("kind", ColumnType::Text),
                ("rows", ColumnType::Int),
                ("ndv", ColumnType::Int),
                ("nulls", ColumnType::Int),
                ("lo", ColumnType::Real),
                ("hi", ColumnType::Real),
                ("width_mean", ColumnType::Real),
            ],
            rows,
        )
    }

    /// `orion.indexes`: one row per secondary-index definition of the
    /// session's catalog. `pages` is the page count of the current built
    /// tree (0 when not built or stale); `epoch` is the owning table's
    /// staleness epoch (bumped by every DML batch against it).
    fn sys_indexes(&self) -> Result<Relation> {
        let mut rows = Vec::new();
        if let Some(handle) = &self.opts.indexes {
            let cat = handle.lock();
            for def in cat.defs() {
                let rel_len = self.tables.get(&def.table).map(|r| r.len());
                let pages = match rel_len {
                    Some(n) if cat.is_fresh(&def.name, n) => cat.built_pages(&def.name),
                    _ => 0,
                };
                rows.push(vec![
                    Value::Text(def.name.clone()),
                    Value::Text(def.table.clone()),
                    Value::Text(def.column.clone()),
                    Value::Text(def.kind.as_str().to_string()),
                    Value::Int(pages as i64),
                    Value::Int(cat.epoch(&def.table) as i64),
                ]);
            }
        }
        system_rel(
            "orion.indexes",
            &[
                ("name", ColumnType::Text),
                ("tbl", ColumnType::Text),
                ("col", ColumnType::Text),
                ("kind", ColumnType::Text),
                ("pages", ColumnType::Int),
                ("epoch", ColumnType::Int),
            ],
            rows,
        )
    }

    /// `orion.metrics`: one row per counter / histogram of the session's
    /// registry; values agree with `render_prometheus` on the same registry.
    fn sys_metrics(&self) -> Result<Relation> {
        let mut rows = Vec::new();
        for (name, v) in self.metrics.counters() {
            rows.push(vec![
                Value::Text(name),
                Value::Text("counter".to_string()),
                Value::Int(v as i64),
                Value::Null,
            ]);
        }
        for (name, h) in self.metrics.histograms() {
            rows.push(vec![
                Value::Text(name),
                Value::Text("histogram".to_string()),
                Value::Int(h.count as i64),
                Value::Real(h.sum as f64),
            ]);
        }
        system_rel(
            "orion.metrics",
            &[
                ("name", ColumnType::Text),
                ("kind", ColumnType::Text),
                ("count", ColumnType::Int),
                ("sum", ColumnType::Real),
            ],
            rows,
        )
    }

    /// `orion.io`: one row per buffer-pool counter.
    fn sys_io(&self) -> Result<Relation> {
        let s = self.io.snapshot();
        let counters: [(&str, u64); 9] = [
            ("physical_reads", s.physical_reads),
            ("physical_writes", s.physical_writes),
            ("cache_hits", s.cache_hits),
            ("cache_misses", s.cache_misses),
            ("evictions", s.evictions),
            ("torn_pages", s.torn_pages),
            ("write_errors", s.write_errors),
            ("ckpt_pages_copied", s.ckpt_pages_copied),
            ("ckpt_pages_skipped", s.ckpt_pages_skipped),
        ];
        system_rel(
            "orion.io",
            &[("counter", ColumnType::Text), ("value", ColumnType::Int)],
            counters
                .into_iter()
                .map(|(n, v)| vec![Value::Text(n.to_string()), Value::Int(v as i64)])
                .collect(),
        )
    }

    /// `orion.trace_lanes`: one row per registered tracer lane.
    fn sys_trace_lanes(&self) -> Result<Relation> {
        let rows = Tracer::global()
            .lane_stats()
            .into_iter()
            .map(|l| {
                vec![
                    Value::Text(l.name),
                    Value::Int(l.tid as i64),
                    Value::Int(l.events as i64),
                    Value::Int(l.dropped as i64),
                ]
            })
            .collect();
        system_rel(
            "orion.trace_lanes",
            &[
                ("lane", ColumnType::Text),
                ("tid", ColumnType::Int),
                ("events", ColumnType::Int),
                ("dropped", ColumnType::Int),
            ],
            rows,
        )
    }

    /// `orion.txns`: one row per live transaction of the attached durable
    /// engine (empty for detached in-memory sessions).
    fn sys_txns(&self) -> Result<Relation> {
        let rows = match &self.txn_db {
            None => Vec::new(),
            Some(db) => db
                .active_txns()
                .into_iter()
                .map(|t| {
                    vec![
                        Value::Int(t.id as i64),
                        Value::Int(t.snapshot_epoch as i64),
                        Value::Int(t.writes as i64),
                    ]
                })
                .collect(),
        };
        system_rel(
            "orion.txns",
            &[
                ("id", ColumnType::Int),
                ("snapshot_epoch", ColumnType::Int),
                ("writes", ColumnType::Int),
            ],
            rows,
        )
    }

    /// `orion.statements`: one row per statement fingerprint in the
    /// attached workload repository, heaviest (total latency) first.
    fn sys_statements(&self) -> Result<Relation> {
        let rows = match &self.workload {
            None => Vec::new(),
            Some(repo) => repo
                .statements()
                .into_iter()
                .map(|s| {
                    vec![
                        Value::Text(format!("{:016x}", s.fingerprint)),
                        Value::Text(s.text.clone()),
                        Value::Int(s.calls as i64),
                        Value::Int(s.errors as i64),
                        Value::Int(s.rows as i64),
                        Value::Real(s.total_nanos as f64 / 1e6),
                        Value::Real(s.mean_nanos() / 1e6),
                        Value::Real(s.p99_nanos() as f64 / 1e6),
                        Value::Int(s.pages_read as i64),
                        Value::Int(s.pdf_ops as i64),
                        Value::Int(s.index_probes as i64),
                        Value::Int(s.txn_retries as i64),
                    ]
                })
                .collect(),
        };
        system_rel(
            "orion.statements",
            &[
                ("fingerprint", ColumnType::Text),
                ("stmt", ColumnType::Text),
                ("calls", ColumnType::Int),
                ("errors", ColumnType::Int),
                ("rows", ColumnType::Int),
                ("total_ms", ColumnType::Real),
                ("mean_ms", ColumnType::Real),
                ("p99_ms", ColumnType::Real),
                ("pages_read", ColumnType::Int),
                ("pdf_ops", ColumnType::Int),
                ("index_probes", ColumnType::Int),
                ("txn_retries", ColumnType::Int),
            ],
            rows,
        )
    }

    /// `orion.slow_queries`: the attached repository's capture ring, oldest
    /// first, with the rendered `EXPLAIN ANALYZE` plan (chosen-vs-rejected
    /// access paths included) and the flight-recorder snippet.
    fn sys_slow_queries(&self) -> Result<Relation> {
        let rows = match &self.workload {
            None => Vec::new(),
            Some(repo) => repo
                .slow_queries()
                .into_iter()
                .map(|q| {
                    vec![
                        Value::Int(q.seq as i64),
                        Value::Text(format!("{:016x}", q.fingerprint)),
                        Value::Text(q.text.clone()),
                        Value::Real(q.nanos as f64 / 1e6),
                        Value::Int(q.rows as i64),
                        Value::Text(q.cause.as_str().to_string()),
                        Value::Text(q.plan.clone()),
                        Value::Text(q.trace.clone()),
                    ]
                })
                .collect(),
        };
        system_rel(
            "orion.slow_queries",
            &[
                ("seq", ColumnType::Int),
                ("fingerprint", ColumnType::Text),
                ("stmt", ColumnType::Text),
                ("ms", ColumnType::Real),
                ("rows", ColumnType::Int),
                ("cause", ColumnType::Text),
                ("plan", ColumnType::Text),
                ("trace", ColumnType::Text),
            ],
            rows,
        )
    }

    /// `orion.plan_feedback`: per-(table, operator) cardinality-misestimate
    /// summaries (q-error) from the session's feedback store, sorted by
    /// table then operator.
    fn sys_plan_feedback(&self) -> Result<Relation> {
        let rows = self
            .feedback
            .summaries()
            .into_iter()
            .map(|s| {
                vec![
                    Value::Text(s.table.clone()),
                    Value::Text(s.op.clone()),
                    Value::Int(s.n as i64),
                    Value::Real(s.max_q),
                    Value::Real(s.mean_q()),
                    Value::Int(s.last_est as i64),
                    Value::Int(s.last_actual as i64),
                ]
            })
            .collect();
        system_rel(
            "orion.plan_feedback",
            &[
                ("tbl", ColumnType::Text),
                ("op", ColumnType::Text),
                ("n", ColumnType::Int),
                ("max_q", ColumnType::Real),
                ("mean_q", ColumnType::Real),
                ("last_est", ColumnType::Int),
                ("last_actual", ColumnType::Int),
            ],
            rows,
        )
    }

    fn insert_row(&mut self, table: &str, row: Vec<InsertValue>) -> Result<()> {
        let rel = self
            .tables
            .get_mut(table)
            .ok_or_else(|| SqlError::Exec(format!("unknown table '{table}'")))?;
        let (certain, uncertain) = translate_insert_row(&rel.schema, row)?;
        let certain_refs: Vec<(&str, Value)> =
            certain.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
        let uncertain_refs: Vec<(Vec<&str>, JointPdf)> = uncertain
            .iter()
            .map(|(ns, j)| (ns.iter().map(|s| s.as_str()).collect(), j.clone()))
            .collect();
        rel.insert(&mut self.reg, &certain_refs, uncertain_refs)?;
        Ok(())
    }

    /// `UPDATE t SET col = v [WHERE pred]`: the predicate must be over
    /// certain columns (a tuple is either updated or not). Updating an
    /// uncertain column replaces its dependency set with a fresh base pdf
    /// (new history); updating one member of a correlated group is
    /// rejected — supply the whole group via JOINT.
    fn update(
        &mut self,
        table: String,
        sets: Vec<(String, InsertValue)>,
        filter: Option<Pred>,
    ) -> Result<Output> {
        let pred = filter.map(|p| translate_pred(&p)).transpose()?;
        let rel = self
            .tables
            .get_mut(&table)
            .ok_or_else(|| SqlError::Exec(format!("unknown table '{table}'")))?;
        let schema = rel.schema.clone();
        if let Some(p) = &pred {
            check_certain_pred(&schema, p, "UPDATE")?;
        }
        let assigns = translate_assignments(&schema, &sets)?;
        let mut updated = 0usize;
        for t in &mut rel.tuples {
            let keep = match &pred {
                None => true,
                Some(p) => certain_eval(&schema, t, p),
            };
            if !keep {
                continue;
            }
            updated += 1;
            for a in &assigns {
                match a {
                    Assign::Certain(idx, v) => t.certain[*idx] = v.clone(),
                    Assign::Node(group, joint) => {
                        // Replace the node covering the group with a fresh
                        // base pdf, releasing the old history.
                        let ni = t.node_index_for(group[0]).ok_or_else(|| {
                            SqlError::Exec("uncertain column lost its node".into())
                        })?;
                        let old = t.nodes[ni].clone();
                        self.reg.release_refs(&old.ancestors);
                        if old.ancestors.len() == 1 {
                            let id = *old.ancestors.iter().next().expect("one ancestor");
                            self.reg.delete_base(id);
                        }
                        let id = self.reg.register(group.clone(), joint.clone());
                        let anc: orion_core::history::Ancestors = [id].into_iter().collect();
                        self.reg.add_refs(&anc);
                        t.nodes[ni] =
                            orion_core::tuple::PdfNode::base(id, group, joint.clone(), anc);
                    }
                }
            }
        }
        self.note_index_mutation(&table);
        Ok(Output::Count(updated))
    }

    fn select(
        &mut self,
        items: Vec<SelectItem>,
        from: FromClause,
        filter: Option<Pred>,
        distinct: bool,
        order_by: Option<(String, bool)>,
        limit: Option<usize>,
    ) -> Result<Output> {
        // Build the input relation (system tables resolve like stored ones).
        let mut input = match from {
            FromClause::Table(name) => self.source(&name)?,
            FromClause::Join { left, right, on } => {
                let l = self.source(&left)?;
                let r = self.source(&right)?;
                let on_pred = on.map(|p| translate_pred(&p)).transpose()?;
                join(&l, &r, on_pred.as_ref(), &mut self.reg, &self.opts)?
            }
        };

        // Apply the WHERE clause: split top-level conjuncts into PWS
        // predicates and probability thresholds.
        if let Some(f) = filter {
            let conjuncts = split_conjuncts(f);
            let mut pws_parts: Vec<Predicate> = Vec::new();
            let mut thresholds: Vec<Pred> = Vec::new();
            for c in conjuncts {
                match c {
                    Pred::ProbThreshold(..) | Pred::AttrThreshold(..) => thresholds.push(c),
                    other => pws_parts.push(translate_pred(&other)?),
                }
            }
            if !pws_parts.is_empty() {
                let pred = if pws_parts.len() == 1 {
                    pws_parts.pop().expect("one part")
                } else {
                    Predicate::And(pws_parts)
                };
                // Access-path decision: an evx index over a certain-column
                // range predicate may supply a candidate mask (a proven
                // superset of the passing set, so results are unchanged).
                let ap = plan_select_access(&input, &pred, Some(&self.stats), &self.opts)?;
                input =
                    select_masked(&input, &pred, ap.mask.as_deref(), &mut self.reg, &self.opts)?;
            }
            for t in thresholds {
                input = match t {
                    Pred::ProbThreshold(inner, op, p) => {
                        let pred = translate_pred(&inner)?;
                        // Scan vs cdf-index threshold; a declined or
                        // unindexed path falls back to threshold_pred's
                        // transient support-interval pruning.
                        let ap = plan_threshold_access(
                            &input,
                            &pred,
                            op,
                            p,
                            Some(&self.stats),
                            &self.opts,
                        )?;
                        match ap.mask {
                            Some(m) => threshold_pred_masked(
                                &input,
                                &pred,
                                op,
                                p,
                                Some(&m),
                                &mut self.reg,
                                &self.opts,
                            )?,
                            None => {
                                threshold_pred(&input, &pred, op, p, &mut self.reg, &self.opts)?
                            }
                        }
                    }
                    Pred::AttrThreshold(attrs, op, p) => {
                        let refs: Vec<&str> = attrs.iter().map(|s| s.as_str()).collect();
                        threshold_attrs(&input, &refs, op, p, &mut self.reg, &self.opts)?
                    }
                    _ => unreachable!("partitioned above"),
                };
            }
        }

        // ORDER BY: certain columns sort by value; uncertain columns by
        // their conditional expectation.
        if let Some((col, desc)) = &order_by {
            let c = input
                .schema
                .column(col)
                .ok_or_else(|| SqlError::Exec(format!("unknown column '{col}'")))?
                .clone();
            let idx = input.schema.index_of(col).expect("column exists");
            let mut keyed: Vec<(f64, usize)> = Vec::with_capacity(input.len());
            for (ti, t) in input.tuples.iter().enumerate() {
                let key = if c.uncertain {
                    input.marginal(ti, col)?.expected_value().unwrap_or(f64::NEG_INFINITY)
                } else {
                    t.certain[idx].as_f64().unwrap_or(f64::NEG_INFINITY)
                };
                keyed.push((key, ti));
            }
            keyed.sort_by(|a, b| {
                let ord = a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal);
                if *desc {
                    ord.reverse()
                } else {
                    ord
                }
            });
            // Permute in place: pair keys with the owned tuples instead of
            // deep-cloning every pdf node just to reorder.
            let mut slots: Vec<Option<_>> =
                std::mem::take(&mut input.tuples).into_iter().map(Some).collect();
            input.tuples = keyed
                .into_iter()
                .map(|(_, ti)| slots[ti].take().expect("each index used once"))
                .collect();
        }
        if let Some(n) = limit {
            for t in input.tuples.drain(n.min(input.tuples.len())..) {
                for node in &t.nodes {
                    self.reg.release_refs(&node.ancestors);
                }
            }
        }
        // Resolve the SELECT list.
        if items.iter().any(SelectItem::is_aggregate) {
            if !items.iter().all(SelectItem::is_aggregate) {
                return Err(SqlError::Exec(
                    "aggregates cannot be mixed with per-tuple select items".into(),
                ));
            }
            let mut header = Vec::new();
            let mut row = Vec::new();
            for item in &items {
                match item {
                    SelectItem::CountAgg => {
                        header.push("ecount".to_string());
                        row.push(format!(
                            "{:.6}",
                            agg::count_expected(&input, &self.reg, &self.opts)?
                        ));
                    }
                    SelectItem::SumAgg(col) => {
                        header.push(format!("esum({col})"));
                        row.push(agg::sum_gaussian(&input, col)?.to_string());
                    }
                    SelectItem::AvgAgg(col) => {
                        header.push(format!("eavg({col})"));
                        row.push(match agg::avg_expected(&input, col)? {
                            Some(v) => format!("{v:.6}"),
                            None => "NULL".to_string(),
                        });
                    }
                    _ => unreachable!("all aggregates"),
                }
            }
            return Ok(Output::Rows { header, rows: vec![row] });
        }

        let computed = items.iter().any(|i| {
            matches!(
                i,
                SelectItem::Expected(_)
                    | SelectItem::ProbOf(_)
                    | SelectItem::Variance(_)
                    | SelectItem::Quantile(..)
                    | SelectItem::Median(_)
            )
        });
        if computed {
            // Mixed per-tuple computed output: render values per tuple.
            let mut header = Vec::new();
            for item in &items {
                match item {
                    SelectItem::Wildcard => {
                        for c in input.schema.columns() {
                            header.push(c.name.clone());
                        }
                    }
                    SelectItem::Column(c) => header.push(c.clone()),
                    SelectItem::Expected(c) => header.push(format!("expected({c})")),
                    SelectItem::Variance(c) => header.push(format!("variance({c})")),
                    SelectItem::Quantile(c, q) => header.push(format!("quantile({c},{q})")),
                    SelectItem::Median(c) => header.push(format!("median({c})")),
                    SelectItem::ProbOf(_) => header.push("prob".to_string()),
                    _ => unreachable!("aggregates handled above"),
                }
            }
            let mut rows = Vec::new();
            for (ti, t) in input.tuples.iter().enumerate() {
                let mut row = Vec::new();
                for item in &items {
                    match item {
                        SelectItem::Wildcard => {
                            for c in input.schema.columns() {
                                row.push(render_cell(&input, ti, &c.name)?);
                            }
                        }
                        SelectItem::Column(c) => row.push(render_cell(&input, ti, c)?),
                        SelectItem::Expected(c) => {
                            let col = input
                                .schema
                                .column(c)
                                .ok_or_else(|| SqlError::Exec(format!("unknown column '{c}'")))?;
                            let s = if col.uncertain {
                                match input.marginal(ti, c)?.expected_value() {
                                    Some(v) => format!("{v:.6}"),
                                    None => "NULL".to_string(),
                                }
                            } else {
                                t.certain[input.schema.index_of(c).expect("col")].to_string()
                            };
                            row.push(s);
                        }
                        SelectItem::Variance(c) => {
                            row.push(uncertain_stat(&input, ti, c, "VARIANCE", |m| m.variance())?);
                        }
                        SelectItem::Quantile(c, q) => {
                            let q = *q;
                            row.push(uncertain_stat(&input, ti, c, "QUANTILE", move |m| {
                                m.quantile(q)
                            })?);
                        }
                        SelectItem::Median(c) => {
                            row.push(uncertain_stat(&input, ti, c, "MEDIAN", |m| m.quantile(0.5))?);
                        }
                        SelectItem::ProbOf(p) => {
                            let pred = translate_pred(p)?;
                            let prob =
                                predicate_probability(&input, t, &pred, &self.reg, &self.opts)?;
                            row.push(format!("{prob:.6}"));
                        }
                        _ => unreachable!("aggregates handled above"),
                    }
                }
                rows.push(row);
            }
            return Ok(Output::Rows { header, rows });
        }

        // Plain relational output.
        let wildcard = items.iter().any(|i| matches!(i, SelectItem::Wildcard));
        if wildcard {
            if items.len() != 1 {
                return Err(SqlError::Exec("'*' cannot be combined with columns".into()));
            }
            if distinct {
                return Err(SqlError::Exec(
                    "DISTINCT requires an explicit certain-column projection".into(),
                ));
            }
            return Ok(Output::Table(input));
        }
        let cols: Vec<&str> = items
            .iter()
            .map(|i| match i {
                SelectItem::Column(c) => Ok(c.as_str()),
                other => Err(SqlError::Exec(format!("unsupported select item {other:?}"))),
            })
            .collect::<Result<_>>()?;
        let mut projected = project(&input, &cols, &mut self.reg, &self.opts)?;
        if distinct {
            // Probabilistic duplicate elimination induces complex
            // historical dependencies (the paper defers it as future
            // work): support only the classical case — every result tuple
            // fully certain and certainly present.
            let certain_ok = projected
                .tuples
                .iter()
                .all(|t| t.nodes.is_empty() && (t.naive_existence() - 1.0).abs() < 1e-12);
            if !certain_ok {
                return Err(SqlError::Exec(
                    "DISTINCT over uncertain data is not supported (probabilistic \
                     duplicate elimination is deferred, as in the paper); project to \
                     certain columns of certainly-present tuples first"
                        .into(),
                ));
            }
            let mut seen: std::collections::HashSet<Vec<orion_core::pws::CanonValue>> =
                Default::default();
            let mut kept = Vec::new();
            for t in projected.tuples.drain(..) {
                let key: Vec<orion_core::pws::CanonValue> =
                    t.certain.iter().map(orion_core::pws::CanonValue::from).collect();
                if seen.insert(key) {
                    kept.push(t);
                }
            }
            projected.tuples = kept;
        }
        Ok(Output::Table(projected))
    }
}

/// Display name of a column type (`orion.columns.ty` cells).
fn column_type_name(ty: ColumnType) -> &'static str {
    match ty {
        ColumnType::Int => "INT",
        ColumnType::Real => "REAL",
        ColumnType::Text => "TEXT",
        ColumnType::Bool => "BOOL",
    }
}

/// Builds one certain-only system relation from plain rows.
fn system_rel(name: &str, cols: &[(&str, ColumnType)], rows: Vec<Vec<Value>>) -> Result<Relation> {
    let defs: Vec<(&str, ColumnType, bool)> = cols.iter().map(|&(n, t)| (n, t, false)).collect();
    let schema = ProbSchema::new(defs, vec![])?;
    let mut rel = Relation::new(name, schema);
    // Certain-only rows register no pdfs, so a throwaway registry keeps the
    // session's history registry untouched.
    let mut reg = HistoryRegistry::new();
    for row in rows {
        let certain: Vec<(&str, Value)> = cols.iter().map(|&(n, _)| n).zip(row).collect();
        rel.insert_simple(&mut reg, &certain, &[])?;
    }
    Ok(rel)
}

/// Evaluates a per-tuple statistic over an uncertain column's marginal,
/// rendering `NULL` when the statistic is undefined.
fn uncertain_stat(
    rel: &Relation,
    tuple: usize,
    col: &str,
    what: &str,
    stat: impl Fn(&Pdf1) -> Option<f64>,
) -> Result<String> {
    let c =
        rel.schema.column(col).ok_or_else(|| SqlError::Exec(format!("unknown column '{col}'")))?;
    if !c.uncertain {
        // A certain value is a point mass: every statistic degenerates to
        // the obvious constant, consistent with EXPECTED's behavior.
        let v = &rel.tuples[tuple].certain[rel.schema.index_of(col).expect("col")];
        return match v.as_f64() {
            Some(x) => Ok(match stat(&Pdf1::certain(x)) {
                Some(r) => format!("{r:.6}"),
                None => "NULL".to_string(),
            }),
            None => Err(SqlError::Exec(format!("{what} over non-numeric certain column '{col}'"))),
        };
    }
    Ok(match stat(&rel.marginal(tuple, col)?) {
        Some(v) => format!("{v:.6}"),
        None => "NULL".to_string(),
    })
}

/// Renders one visible cell: certain value or pdf summary.
fn render_cell(rel: &Relation, tuple: usize, col: &str) -> Result<String> {
    let c =
        rel.schema.column(col).ok_or_else(|| SqlError::Exec(format!("unknown column '{col}'")))?;
    if c.uncertain {
        Ok(rel.marginal(tuple, col)?.to_string())
    } else {
        Ok(rel.tuples[tuple].certain[rel.schema.index_of(col).expect("col")].to_string())
    }
}

/// The uncertain half of a translated INSERT row: one `(column names,
/// joint pdf)` entry per dependency group.
pub(crate) type UncertainGroups = Vec<(Vec<String>, JointPdf)>;

/// Translates one INSERT row against a schema into the `(certain,
/// uncertain)` pairs [`Relation::insert`] expects. Walks columns in order;
/// a correlated group consumes ONE value (a JOINT constructor) at the
/// position of its first column. Shared by the in-memory [`Database`] and
/// the durable transactional session.
pub(crate) fn translate_insert_row(
    schema: &ProbSchema,
    row: Vec<InsertValue>,
) -> Result<(Vec<(String, Value)>, UncertainGroups)> {
    let mut certain: Vec<(String, Value)> = Vec::new();
    let mut uncertain: Vec<(Vec<String>, JointPdf)> = Vec::new();
    let mut vals = row.into_iter();
    let mut consumed: Vec<AttrId> = Vec::new();
    for col in schema.columns() {
        if consumed.contains(&col.id) {
            continue;
        }
        let v = vals.next().ok_or_else(|| SqlError::Exec("too few values in INSERT".into()))?;
        if !col.uncertain {
            certain.push((col.name.clone(), certain_literal(&v, col)?));
            continue;
        }
        // Uncertain: which dependency group does this column lead?
        let group = dep_group(schema, col.id);
        let names: Vec<String> = group
            .iter()
            .map(|id| schema.column_by_id(*id).expect("dep attr visible").name.clone())
            .collect();
        consumed.extend(&group);
        let joint = match v {
            InsertValue::Pdf(expr) => build_joint(&expr, group.len())?,
            InsertValue::Number(n) => {
                if group.len() != 1 {
                    return Err(SqlError::Exec(format!(
                        "correlated group led by '{}' needs a JOINT(...) value",
                        col.name
                    )));
                }
                JointPdf::from_pdf1(Pdf1::certain(n))
            }
            other => {
                return Err(SqlError::Exec(format!(
                    "uncertain column '{}' needs a pdf, got {other:?}",
                    col.name
                )))
            }
        };
        uncertain.push((names, joint));
    }
    if vals.next().is_some() {
        return Err(SqlError::Exec("too many values in INSERT".into()));
    }
    Ok((certain, uncertain))
}

/// One pre-validated UPDATE assignment.
pub(crate) enum Assign {
    /// Overwrite the certain value at this tuple index.
    Certain(usize, Value),
    /// Replace the node covering this dependency group with a fresh base
    /// pdf (new history).
    Node(Vec<AttrId>, JointPdf),
}

/// Pre-validates and pre-builds UPDATE assignments against a schema.
/// Updating one member of a correlated group is rejected — supply the
/// whole group via JOINT.
pub(crate) fn translate_assignments(
    schema: &ProbSchema,
    sets: &[(String, InsertValue)],
) -> Result<Vec<Assign>> {
    let mut assigns = Vec::with_capacity(sets.len());
    for (col_name, v) in sets {
        let col = schema
            .column(col_name)
            .ok_or_else(|| SqlError::Exec(format!("unknown column '{col_name}'")))?;
        if !col.uncertain {
            let val = certain_literal(v, col)?;
            assigns.push(Assign::Certain(schema.index_of(col_name).expect("column exists"), val));
            continue;
        }
        let group = dep_group(schema, col.id);
        let joint = match v {
            InsertValue::Pdf(expr) => build_joint(expr, group.len())?,
            InsertValue::Number(n) if group.len() == 1 => JointPdf::from_pdf1(Pdf1::certain(*n)),
            other => {
                return Err(SqlError::Exec(format!(
                    "uncertain column '{col_name}' needs a pdf \
                     (its correlated group has {} columns), got {other:?}",
                    group.len()
                )))
            }
        };
        assigns.push(Assign::Node(group, joint));
    }
    Ok(assigns)
}

/// Coerces an INSERT/UPDATE literal for a certain column.
fn certain_literal(v: &InsertValue, col: &Column) -> Result<Value> {
    Ok(match v {
        InsertValue::Null => Value::Null,
        InsertValue::Number(n) => match col.ty {
            ColumnType::Int => Value::Int(*n as i64),
            _ => Value::Real(*n),
        },
        InsertValue::Text(s) => Value::Text(s.clone()),
        InsertValue::Bool(b) => Value::Bool(*b),
        InsertValue::Pdf(_) => {
            return Err(SqlError::Exec(format!("column '{}' is certain; got a pdf", col.name)))
        }
    })
}

/// The dependency group a column belongs to (itself when independent).
fn dep_group(schema: &ProbSchema, id: AttrId) -> Vec<AttrId> {
    schema.deps().iter().find(|g| g.contains(&id)).cloned().unwrap_or_else(|| vec![id])
}

/// Resolves an optional `USING <kind>` clause to an [`IndexKind`].
pub(crate) fn translate_index_kind(kind: Option<&str>) -> Result<Option<IndexKind>> {
    match kind {
        None => Ok(None),
        Some(s) => IndexKind::parse(s).map(Some).ok_or_else(|| {
            SqlError::Exec(format!("unknown index kind '{s}' (expected 'evx' or 'cdf')"))
        }),
    }
}

/// Rejects DML predicates that touch uncertain columns (a tuple is either
/// affected or not; probabilistic DML would need user-specified
/// semantics).
pub(crate) fn check_certain_pred(schema: &ProbSchema, p: &Predicate, stmt: &str) -> Result<()> {
    for c in p.columns() {
        match schema.column(&c) {
            None => return Err(SqlError::Exec(format!("unknown column '{c}'"))),
            Some(col) if col.uncertain => {
                let hint = if stmt == "DELETE" {
                    "; use PROB() thresholds with SELECT instead"
                } else {
                    ""
                };
                return Err(SqlError::Exec(format!(
                    "{stmt} predicates must use certain columns ('{c}' is uncertain){hint}"
                )));
            }
            Some(_) => {}
        }
    }
    Ok(())
}

/// Evaluates a certain-column predicate against one tuple.
pub(crate) fn certain_eval(schema: &ProbSchema, t: &ProbTuple, p: &Predicate) -> bool {
    let lookup = |name: &str| -> Value {
        schema.index_of(name).map(|i| t.certain[i].clone()).unwrap_or(Value::Null)
    };
    p.eval(&lookup) == Some(true)
}

/// Splits a predicate's top-level AND into conjuncts.
fn split_conjuncts(p: Pred) -> Vec<Pred> {
    match p {
        Pred::And(ps) => ps.into_iter().flat_map(split_conjuncts).collect(),
        other => vec![other],
    }
}

/// Translates an AST predicate into an engine predicate. Threshold forms
/// are rejected here — they are only legal as top-level conjuncts.
pub fn translate_pred(p: &Pred) -> Result<Predicate> {
    let term = |t: &Term| -> Scalar {
        match t {
            Term::Col(c) => Scalar::Col(c.clone()),
            Term::Num(n) => Scalar::Lit(Value::Real(*n)),
            Term::Str(s) => Scalar::Lit(Value::Text(s.clone())),
            Term::Bool(b) => Scalar::Lit(Value::Bool(*b)),
            Term::Null => Scalar::Lit(Value::Null),
        }
    };
    Ok(match p {
        Pred::Cmp(a, op, b) => Predicate::Cmp(term(a), *op, term(b)),
        Pred::Between(col, lo, hi) => Predicate::And(vec![
            Predicate::cmp(col, CmpOp::Ge, *lo),
            Predicate::cmp(col, CmpOp::Le, *hi),
        ]),
        Pred::And(ps) => Predicate::And(ps.iter().map(translate_pred).collect::<Result<_>>()?),
        Pred::Or(ps) => Predicate::Or(ps.iter().map(translate_pred).collect::<Result<_>>()?),
        Pred::Not(inner) => Predicate::Not(Box::new(translate_pred(inner)?)),
        Pred::ProbThreshold(..) | Pred::AttrThreshold(..) => {
            return Err(SqlError::Exec(
                "PROB() thresholds must be top-level WHERE conjuncts".into(),
            ))
        }
    })
}

/// Builds the joint pdf for one dependency group from a constructor.
fn build_joint(expr: &PdfExpr, group_arity: usize) -> Result<JointPdf> {
    let single = |p: Pdf1| -> Result<JointPdf> {
        if group_arity != 1 {
            return Err(SqlError::Exec(format!(
                "correlated group of {group_arity} columns needs a JOINT(...) value"
            )));
        }
        Ok(JointPdf::from_pdf1(p))
    };
    match expr {
        PdfExpr::Gaussian(m, v) => single(Pdf1::gaussian(*m, *v)?),
        PdfExpr::Uniform(a, b) => single(Pdf1::uniform(*a, *b)?),
        PdfExpr::Exponential(r) => single(Pdf1::symbolic(Symbolic::exponential(*r)?)),
        PdfExpr::Poisson(l) => single(Pdf1::symbolic(Symbolic::poisson(*l)?)),
        PdfExpr::Binomial(n, p) => single(Pdf1::symbolic(Symbolic::binomial(*n, *p)?)),
        PdfExpr::Bernoulli(p) => single(Pdf1::symbolic(Symbolic::bernoulli(*p)?)),
        PdfExpr::Geometric(p) => single(Pdf1::symbolic(Symbolic::geometric(*p)?)),
        PdfExpr::Discrete(pts) => single(Pdf1::discrete(pts.clone())?),
        PdfExpr::Histogram { lo, width, masses } => {
            single(Pdf1::histogram(*lo, *width, masses.clone())?)
        }
        PdfExpr::Joint(pts) => {
            if pts.is_empty() {
                return Err(SqlError::Exec("JOINT needs at least one point".into()));
            }
            let arity = pts[0].0.len();
            if arity != group_arity {
                return Err(SqlError::Exec(format!(
                    "JOINT arity {arity} does not match correlated group of {group_arity}"
                )));
            }
            Ok(JointPdf::from_points(JointDiscrete::from_points(arity, pts.clone())?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sensor_db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE readings (rid INT, value REAL UNCERTAIN)").unwrap();
        db.execute(
            "INSERT INTO readings VALUES (1, GAUSSIAN(20, 5)), (2, GAUSSIAN(25, 4)), \
             (3, GAUSSIAN(13, 1))",
        )
        .unwrap();
        db
    }

    #[test]
    fn create_insert_select_roundtrip() {
        let mut db = sensor_db();
        let out = db.execute("SELECT * FROM readings WHERE rid = 2").unwrap();
        match out {
            Output::Table(rel) => {
                assert_eq!(rel.len(), 1);
                assert_eq!(rel.marginal(0, "value").unwrap().to_string(), "Gaus(25,4)");
            }
            other => panic!("wrong output: {other:?}"),
        }
    }

    #[test]
    fn uncertain_selection_floors() {
        let mut db = sensor_db();
        let out = db.execute("SELECT * FROM readings WHERE value < 20").unwrap();
        match out {
            Output::Table(rel) => {
                assert_eq!(rel.len(), 3);
                let m = rel.marginal(0, "value").unwrap();
                assert!((m.mass() - 0.5).abs() < 1e-9, "Gaus(20,5) floored at 20");
            }
            other => panic!("wrong output: {other:?}"),
        }
    }

    #[test]
    fn prob_threshold_query() {
        let mut db = sensor_db();
        let out =
            db.execute("SELECT * FROM readings WHERE PROB(value BETWEEN 18 AND 22) > 0.5").unwrap();
        match out {
            Output::Table(rel) => {
                assert_eq!(rel.len(), 1);
                assert_eq!(rel.value(0, "rid").unwrap(), &Value::Int(1));
            }
            other => panic!("wrong output: {other:?}"),
        }
    }

    #[test]
    fn expected_and_prob_items() {
        let mut db = sensor_db();
        let out =
            db.execute("SELECT rid, EXPECTED(value), PROB(value < 20) FROM readings").unwrap();
        match out {
            Output::Rows { header, rows } => {
                assert_eq!(header, vec!["rid", "expected(value)", "prob"]);
                assert_eq!(rows.len(), 3);
                assert_eq!(rows[0][0], "1");
                assert!((rows[0][1].parse::<f64>().unwrap() - 20.0).abs() < 1e-6);
                assert!((rows[0][2].parse::<f64>().unwrap() - 0.5).abs() < 1e-6);
                assert!(rows[2][2].parse::<f64>().unwrap() > 0.99, "Gaus(13,1) < 20");
            }
            other => panic!("wrong output: {other:?}"),
        }
    }

    #[test]
    fn aggregates() {
        let mut db = sensor_db();
        let out = db.execute("SELECT ECOUNT(*), ESUM(value), EAVG(value) FROM readings").unwrap();
        match out {
            Output::Rows { header, rows } => {
                assert_eq!(header[0], "ecount");
                assert!((rows[0][0].parse::<f64>().unwrap() - 3.0).abs() < 1e-6);
                assert!(rows[0][1].starts_with("Gaus(58,"), "sum = Gaus(58, 10): {}", rows[0][1]);
                assert!(
                    (rows[0][2].parse::<f64>().unwrap() - 58.0 / 3.0).abs() < 1e-4,
                    "avg: {}",
                    rows[0][2]
                );
            }
            other => panic!("wrong output: {other:?}"),
        }
    }

    #[test]
    fn correlated_group_with_joint_insert() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (a INT UNCERTAIN, b INT UNCERTAIN, CORRELATED (a, b))").unwrap();
        db.execute("INSERT INTO t VALUES (JOINT((4,5):0.9, (2,3):0.1))").unwrap();
        let rel = db.table("t").unwrap();
        assert_eq!(rel.tuples[0].nodes.len(), 1);
        assert_eq!(rel.tuples[0].nodes[0].dims.len(), 2);
        // Joint arity mismatch is rejected.
        assert!(db.execute("INSERT INTO t VALUES (JOINT((1):1.0))").is_err());
        // Plain pdf for a correlated group is rejected.
        assert!(db.execute("INSERT INTO t VALUES (GAUSSIAN(0,1))").is_err());
    }

    #[test]
    fn join_via_sql() {
        let mut db = Database::new();
        db.execute("CREATE TABLE l (id INT, x REAL UNCERTAIN)").unwrap();
        db.execute("CREATE TABLE r (id INT, y REAL UNCERTAIN)").unwrap();
        db.execute("INSERT INTO l VALUES (1, DISCRETE(1:0.5, 3:0.5))").unwrap();
        db.execute("INSERT INTO r VALUES (2, DISCRETE(2:0.5, 4:0.5))").unwrap();
        let out = db.execute("SELECT * FROM l JOIN r ON x < y").unwrap();
        match out {
            Output::Table(rel) => {
                assert_eq!(rel.len(), 1);
                assert!((rel.tuples[0].naive_existence() - 0.75).abs() < 1e-9);
                assert!(rel.schema.column("l.id").is_some(), "qualified on conflict");
            }
            other => panic!("wrong output: {other:?}"),
        }
    }

    #[test]
    fn delete_and_drop() {
        let mut db = sensor_db();
        let out = db.execute("DELETE FROM readings WHERE rid = 1").unwrap();
        assert!(matches!(out, Output::Count(1)));
        assert_eq!(db.table("readings").unwrap().len(), 2);
        // Uncertain predicate deletion is rejected.
        assert!(db.execute("DELETE FROM readings WHERE value < 20").is_err());
        db.execute("DROP TABLE readings").unwrap();
        assert!(db.table("readings").is_none());
        assert!(db.execute("SELECT * FROM readings").is_err());
    }

    #[test]
    fn certain_value_for_uncertain_column() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (x REAL UNCERTAIN)").unwrap();
        db.execute("INSERT INTO t VALUES (7.5)").unwrap();
        let m = db.table("t").unwrap().marginal(0, "x").unwrap();
        assert_eq!(m.density(7.5), 1.0);
    }

    #[test]
    fn insert_arity_errors() {
        let mut db = sensor_db();
        assert!(db.execute("INSERT INTO readings VALUES (4)").is_err());
        assert!(db.execute("INSERT INTO readings VALUES (4, GAUSSIAN(1,1), 9)").is_err());
        assert!(db.execute("INSERT INTO readings VALUES (GAUSSIAN(1,1), GAUSSIAN(1,1))").is_err());
    }

    #[test]
    fn null_for_certain_column() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (a INT, x REAL UNCERTAIN)").unwrap();
        db.execute("INSERT INTO t VALUES (NULL, UNIFORM(0, 1))").unwrap();
        assert_eq!(db.table("t").unwrap().value(0, "a").unwrap(), &Value::Null);
    }

    #[test]
    fn variance_median_quantile_items() {
        let mut db = sensor_db();
        let out = db
            .execute("SELECT rid, VARIANCE(value), MEDIAN(value), QUANTILE(value, 0.975) FROM readings WHERE rid = 1")
            .unwrap();
        let Output::Rows { header, rows } = out else { panic!("expected rows") };
        assert_eq!(header[1], "variance(value)");
        assert_eq!(header[2], "median(value)");
        assert!((rows[0][1].parse::<f64>().unwrap() - 5.0).abs() < 1e-6);
        assert!((rows[0][2].parse::<f64>().unwrap() - 20.0).abs() < 1e-6);
        // 97.5th percentile of Gaus(20,5): 20 + 1.96 * sqrt(5).
        let q = rows[0][3].parse::<f64>().unwrap();
        assert!((q - (20.0 + 1.959_964 * 5.0_f64.sqrt())).abs() < 1e-3, "q = {q}");
        assert!(db.execute("SELECT QUANTILE(value, 1.5) FROM readings").is_err());
        // Certain columns degenerate: variance 0, median = the value.
        let Output::Rows { rows, .. } =
            db.execute("SELECT VARIANCE(rid), MEDIAN(rid) FROM readings WHERE rid = 2").unwrap()
        else {
            panic!("expected rows")
        };
        assert!((rows[0][0].parse::<f64>().unwrap()).abs() < 1e-9);
        assert!((rows[0][1].parse::<f64>().unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn update_statement() {
        let mut db = sensor_db();
        let out = db.execute("UPDATE readings SET value = GAUSSIAN(99, 1) WHERE rid = 2").unwrap();
        assert!(matches!(out, Output::Count(1)));
        let m = db.table("readings").unwrap().marginal(1, "value").unwrap();
        assert_eq!(m.to_string(), "Gaus(99,1)");
        // Other tuples untouched.
        let m = db.table("readings").unwrap().marginal(0, "value").unwrap();
        assert_eq!(m.to_string(), "Gaus(20,5)");
        // Certain-column update.
        db.execute("UPDATE readings SET rid = 42 WHERE rid = 3").unwrap();
        assert_eq!(db.table("readings").unwrap().value(2, "rid").unwrap(), &Value::Int(42));
        // Uncertain predicate rejected.
        assert!(db.execute("UPDATE readings SET rid = 1 WHERE value < 5").is_err());
        // Pdf into certain column rejected.
        assert!(db.execute("UPDATE readings SET rid = GAUSSIAN(0,1)").is_err());
    }

    #[test]
    fn order_by_and_limit() {
        let mut db = sensor_db();
        let out = db.execute("SELECT rid FROM readings ORDER BY value DESC LIMIT 2").unwrap();
        match out {
            Output::Table(rel) => {
                // Expected values: 25 > 20 > 13.
                assert_eq!(rel.len(), 2);
                assert_eq!(rel.value(0, "rid").unwrap(), &Value::Int(2));
                assert_eq!(rel.value(1, "rid").unwrap(), &Value::Int(1));
            }
            other => panic!("wrong output: {other:?}"),
        }
        let out = db.execute("SELECT rid FROM readings ORDER BY rid ASC LIMIT 1").unwrap();
        match out {
            Output::Table(rel) => assert_eq!(rel.value(0, "rid").unwrap(), &Value::Int(1)),
            other => panic!("wrong output: {other:?}"),
        }
        assert!(db.execute("SELECT rid FROM readings LIMIT -1").is_err());
    }

    #[test]
    fn distinct_on_certain_columns() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (region TEXT, v REAL UNCERTAIN)").unwrap();
        db.execute(
            "INSERT INTO t VALUES ('a', GAUSSIAN(0,1)), ('a', GAUSSIAN(1,1)), \
             ('b', GAUSSIAN(2,1))",
        )
        .unwrap();
        let out = db.execute("SELECT DISTINCT region FROM t").unwrap();
        match out {
            Output::Table(rel) => assert_eq!(rel.len(), 2),
            other => panic!("wrong output: {other:?}"),
        }
        // DISTINCT over an uncertain projection is rejected (paper's
        // deferred duplicate elimination).
        assert!(db.execute("SELECT DISTINCT v FROM t").is_err());
        assert!(db.execute("SELECT DISTINCT * FROM t").is_err());
    }

    #[test]
    fn save_and_open_round_trip() {
        let dir = std::env::temp_dir().join("orion_sql_persist");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.orion");
        {
            let mut db = sensor_db();
            db.execute("CREATE TABLE tags (rid INT, label TEXT)").unwrap();
            db.execute("INSERT INTO tags VALUES (1, 'calibrated')").unwrap();
            db.save(&path).unwrap();
        }
        let mut db = Database::open(&path).unwrap();
        let out = db.execute("SELECT * FROM readings WHERE rid = 1").unwrap();
        match out {
            Output::Table(rel) => {
                assert_eq!(rel.marginal(0, "value").unwrap().to_string(), "Gaus(20,5)");
            }
            other => panic!("wrong output: {other:?}"),
        }
        // The reopened database accepts further statements and joins.
        let out =
            db.execute("SELECT * FROM readings JOIN tags ON readings.rid = tags.rid").unwrap();
        match out {
            Output::Table(rel) => assert_eq!(rel.len(), 1),
            other => panic!("wrong output: {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_and_open_keeps_index_definitions() {
        let dir = std::env::temp_dir().join("orion_sql_persist_ix");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.orion");
        {
            let mut db = sensor_db();
            db.execute("CREATE INDEX ix_val ON readings (value) USING cdf").unwrap();
            db.execute("CREATE INDEX ix_rid ON readings (rid)").unwrap();
            db.execute("DROP INDEX ix_rid").unwrap();
            db.save(&path).unwrap();
        }
        let mut db = Database::open(&path).unwrap();
        let Output::Table(rel) = db.execute("SELECT * FROM orion.indexes").unwrap() else {
            panic!("expected a table");
        };
        assert_eq!(rel.len(), 1, "only the surviving definition reloads");
        assert_eq!(rel.value(0, "name").unwrap(), &Value::Text("ix_val".into()));
        assert_eq!(rel.value(0, "kind").unwrap(), &Value::Text("cdf".into()));
        // The reloaded definition is usable: the planner can build and
        // probe it for a threshold query on the indexed column.
        let Output::Table(rel) =
            db.execute("SELECT rid FROM readings WHERE PROB(value > 18) >= 0.5").unwrap()
        else {
            panic!("expected a table");
        };
        assert!(!rel.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_and_open_round_trip_keeps_analyze_stats() {
        let dir = std::env::temp_dir().join("orion_sql_persist_stats");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.orion");
        let saved = {
            let mut db = sensor_db();
            db.execute("ANALYZE readings").unwrap();
            db.save(&path).unwrap();
            db.stats_catalog().get("readings").unwrap().clone()
        };
        let mut db = Database::open(&path).unwrap();
        let loaded = db.stats_catalog().get("readings").expect("stats survive save/open");
        assert_eq!(loaded, &saved);
        assert_eq!(loaded.encode(), saved.encode());
        // The reopened catalog feeds the virtual tables and the planner.
        let out = db.execute("SELECT analyzed FROM orion.tables WHERE tbl = 'readings'").unwrap();
        match out {
            Output::Table(rel) => {
                assert_eq!(rel.value(0, "analyzed").unwrap(), &Value::Bool(true));
            }
            other => panic!("wrong output: {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    /// Replaces the variable `time=...` token of each EXPLAIN ANALYZE row
    /// with `time=_` so the rest of the line can be compared exactly.
    fn normalize_times(text: &str) -> String {
        let mut out = String::new();
        for line in text.lines() {
            match line.find("time=") {
                Some(i) => {
                    out.push_str(&line[..i]);
                    out.push_str("time=_)");
                }
                None => out.push_str(line),
            }
            out.push('\n');
        }
        out
    }

    #[test]
    fn explain_analyze_golden_select_project_join() {
        let mut db = Database::new();
        db.execute("CREATE TABLE l (id INT, x REAL UNCERTAIN)").unwrap();
        db.execute("CREATE TABLE r (id INT, y REAL UNCERTAIN)").unwrap();
        db.execute("INSERT INTO l VALUES (1, DISCRETE(1:0.5, 3:0.5))").unwrap();
        db.execute("INSERT INTO r VALUES (2, DISCRETE(2:0.5, 4:0.5))").unwrap();
        let out = db.execute("EXPLAIN ANALYZE SELECT l.id FROM l JOIN r ON x < y").unwrap();
        let Output::Explain { profile, analyze, .. } = out else { panic!("expected explain") };
        assert!(analyze);
        // x < y merges the two independent nodes (one product) and floors
        // the merged joint once per surviving crossed tuple. Neither table
        // was analyzed, so the estimates are the documented magic defaults:
        // 1000 rows per scan, selectivity 1/3 for the join predicate.
        assert_eq!(
            normalize_times(&profile.render(true)),
            "Project [l.id]  (est=333333 actual=1 err=333332.00 \
             in=1 out=1 products=0 floors=0 marginalize=0 collapses=0 pruned=0 time=_)\n\
             └─ Join [x < y]  (est=333333 actual=1 err=333332.00 \
             in=2 out=1 products=1 floors=1 marginalize=0 collapses=0 pruned=0 time=_)\n\
             \u{20}  ├─ Scan [l]  (est=1000 actual=1 err=999.00 \
             in=0 out=1 products=0 floors=0 marginalize=0 collapses=0 pruned=0 time=_)\n\
             \u{20}  └─ Scan [r]  (est=1000 actual=1 err=999.00 \
             in=0 out=1 products=0 floors=0 marginalize=0 collapses=0 pruned=0 time=_)\n"
        );
    }

    #[test]
    fn explain_analyze_shows_worker_lanes_when_parallel() {
        // Tiny morsels force the parallel path even on a 3-row table; the
        // select node's stats must then carry per-worker lanes, and the
        // result must match the serial run exactly.
        let opts = ExecOptions { threads: 2, morsel_size: 1, ..ExecOptions::default() };
        let mut db = Database::with_options(opts);
        db.execute("CREATE TABLE readings (rid INT, value REAL UNCERTAIN)").unwrap();
        db.execute(
            "INSERT INTO readings VALUES (1, GAUSSIAN(20, 5)), (2, GAUSSIAN(25, 4)), \
             (3, GAUSSIAN(13, 1))",
        )
        .unwrap();
        let out = db.execute("EXPLAIN ANALYZE SELECT rid FROM readings WHERE value < 20").unwrap();
        let Output::Explain { profile, .. } = out else { panic!("expected explain") };
        let text = profile.render(true);
        assert!(text.contains("workers=["), "no worker lanes in:\n{text}");

        let mut serial = sensor_db();
        let Output::Table(a) = db.execute("SELECT rid FROM readings WHERE value < 20").unwrap()
        else {
            panic!("expected table")
        };
        let Output::Table(b) = serial.execute("SELECT rid FROM readings WHERE value < 20").unwrap()
        else {
            panic!("expected table")
        };
        assert_eq!(a.len(), b.len());
        for (ta, tb) in a.tuples.iter().zip(&b.tuples) {
            assert_eq!(ta.certain, tb.certain);
        }
    }

    #[test]
    fn explain_without_analyze_shows_plan_shape() {
        let mut db = sensor_db();
        // Un-analyzed: magic constants (1000 rows, selectivity 1/3).
        let out = db.execute("EXPLAIN SELECT rid FROM readings WHERE value < 20").unwrap();
        let Output::Explain { profile, analyze, .. } = out else { panic!("expected explain") };
        assert!(!analyze);
        assert_eq!(
            profile.render(false),
            "Project [rid]  (est_rows=333)\n\
             └─ Select [value < 20]  (est_rows=333)\n\
             \u{20}  └─ Scan [readings]  (est_rows=1000)\n"
        );
        // Analyzed: the scan knows its 3 rows and the selection estimate
        // comes from the expected-value histogram ({13, 20, 25} → 2 below
        // 20 with the equal-point correction).
        db.execute("ANALYZE readings").unwrap();
        let out = db.execute("EXPLAIN SELECT rid FROM readings WHERE value < 20").unwrap();
        let Output::Explain { profile, .. } = out else { panic!("expected explain") };
        assert_eq!(
            profile.render(false),
            "Project [rid]  (est_rows=2)\n\
             └─ Select [value < 20]  (est_rows=2)\n\
             \u{20}  └─ Scan [readings]  (est_rows=3)\n"
        );
    }

    #[test]
    fn explain_threshold_pipeline_and_rejections() {
        let mut db = sensor_db();
        let out = db
            .execute(
                "EXPLAIN ANALYZE SELECT * FROM readings \
                 WHERE PROB(value BETWEEN 18 AND 22) > 0.5",
            )
            .unwrap();
        let Output::Explain { profile, .. } = out else { panic!("expected explain") };
        assert_eq!(profile.name, "ThresholdPred");
        assert_eq!(profile.stats.tuples_in, 3);
        assert_eq!(profile.stats.tuples_out, 1);
        assert!(profile.stats.pdf_floors >= 3, "one floor per candidate tuple");
        // Non-SELECT and post-relational stages are rejected.
        assert!(db.execute("EXPLAIN DROP TABLE readings").is_err());
        assert!(db.execute("EXPLAIN SELECT rid FROM readings LIMIT 1").is_err());
        assert!(db.execute("EXPLAIN SELECT ECOUNT(*) FROM readings").is_err());
    }

    #[test]
    fn explain_trace_writes_validating_chrome_trace() {
        let mut db = sensor_db();
        let out = db.execute("EXPLAIN TRACE SELECT rid FROM readings WHERE value < 20").unwrap();
        let Output::Explain { analyze, trace, .. } = out else { panic!("expected explain") };
        assert!(!analyze, "TRACE is not ANALYZE");
        let info = trace.expect("EXPLAIN TRACE carries trace info");
        let text = std::fs::read_to_string(&info.path).unwrap();
        let doc = orion_obs::json::parse(&text).unwrap();
        orion_obs::validate_chrome_trace(&doc).unwrap();
        // The span tree names the operators that ran.
        assert!(info.tree.contains("Select"), "tree:\n{}", info.tree);
        assert!(info.tree.contains("Scan"), "tree:\n{}", info.tree);
        // Plain EXPLAIN carries no trace.
        let out = db.execute("EXPLAIN SELECT rid FROM readings").unwrap();
        let Output::Explain { trace, .. } = out else { panic!("expected explain") };
        assert!(trace.is_none());
        // Keep the file when CI pinned its location (check.sh validates it
        // with trace_check after the test run).
        if std::env::var_os("ORION_TRACE_FILE").is_none() {
            std::fs::remove_file(&info.path).ok();
        }
    }

    #[test]
    fn wildcard_with_columns_rejected() {
        let mut db = sensor_db();
        assert!(db.execute("SELECT *, rid FROM readings").is_err());
        assert!(db.execute("SELECT ECOUNT(*), rid FROM readings").is_err());
    }

    #[test]
    fn analyze_statement_collects_and_installs_stats() {
        let mut db = sensor_db();
        let Output::Analyze(ts) = db.execute("ANALYZE readings").unwrap() else {
            panic!("expected analyze output")
        };
        assert_eq!(ts.table, "readings");
        assert_eq!(ts.rows, 3);
        assert_eq!(db.stats_catalog().get("readings").unwrap(), &ts);
        assert!(db.execute("ANALYZE missing").is_err());
        // DROP TABLE drops the stats along with the data.
        db.execute("DROP TABLE readings").unwrap();
        assert!(db.stats_catalog().get("readings").is_none());
    }

    #[test]
    fn every_system_table_is_queryable_with_stable_schema() {
        let mut db = sensor_db();
        db.execute("ANALYZE readings").unwrap();
        let expect: &[(&str, &[&str])] = &[
            ("orion.tables", &["tbl", "rows", "cols", "analyzed", "exist_sum"]),
            ("orion.columns", &["tbl", "col", "ty", "uncertain"]),
            (
                "orion.stats",
                &["tbl", "col", "kind", "rows", "ndv", "nulls", "lo", "hi", "width_mean"],
            ),
            ("orion.indexes", &["name", "tbl", "col", "kind", "pages", "epoch"]),
            ("orion.metrics", &["name", "kind", "count", "sum"]),
            ("orion.io", &["counter", "value"]),
            ("orion.trace_lanes", &["lane", "tid", "events", "dropped"]),
            ("orion.txns", &["id", "snapshot_epoch", "writes"]),
            (
                "orion.statements",
                &[
                    "fingerprint",
                    "stmt",
                    "calls",
                    "errors",
                    "rows",
                    "total_ms",
                    "mean_ms",
                    "p99_ms",
                    "pages_read",
                    "pdf_ops",
                    "index_probes",
                    "txn_retries",
                ],
            ),
            (
                "orion.slow_queries",
                &["seq", "fingerprint", "stmt", "ms", "rows", "cause", "plan", "trace"],
            ),
            (
                "orion.plan_feedback",
                &["tbl", "op", "n", "max_q", "mean_q", "last_est", "last_actual"],
            ),
        ];
        for (table, cols) in expect {
            let Output::Table(rel) = db.execute(&format!("SELECT * FROM {table}")).unwrap() else {
                panic!("expected table from {table}")
            };
            let got: Vec<&str> = rel.schema.columns().iter().map(|c| c.name.as_str()).collect();
            assert_eq!(&got, cols, "{table}");
        }
        // Unknown system names error instead of falling through to user
        // tables, and the namespace is reserved against CREATE.
        assert!(db.execute("SELECT * FROM orion.nope").is_err());
        assert!(db.execute("CREATE TABLE orion.mine (a INT)").is_err());
    }

    #[test]
    fn workload_vtables_surface_attached_stores() {
        let mut db = sensor_db();
        db.execute("ANALYZE readings").unwrap();
        let repo = Arc::new(WorkloadRepo::default());
        repo.record(&orion_obs::ExecSample {
            fingerprint: 0xfeed,
            text: "SELECT rid FROM readings WHERE PROB(value < ?) > ?".to_string(),
            nanos: 2_000_000,
            rows: 3,
            ..Default::default()
        });
        db.set_workload(Arc::clone(&repo));
        // Detached database: the new vtables render empty, not error.
        let mut bare = Database::new();
        let Output::Table(rel) = bare.execute("SELECT * FROM orion.statements").unwrap() else {
            panic!("expected table")
        };
        assert_eq!(rel.len(), 0);

        let Output::Table(rel) = db.execute("SELECT * FROM orion.statements").unwrap() else {
            panic!("expected table")
        };
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.value(0, "fingerprint").unwrap(), &Value::Text("000000000000feed".into()));
        assert_eq!(rel.value(0, "calls").unwrap(), &Value::Int(1));
        assert_eq!(rel.value(0, "rows").unwrap(), &Value::Int(3));
        assert_eq!(rel.value(0, "total_ms").unwrap(), &Value::Real(2.0));

        // A profiled execution folds est-vs-actual into the feedback store.
        db.execute("EXPLAIN ANALYZE SELECT rid FROM readings WHERE PROB(value < 50) > 0.5")
            .unwrap();
        let Output::Table(fb) = db.execute("SELECT * FROM orion.plan_feedback").unwrap() else {
            panic!("expected table")
        };
        assert!(fb.len() >= 2, "Scan + ThresholdPred at least, got {}", fb.len());
        for i in 0..fb.len() {
            assert_eq!(fb.value(i, "tbl").unwrap(), &Value::Text("readings".into()));
            let Value::Real(q) = fb.value(i, "max_q").unwrap() else { panic!("max_q type") };
            assert!(*q >= 1.0, "q-error is >= 1");
        }
    }

    #[test]
    fn orion_tables_and_columns_golden_rows() {
        let mut db = sensor_db();
        let Output::Table(rel) = db.execute("SELECT * FROM orion.tables").unwrap() else {
            panic!("expected table")
        };
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.value(0, "tbl").unwrap(), &Value::Text("readings".into()));
        assert_eq!(rel.value(0, "rows").unwrap(), &Value::Int(3));
        assert_eq!(rel.value(0, "cols").unwrap(), &Value::Int(2));
        assert_eq!(rel.value(0, "analyzed").unwrap(), &Value::Bool(false));
        assert_eq!(rel.value(0, "exist_sum").unwrap(), &Value::Null);
        db.execute("ANALYZE readings").unwrap();
        let Output::Table(rel) = db.execute("SELECT * FROM orion.tables").unwrap() else {
            panic!("expected table")
        };
        assert_eq!(rel.value(0, "analyzed").unwrap(), &Value::Bool(true));
        assert_eq!(rel.value(0, "exist_sum").unwrap(), &Value::Real(3.0));

        let Output::Table(rel) = db.execute("SELECT * FROM orion.columns").unwrap() else {
            panic!("expected table")
        };
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.value(0, "col").unwrap(), &Value::Text("rid".into()));
        assert_eq!(rel.value(0, "ty").unwrap(), &Value::Text("INT".into()));
        assert_eq!(rel.value(0, "uncertain").unwrap(), &Value::Bool(false));
        assert_eq!(rel.value(1, "col").unwrap(), &Value::Text("value".into()));
        assert_eq!(rel.value(1, "ty").unwrap(), &Value::Text("REAL".into()));
        assert_eq!(rel.value(1, "uncertain").unwrap(), &Value::Bool(true));
    }

    #[test]
    fn orion_stats_reflects_analyze_and_joins_with_user_tables() {
        let mut db = sensor_db();
        // Before ANALYZE the stats table is empty; after, one row per column.
        let Output::Table(rel) = db.execute("SELECT * FROM orion.stats").unwrap() else {
            panic!("expected table")
        };
        assert_eq!(rel.len(), 0);
        db.execute("ANALYZE readings").unwrap();
        let Output::Table(rel) = db.execute("SELECT * FROM orion.stats").unwrap() else {
            panic!("expected table")
        };
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.value(0, "kind").unwrap(), &Value::Text("certain".into()));
        assert_eq!(rel.value(0, "ndv").unwrap(), &Value::Int(3));
        assert_eq!(rel.value(1, "kind").unwrap(), &Value::Text("uncertain".into()));
        let Value::Real(w) = rel.value(1, "width_mean").unwrap() else {
            panic!("uncertain column carries a width")
        };
        assert!(*w > 0.0);

        // System relations participate in ordinary joins with user tables.
        db.execute("CREATE TABLE cal (colname TEXT, factor REAL)").unwrap();
        db.execute("INSERT INTO cal VALUES ('value', 2.0)").unwrap();
        let Output::Table(rel) = db
            .execute("SELECT col, kind, factor FROM orion.stats JOIN cal ON col = colname")
            .unwrap()
        else {
            panic!("expected table")
        };
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.value(0, "col").unwrap(), &Value::Text("value".into()));
        assert_eq!(rel.value(0, "kind").unwrap(), &Value::Text("uncertain".into()));
    }

    #[test]
    fn orion_metrics_rows_match_prometheus_export() {
        let mut db = sensor_db();
        // A private registry keeps this deterministic under parallel tests.
        let reg = MetricsRegistry::new();
        reg.counter("probe_a").add(7);
        reg.counter("probe_b").add(0);
        reg.histogram("probe_lat").record(5);
        db.set_metrics(reg.clone());
        let Output::Table(rel) = db.execute("SELECT * FROM orion.metrics").unwrap() else {
            panic!("expected table")
        };
        assert_eq!(rel.len(), 3);
        // Every row must agree with the Prometheus exposition of the same
        // registry (the check.sh consistency gate).
        let prom = reg.render_prometheus();
        for ti in 0..rel.len() {
            let Value::Text(name) = rel.value(ti, "name").unwrap() else { panic!("text name") };
            let Value::Text(kind) = rel.value(ti, "kind").unwrap() else { panic!("text kind") };
            let Value::Int(count) = rel.value(ti, "count").unwrap() else { panic!("int count") };
            let sanitized: String = name
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() || c == ':' { c } else { '_' })
                .collect();
            let needle = match kind.as_str() {
                "counter" => format!("\n{sanitized} {count}\n"),
                _ => format!("{sanitized}_count {count}\n"),
            };
            assert!(prom.contains(&needle), "row {name}={count} not in exposition:\n{prom}");
        }
    }

    #[test]
    fn orion_io_and_trace_lanes_are_queryable() {
        let mut db = sensor_db();
        let Output::Table(rel) = db.execute("SELECT * FROM orion.io").unwrap() else {
            panic!("expected table")
        };
        assert_eq!(rel.len(), 9, "one row per buffer-pool counter");
        assert_eq!(rel.value(0, "counter").unwrap(), &Value::Text("physical_reads".into()));
        assert_eq!(rel.value(0, "value").unwrap(), &Value::Int(0), "detached io defaults to zero");
        // Attached counters surface through the same query.
        let io = Arc::new(IoStats::default());
        io.cache_hits.add(5);
        db.set_io_stats(Arc::clone(&io));
        let Output::Table(rel) =
            db.execute("SELECT value FROM orion.io WHERE counter = 'cache_hits'").unwrap()
        else {
            panic!("expected table")
        };
        assert_eq!(rel.value(0, "value").unwrap(), &Value::Int(5));
        // trace_lanes executes with a stable schema regardless of whether
        // the global tracer has registered lanes in this process.
        let Output::Table(_) = db.execute("SELECT * FROM orion.trace_lanes").unwrap() else {
            panic!("expected table")
        };
    }

    #[test]
    fn explain_analyze_over_system_table_estimates() {
        let mut db = sensor_db();
        db.execute("ANALYZE readings").unwrap();
        // Virtual scans work under EXPLAIN ANALYZE; est falls back to the
        // magic constant because system tables are never analyzed.
        let out = db.execute("EXPLAIN ANALYZE SELECT col FROM orion.stats").unwrap();
        let Output::Explain { profile, .. } = out else { panic!("expected explain") };
        assert_eq!(profile.stats.tuples_out, 2);
        assert_eq!(profile.est_rows, Some(1000));
    }

    #[test]
    fn index_ddl_lifecycle_and_vtable() {
        let mut db = sensor_db();
        // Kind defaults by column certainty; explicit kinds are validated.
        db.execute("CREATE INDEX ix_val ON readings (value)").unwrap();
        db.execute("CREATE INDEX ix_rid ON readings (rid) USING evx").unwrap();
        assert!(db.execute("CREATE INDEX ix_val ON readings (value)").is_err(), "dup name");
        assert!(db.execute("CREATE INDEX ix2 ON readings (value) USING evx").is_err());
        assert!(db.execute("CREATE INDEX ix2 ON readings (rid) USING cdf").is_err());
        assert!(db.execute("CREATE INDEX ix2 ON readings (nope)").is_err(), "unknown column");
        assert!(db.execute("CREATE INDEX ix2 ON missing (rid)").is_err(), "unknown table");
        let Output::Table(rel) = db.execute("SELECT * FROM orion.indexes").unwrap() else {
            panic!("expected table")
        };
        assert_eq!(rel.len(), 2, "name-ordered rows");
        assert_eq!(rel.value(0, "name").unwrap(), &Value::Text("ix_rid".into()));
        assert_eq!(rel.value(0, "kind").unwrap(), &Value::Text("evx".into()));
        assert_eq!(rel.value(1, "name").unwrap(), &Value::Text("ix_val".into()));
        assert_eq!(rel.value(1, "kind").unwrap(), &Value::Text("cdf".into()));
        assert_eq!(rel.value(1, "epoch").unwrap(), &Value::Int(0));
        // DML bumps the staleness epoch of every index over the table.
        db.execute("INSERT INTO readings VALUES (4, GAUSSIAN(30, 2))").unwrap();
        let Output::Table(rel) = db.execute("SELECT * FROM orion.indexes").unwrap() else {
            panic!("expected table")
        };
        assert_eq!(rel.value(1, "epoch").unwrap(), &Value::Int(1));
        db.execute("DROP INDEX ix_val").unwrap();
        assert!(db.execute("DROP INDEX ix_val").is_err(), "already dropped");
        // DROP TABLE sweeps the catalog.
        db.execute("DROP TABLE readings").unwrap();
        let Output::Table(rel) = db.execute("SELECT * FROM orion.indexes").unwrap() else {
            panic!("expected table")
        };
        assert_eq!(rel.len(), 0);
    }

    /// The access-path planner never changes results: an indexed threshold
    /// query returns exactly what the seed scan returns, under both planner
    /// modes, and EXPLAIN surfaces the priced alternatives.
    #[test]
    fn indexed_threshold_matches_scan_and_explains_paths() {
        let rows: Vec<String> =
            (0..60).map(|i| format!("({i}, GAUSSIAN({}, 2))", (i % 20) * 10)).collect();
        let sql_insert = format!("INSERT INTO t VALUES {}", rows.join(", "));
        let run = |planner: PlannerMode, indexed: bool| -> Vec<i64> {
            let opts = ExecOptions { planner, ..ExecOptions::default() };
            let mut db = Database::with_options(opts);
            db.execute("CREATE TABLE t (rid INT, v REAL UNCERTAIN)").unwrap();
            db.execute(&sql_insert).unwrap();
            db.execute("ANALYZE t").unwrap();
            if indexed {
                db.execute("CREATE INDEX ix_v ON t (v) USING cdf").unwrap();
            }
            let out = db.execute("SELECT rid FROM t WHERE PROB(v > 150) > 0.5").unwrap();
            let Output::Table(rel) = out else { panic!("expected table") };
            (0..rel.len())
                .map(|i| match rel.value(i, "rid").unwrap() {
                    Value::Int(v) => *v,
                    other => panic!("expected int, got {other:?}"),
                })
                .collect()
        };
        let scan = run(PlannerMode::Cost, false);
        assert!(!scan.is_empty() && scan.len() < 60, "selective query: {scan:?}");
        assert_eq!(run(PlannerMode::Cost, true), scan);
        assert_eq!(run(PlannerMode::Rule, true), scan);
        // EXPLAIN prices both paths on the indexed session.
        let mut db = Database::with_options(ExecOptions {
            planner: PlannerMode::Cost,
            ..Default::default()
        });
        db.execute("CREATE TABLE t (rid INT, v REAL UNCERTAIN)").unwrap();
        db.execute(&sql_insert).unwrap();
        db.execute("ANALYZE t").unwrap();
        db.execute("CREATE INDEX ix_v ON t (v) USING cdf").unwrap();
        let Output::Explain { profile, .. } =
            db.execute("EXPLAIN SELECT * FROM t WHERE PROB(v > 150) > 0.5").unwrap()
        else {
            panic!("expected explain")
        };
        let rendered = profile.render(false);
        assert!(rendered.contains("paths: scan="), "{rendered}");
        assert!(rendered.contains("index-threshold(ix_v)"), "{rendered}");
    }
}
