//! SQL front-end error type.

use orion_core::error::EngineError;
use std::fmt;

/// Errors from lexing, parsing, or executing Orion SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexer failure.
    Lex(String),
    /// Parser failure.
    Parse(String),
    /// Semantic / execution failure.
    Exec(String),
    /// Engine-level failure.
    Engine(EngineError),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex(m) => write!(f, "lex error: {m}"),
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::Exec(m) => write!(f, "execution error: {m}"),
            SqlError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<EngineError> for SqlError {
    fn from(e: EngineError) -> Self {
        SqlError::Engine(e)
    }
}

impl From<orion_pdf::error::PdfError> for SqlError {
    fn from(e: orion_pdf::error::PdfError) -> Self {
        SqlError::Engine(EngineError::Pdf(e))
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, SqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = SqlError::Parse("expected FROM".into());
        assert_eq!(e.to_string(), "parse error: expected FROM");
        let e: SqlError = EngineError::Operator("x".into()).into();
        assert!(matches!(e, SqlError::Engine(_)));
    }
}
