//! Statement fingerprinting for the workload repository.
//!
//! A fingerprint identifies the *shape* of a statement: the parsed AST is
//! rendered back to canonical SQL-ish text with every literal (numbers,
//! strings, booleans, pdf parameters, probability thresholds, LIMIT counts)
//! replaced by `?`, and the result is FNV-1a-hashed. Two executions of the
//! same statement that differ only in literal values — `PROB(v < 40) > 0.3`
//! vs `PROB(v < 60) > 0.9` — share a fingerprint and accumulate into one
//! repository entry, while any structural change (different columns, a pdf
//! constructor swapped for another, an added conjunct) produces a new one.
//!
//! Two deliberate collapses go beyond single literals: an INSERT's row
//! *list* normalizes to its first row's shape (batch size is workload, not
//! statement, structure), and the variable-length literal lists of
//! `DISCRETE`/`HISTOGRAM`/`JOINT` constructors collapse to one `?`.

use crate::ast::{FromClause, InsertValue, PdfExpr, Pred, SelectItem, Statement, Term};
use orion_core::prelude::CmpOp;

/// Fingerprints a statement: `(hash, normalized_text)`. The hash is FNV-1a
/// 64 of the normalized text, so equal texts — and only equal texts —
/// collide.
pub fn fingerprint(stmt: &Statement) -> (u64, String) {
    let text = normalize(stmt);
    (fnv1a(text.as_bytes()), text)
}

/// Renders a statement as canonical text with literals replaced by `?`.
pub fn normalize(stmt: &Statement) -> String {
    let mut out = String::new();
    write_stmt(&mut out, stmt);
    out
}

fn write_stmt(out: &mut String, stmt: &Statement) {
    match stmt {
        Statement::CreateTable { name, columns, correlated } => {
            // Schema is pure structure: nothing to normalize away.
            out.push_str("CREATE TABLE ");
            out.push_str(name);
            out.push_str(" (");
            for (i, c) in columns.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&c.name);
                out.push_str(&format!(" {:?}", c.ty));
                if c.uncertain {
                    out.push_str(" UNCERTAIN");
                }
            }
            for group in correlated {
                out.push_str(", CORRELATED (");
                out.push_str(&group.join(", "));
                out.push(')');
            }
            out.push(')');
        }
        Statement::Insert { table, rows } => {
            out.push_str("INSERT INTO ");
            out.push_str(table);
            out.push_str(" VALUES (");
            // First row's shape stands for the batch: pdf constructor names
            // are structure, their parameters (and the batch size) are not.
            if let Some(row) = rows.first() {
                for (i, v) in row.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_insert_value(out, v);
                }
            }
            out.push(')');
        }
        Statement::Select { items, from, filter, distinct, order_by, limit } => {
            out.push_str("SELECT ");
            if *distinct {
                out.push_str("DISTINCT ");
            }
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_item(out, item);
            }
            out.push_str(" FROM ");
            match from {
                FromClause::Table(t) => out.push_str(t),
                FromClause::Join { left, right, on } => {
                    out.push_str(left);
                    out.push_str(" JOIN ");
                    out.push_str(right);
                    if let Some(p) = on {
                        out.push_str(" ON ");
                        write_pred(out, p);
                    }
                }
            }
            if let Some(p) = filter {
                out.push_str(" WHERE ");
                write_pred(out, p);
            }
            if let Some((col, desc)) = order_by {
                out.push_str(" ORDER BY ");
                out.push_str(col);
                if *desc {
                    out.push_str(" DESC");
                }
            }
            if limit.is_some() {
                out.push_str(" LIMIT ?");
            }
        }
        Statement::Update { table, sets, filter } => {
            out.push_str("UPDATE ");
            out.push_str(table);
            out.push_str(" SET ");
            for (i, (col, v)) in sets.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(col);
                out.push_str(" = ");
                write_insert_value(out, v);
            }
            if let Some(p) = filter {
                out.push_str(" WHERE ");
                write_pred(out, p);
            }
        }
        Statement::Delete { table, filter } => {
            out.push_str("DELETE FROM ");
            out.push_str(table);
            if let Some(p) = filter {
                out.push_str(" WHERE ");
                write_pred(out, p);
            }
        }
        Statement::DropTable { name } => {
            out.push_str("DROP TABLE ");
            out.push_str(name);
        }
        Statement::CreateIndex { name, table, column, kind } => {
            out.push_str("CREATE INDEX ");
            out.push_str(name);
            out.push_str(" ON ");
            out.push_str(table);
            out.push_str(" (");
            out.push_str(column);
            out.push(')');
            if let Some(k) = kind {
                out.push_str(" USING ");
                out.push_str(k);
            }
        }
        Statement::DropIndex { name } => {
            out.push_str("DROP INDEX ");
            out.push_str(name);
        }
        Statement::Analyze { table } => {
            out.push_str("ANALYZE ");
            out.push_str(table);
        }
        Statement::Explain { analyze, trace, inner } => {
            out.push_str("EXPLAIN ");
            if *analyze {
                out.push_str("ANALYZE ");
            }
            if *trace {
                out.push_str("TRACE ");
            }
            write_stmt(out, inner);
        }
        Statement::Begin => out.push_str("BEGIN"),
        Statement::Commit => out.push_str("COMMIT"),
        Statement::Rollback => out.push_str("ROLLBACK"),
    }
}

fn write_insert_value(out: &mut String, v: &InsertValue) {
    match v {
        // Every certain literal — NULL included — is a value, not shape.
        InsertValue::Null
        | InsertValue::Number(_)
        | InsertValue::Text(_)
        | InsertValue::Bool(_) => out.push('?'),
        InsertValue::Pdf(p) => write_pdf(out, p),
    }
}

fn write_pdf(out: &mut String, p: &PdfExpr) {
    // The constructor name is structure; its parameters (including the
    // variable-length value lists) are literals.
    let name = match p {
        PdfExpr::Gaussian(..) => "GAUSSIAN",
        PdfExpr::Uniform(..) => "UNIFORM",
        PdfExpr::Exponential(_) => "EXPONENTIAL",
        PdfExpr::Poisson(_) => "POISSON",
        PdfExpr::Binomial(..) => "BINOMIAL",
        PdfExpr::Bernoulli(_) => "BERNOULLI",
        PdfExpr::Geometric(_) => "GEOMETRIC",
        PdfExpr::Discrete(_) => "DISCRETE",
        PdfExpr::Histogram { .. } => "HISTOGRAM",
        PdfExpr::Joint(_) => "JOINT",
    };
    out.push_str(name);
    out.push_str("(?)");
}

fn write_item(out: &mut String, item: &SelectItem) {
    match item {
        SelectItem::Wildcard => out.push('*'),
        SelectItem::Column(c) => out.push_str(c),
        SelectItem::Expected(c) => {
            out.push_str("EXPECTED(");
            out.push_str(c);
            out.push(')');
        }
        SelectItem::Variance(c) => {
            out.push_str("VARIANCE(");
            out.push_str(c);
            out.push(')');
        }
        SelectItem::Quantile(c, _) => {
            out.push_str("QUANTILE(");
            out.push_str(c);
            out.push_str(", ?)");
        }
        SelectItem::Median(c) => {
            out.push_str("MEDIAN(");
            out.push_str(c);
            out.push(')');
        }
        SelectItem::ProbOf(p) => {
            out.push_str("PROB(");
            write_pred(out, p);
            out.push(')');
        }
        SelectItem::SumAgg(c) => {
            out.push_str("ESUM(");
            out.push_str(c);
            out.push(')');
        }
        SelectItem::CountAgg => out.push_str("ECOUNT(*)"),
        SelectItem::AvgAgg(c) => {
            out.push_str("EAVG(");
            out.push_str(c);
            out.push(')');
        }
    }
}

fn write_pred(out: &mut String, pred: &Pred) {
    match pred {
        Pred::Cmp(a, op, b) => {
            write_term(out, a);
            out.push(' ');
            out.push_str(cmp_str(*op));
            out.push(' ');
            write_term(out, b);
        }
        Pred::Between(col, _, _) => {
            out.push_str(col);
            out.push_str(" BETWEEN ? AND ?");
        }
        Pred::And(parts) | Pred::Or(parts) => {
            let sep = if matches!(pred, Pred::And(_)) { " AND " } else { " OR " };
            out.push('(');
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    out.push_str(sep);
                }
                write_pred(out, p);
            }
            out.push(')');
        }
        Pred::Not(p) => {
            out.push_str("NOT (");
            write_pred(out, p);
            out.push(')');
        }
        Pred::ProbThreshold(p, op, _) => {
            out.push_str("PROB(");
            write_pred(out, p);
            out.push_str(") ");
            out.push_str(cmp_str(*op));
            out.push_str(" ?");
        }
        Pred::AttrThreshold(attrs, op, _) => {
            out.push_str("PROB(");
            out.push_str(&attrs.join(", "));
            out.push_str(") ");
            out.push_str(cmp_str(*op));
            out.push_str(" ?");
        }
    }
}

fn write_term(out: &mut String, t: &Term) {
    match t {
        Term::Col(c) => out.push_str(c),
        Term::Num(_) | Term::Str(_) | Term::Bool(_) | Term::Null => out.push('?'),
    }
}

fn cmp_str(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
        CmpOp::Eq => "=",
        CmpOp::Ne => "<>",
    }
}

/// FNV-1a 64-bit (dependency-free, stable across processes — fingerprints
/// persist in the `workload.json` sidecar).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn fp(sql: &str) -> (u64, String) {
        fingerprint(&parse(sql).unwrap())
    }

    #[test]
    fn literal_changes_share_a_fingerprint() {
        let pairs = [
            (
                "SELECT rid FROM readings WHERE PROB(value < 50) > 0.5",
                "SELECT rid FROM readings WHERE PROB(value < 99) > 0.1",
            ),
            (
                "INSERT INTO t VALUES (1, GAUSSIAN(20, 5))",
                "INSERT INTO t VALUES (7, GAUSSIAN(33, 1))",
            ),
            // Batch size is workload, not statement, structure.
            (
                "INSERT INTO t VALUES (1, GAUSSIAN(20, 5))",
                "INSERT INTO t VALUES (2, GAUSSIAN(1, 1)), (3, GAUSSIAN(2, 2))",
            ),
            ("SELECT * FROM t WHERE x BETWEEN 1 AND 2", "SELECT * FROM t WHERE x BETWEEN 5 AND 9"),
            ("SELECT * FROM t LIMIT 5", "SELECT * FROM t LIMIT 50"),
            ("UPDATE t SET v = 4 WHERE id = 1", "UPDATE t SET v = 9 WHERE id = 3"),
        ];
        for (a, b) in pairs {
            let (ha, ta) = fp(a);
            let (hb, tb) = fp(b);
            assert_eq!(ha, hb, "{a:?} vs {b:?} → {ta:?} vs {tb:?}");
            assert_eq!(ta, tb);
        }
    }

    #[test]
    fn structural_changes_differ() {
        let pairs = [
            // Different column.
            ("SELECT rid FROM readings", "SELECT value FROM readings"),
            // Different pdf constructor.
            ("INSERT INTO t VALUES (GAUSSIAN(0, 1))", "INSERT INTO t VALUES (UNIFORM(0, 1))"),
            // Added conjunct.
            ("SELECT * FROM t WHERE a < 1", "SELECT * FROM t WHERE a < 1 AND b < 2"),
            // Different comparison operator.
            ("SELECT * FROM t WHERE a < 1", "SELECT * FROM t WHERE a > 1"),
            // DISTINCT is shape.
            ("SELECT a FROM t", "SELECT DISTINCT a FROM t"),
        ];
        for (a, b) in pairs {
            assert_ne!(fp(a).0, fp(b).0, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn normalized_text_is_canonical() {
        let (_, text) = fp("select rid from readings where prob(value < 50) > 0.5 limit 3");
        assert_eq!(text, "SELECT rid FROM readings WHERE PROB(value < ?) > ? LIMIT ?");
    }

    #[test]
    fn fnv_vector() {
        // Known FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
