//! # orion-sql — SQL dialect for Orion-RS
//!
//! A small SQL front-end exposing the probabilistic model of the ICDE 2008
//! paper through familiar syntax, extended with:
//!
//! * `UNCERTAIN` column modifiers and `CORRELATED (a, b)` dependency groups
//!   in `CREATE TABLE` (the schema dependency information Δ);
//! * symbolic pdf constructors in `INSERT`: `GAUSSIAN(m, v)`,
//!   `UNIFORM(a, b)`, `POISSON(l)`, `BINOMIAL(n, p)`, `BERNOULLI(p)`,
//!   `GEOMETRIC(p)`, `EXPONENTIAL(r)`, generic `DISCRETE(v:p, ...)`,
//!   `HISTOGRAM(lo, width, m...)`, and correlated `JOINT((v1, v2):p, ...)`;
//! * `PROB(pred) > p` and `PROB(attrs) > p` threshold predicates
//!   (Section III-E);
//! * `EXPECTED(col)`, `VARIANCE(col)`, `MEDIAN(col)`, `QUANTILE(col, q)`
//!   and `PROB(pred)` select items, plus the `ECOUNT` / `ESUM` / `EAVG`
//!   aggregates (Gaussian-approximated, Section I);
//! * `UPDATE`, `DELETE`, `ORDER BY` (expectation order for uncertain
//!   columns), `LIMIT`, certain-only `DISTINCT`, and whole-database
//!   `save`/`open` persistence;
//! * `ANALYZE <table>` — collects per-column statistics (equi-depth
//!   histograms, cdf-bound summaries and per-tuple cdf sketches for
//!   uncertain columns, a tuple-existence histogram) into the session's
//!   stats catalog;
//! * read-only system virtual tables in the reserved `orion.` namespace
//!   (`orion.tables`, `orion.columns`, `orion.stats`, `orion.metrics`,
//!   `orion.io`, `orion.trace_lanes`, `orion.txns`, `orion.indexes`,
//!   `orion.statements`, `orion.slow_queries`, `orion.plan_feedback`),
//!   queryable and joinable like any user table;
//! * `BEGIN` / `COMMIT` / `ROLLBACK` snapshot-isolation transactions on a
//!   durable engine via [`DurableSession`] (DML outside a transaction
//!   auto-commits with bounded conflict retry);
//! * `EXPLAIN [ANALYZE] SELECT ...` — the executed operator tree with
//!   planner cardinality estimates from the stats catalog (`est_rows`),
//!   and, under `ANALYZE`, per-operator tuple counts, estimate-vs-actual
//!   relative error, pdf-operation counts, and wall time (both forms
//!   execute the query).
//!
//! ```
//! use orion_sql::{Database, Output};
//!
//! let mut db = Database::new();
//! db.execute("CREATE TABLE readings (rid INT, value REAL UNCERTAIN)").unwrap();
//! db.execute("INSERT INTO readings VALUES (1, GAUSSIAN(20, 5))").unwrap();
//! let out = db.execute("SELECT * FROM readings WHERE PROB(value BETWEEN 18 AND 22) > 0.5").unwrap();
//! match out {
//!     Output::Table(rel) => assert_eq!(rel.len(), 1),
//!     _ => unreachable!(),
//! }
//! ```

pub mod ast;
pub mod error;
pub mod exec;
pub mod fingerprint;
pub mod parser;
pub mod render;
pub mod session;
pub mod token;

pub use error::{Result, SqlError};
pub use exec::{Database, Output};
pub use fingerprint::fingerprint;
pub use parser::parse;
pub use render::{render_output, render_relation};
pub use session::DurableSession;
