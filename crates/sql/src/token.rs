//! Lexer for the Orion SQL dialect.

use crate::error::SqlError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Bare or dotted identifier (`value`, `t.x`). Keywords are resolved by
    /// the parser via case-insensitive matching on `Ident`.
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// Single-quoted string literal.
    Str(String),
    LParen,
    RParen,
    Comma,
    Semicolon,
    Colon,
    Star,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    Minus,
    Eof,
}

impl Token {
    /// Case-insensitive keyword check.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenizes a statement.
pub fn lex(input: &str) -> Result<Vec<Token>, SqlError> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            ';' => {
                out.push(Token::Semicolon);
                i += 1;
            }
            ':' => {
                out.push(Token::Colon);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '-' => {
                // Comment `--` or negative-number prefix handled at parse
                // time via Minus.
                if i + 1 < bytes.len() && bytes[i + 1] as char == '-' {
                    while i < bytes.len() && bytes[i] as char != '\n' {
                        i += 1;
                    }
                } else {
                    out.push(Token::Minus);
                    i += 1;
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] as char == '=' {
                    out.push(Token::Le);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] as char == '>' {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] as char == '=' {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] as char == '=' {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(SqlError::Lex("unexpected '!'".into()));
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] as char != '\'' {
                    j += 1;
                }
                if j == bytes.len() {
                    return Err(SqlError::Lex("unterminated string literal".into()));
                }
                out.push(Token::Str(input[start..j].to_string()));
                i = j + 1;
            }
            '0'..='9' | '.' => {
                let start = i;
                let mut j = i;
                let mut seen_dot = false;
                let mut seen_exp = false;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    if d.is_ascii_digit() {
                        j += 1;
                    } else if d == '.' && !seen_dot && !seen_exp {
                        // Lookahead: `1.` followed by a non-digit means the
                        // dot is a qualifier only if we started with ident —
                        // numbers here always own the dot.
                        seen_dot = true;
                        j += 1;
                    } else if (d == 'e' || d == 'E') && !seen_exp && j > start {
                        seen_exp = true;
                        j += 1;
                        if j < bytes.len() && (bytes[j] as char == '-' || bytes[j] as char == '+') {
                            j += 1;
                        }
                    } else {
                        break;
                    }
                }
                let text = &input[start..j];
                let n: f64 =
                    text.parse().map_err(|_| SqlError::Lex(format!("bad number '{text}'")))?;
                out.push(Token::Number(n));
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    if d.is_ascii_alphanumeric() || d == '_' || d == '.' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(input[start..j].to_string()));
                i = j;
            }
            other => return Err(SqlError::Lex(format!("unexpected character '{other}'"))),
        }
    }
    out.push(Token::Eof);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let ts = lex("SELECT * FROM t WHERE x <= 5.5;").unwrap();
        assert!(ts[0].is_kw("select"));
        assert_eq!(ts[1], Token::Star);
        assert!(ts[2].is_kw("FROM"));
        assert_eq!(ts[3], Token::Ident("t".into()));
        assert_eq!(ts[5], Token::Ident("x".into()));
        assert_eq!(ts[6], Token::Le);
        assert_eq!(ts[7], Token::Number(5.5));
        assert_eq!(ts[8], Token::Semicolon);
        assert_eq!(*ts.last().unwrap(), Token::Eof);
    }

    #[test]
    fn operators() {
        let ts = lex("< <= > >= = <> !=").unwrap();
        assert_eq!(
            &ts[..7],
            &[Token::Lt, Token::Le, Token::Gt, Token::Ge, Token::Eq, Token::Ne, Token::Ne]
        );
    }

    #[test]
    fn numbers_and_negatives() {
        let ts = lex("3 3.5 -2 1e3 2.5e-2").unwrap();
        assert_eq!(ts[0], Token::Number(3.0));
        assert_eq!(ts[1], Token::Number(3.5));
        assert_eq!(ts[2], Token::Minus);
        assert_eq!(ts[3], Token::Number(2.0));
        assert_eq!(ts[4], Token::Number(1000.0));
        assert_eq!(ts[5], Token::Number(0.025));
    }

    #[test]
    fn strings_and_errors() {
        let ts = lex("'hello world'").unwrap();
        assert_eq!(ts[0], Token::Str("hello world".into()));
        assert!(lex("'unterminated").is_err());
        assert!(lex("#").is_err());
        assert!(lex("!x").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        let ts = lex("SELECT -- a comment\n 1").unwrap();
        assert!(ts[0].is_kw("select"));
        assert_eq!(ts[1], Token::Number(1.0));
    }

    #[test]
    fn dotted_identifiers() {
        let ts = lex("t.x").unwrap();
        assert_eq!(ts[0], Token::Ident("t.x".into()));
    }

    #[test]
    fn discrete_pdf_syntax() {
        let ts = lex("DISCRETE(0:0.1, 1:0.9)").unwrap();
        assert!(ts[0].is_kw("discrete"));
        assert_eq!(ts[1], Token::LParen);
        assert_eq!(ts[2], Token::Number(0.0));
        assert_eq!(ts[3], Token::Colon);
        assert_eq!(ts[4], Token::Number(0.1));
    }
}
