//! Benchmarks of the relational operators over in-memory relations:
//! selection fast path vs general path, projection, hash vs nested-loop
//! join, thresholds, and the possible-worlds reference engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orion_core::prelude::*;
use orion_core::project::project;
use orion_core::select::select;
use orion_core::threshold::threshold_pred;
use orion_pdf::prelude::*;
use orion_workload::SensorWorkload;
use std::hint::black_box;

fn sensor_relation(n: usize, reg: &mut HistoryRegistry) -> Relation {
    let schema = ProbSchema::new(
        vec![("rid", ColumnType::Int, false), ("v", ColumnType::Real, true)],
        vec![],
    )
    .unwrap();
    let mut rel = Relation::new("readings", schema);
    let mut w = SensorWorkload::new(7);
    for r in w.readings(n) {
        rel.insert_simple(reg, &[("rid", Value::Int(r.rid))], &[("v", r.pdf())]).unwrap();
    }
    rel
}

fn keyed_pair(n: usize, reg: &mut HistoryRegistry) -> (Relation, Relation) {
    let mk = |name: &str, col: &str, reg: &mut HistoryRegistry| {
        let schema = ProbSchema::new(
            vec![("id", ColumnType::Int, false), (col, ColumnType::Real, true)],
            vec![],
        )
        .unwrap();
        let mut rel = Relation::new(name, schema);
        for id in 0..n as i64 {
            rel.insert_simple(
                reg,
                &[("id", Value::Int(id))],
                &[(col, Pdf1::discrete(vec![(id as f64, 0.5), (id as f64 + 1.0, 0.5)]).unwrap())],
            )
            .unwrap();
        }
        rel
    };
    (mk("L", "x", reg), mk("R", "y", reg))
}

fn bench_selection(c: &mut Criterion) {
    let mut g = c.benchmark_group("select_1k");
    let mut reg = HistoryRegistry::new();
    let rel = sensor_relation(1_000, &mut reg);
    let opts = ExecOptions::default();
    // Fast path: single-attribute comparison keeps symbolic floors.
    g.bench_function("fast_path_symbolic_floor", |b| {
        b.iter(|| {
            let mut r = HistoryRegistry::new();
            select(black_box(&rel), &Predicate::cmp("v", CmpOp::Lt, 50.0), &mut r, &opts).unwrap()
        })
    });
    // General path: an OR forces the merge + predicate-floor machinery.
    let or_pred = Predicate::Or(vec![
        Predicate::cmp("v", CmpOp::Lt, 25.0),
        Predicate::cmp("v", CmpOp::Gt, 75.0),
    ]);
    g.bench_function("general_path_grid_floor", |b| {
        b.iter(|| {
            let mut r = HistoryRegistry::new();
            select(black_box(&rel), &or_pred, &mut r, &opts).unwrap()
        })
    });
    // Certain-only path.
    g.bench_function("certain_only", |b| {
        b.iter(|| {
            let mut r = HistoryRegistry::new();
            select(black_box(&rel), &Predicate::cmp("rid", CmpOp::Le, 500i64), &mut r, &opts)
                .unwrap()
        })
    });
    g.finish();
}

fn bench_projection_and_threshold(c: &mut Criterion) {
    let mut g = c.benchmark_group("project_threshold_1k");
    let mut reg = HistoryRegistry::new();
    let rel = sensor_relation(1_000, &mut reg);
    let opts = ExecOptions::default();
    g.bench_function("project", |b| {
        b.iter(|| {
            let mut r = HistoryRegistry::new();
            project(black_box(&rel), &["rid"], &mut r, &opts).unwrap()
        })
    });
    let pred = Predicate::And(vec![
        Predicate::cmp("v", CmpOp::Ge, 40.0),
        Predicate::cmp("v", CmpOp::Le, 60.0),
    ]);
    g.bench_function("threshold_range_query", |b| {
        b.iter(|| {
            let mut r = HistoryRegistry::new();
            threshold_pred(black_box(&rel), &pred, CmpOp::Gt, 0.5, &mut r, &opts).unwrap()
        })
    });
    g.finish();
}

fn bench_joins(c: &mut Criterion) {
    let mut g = c.benchmark_group("join");
    g.sample_size(20);
    let opts = ExecOptions::default();
    for n in [100usize, 400] {
        let mut reg = HistoryRegistry::new();
        let (l, r) = keyed_pair(n, &mut reg);
        let pred = Predicate::And(vec![
            Predicate::cmp_cols("L.id", CmpOp::Eq, "R.id"),
            Predicate::cmp_cols("x", CmpOp::Le, "y"),
        ]);
        g.bench_with_input(BenchmarkId::new("hash_equi", n), &n, |b, _| {
            b.iter(|| {
                let mut rg = HistoryRegistry::new();
                orion_core::join::join(black_box(&l), black_box(&r), Some(&pred), &mut rg, &opts)
                    .unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("nested_loop", n), &n, |b, _| {
            b.iter(|| {
                let mut rg = HistoryRegistry::new();
                orion_core::join::join_nested_loop(
                    black_box(&l),
                    black_box(&r),
                    Some(&pred),
                    &mut rg,
                    &opts,
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_pws_reference(c: &mut Criterion) {
    // The brute-force engine is exponential; benchmark the largest
    // practical instance to document the gap the efficient model closes.
    let mut g = c.benchmark_group("pws_reference");
    g.sample_size(10);
    let mut reg = HistoryRegistry::new();
    let schema =
        ProbSchema::new(vec![("a", ColumnType::Int, true), ("b", ColumnType::Int, true)], vec![])
            .unwrap();
    let mut rel = Relation::new("T", schema);
    for i in 0..5 {
        rel.insert_simple(
            &mut reg,
            &[],
            &[
                ("a", Pdf1::discrete(vec![(i as f64, 0.5), (i as f64 + 1.0, 0.5)]).unwrap()),
                ("b", Pdf1::discrete(vec![(0.0, 0.5), (1.0, 0.5)]).unwrap()),
            ],
        )
        .unwrap();
    }
    let mut tables = std::collections::HashMap::new();
    tables.insert("T".to_string(), rel);
    let plan = Plan::scan("T").select(Predicate::cmp_cols("b", CmpOp::Lt, "a"));
    g.bench_function("enumerate_2^10_worlds", |b| {
        b.iter(|| orion_core::pws::pws_row_distribution(black_box(&plan), &tables).unwrap())
    });
    g.bench_function("efficient_engine_same_query", |b| {
        b.iter(|| {
            let mut rg = HistoryRegistry::new();
            orion_core::plan::execute(black_box(&plan), &tables, &mut rg, &ExecOptions::default())
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_selection,
    bench_projection_and_threshold,
    bench_joins,
    bench_pws_reference
);
criterion_main!(benches);
