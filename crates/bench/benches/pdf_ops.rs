//! Micro-benchmarks of the pdf primitives the relational operators are
//! built on: range queries per representation, floors, products,
//! marginalization, approximation construction, and the storage codec.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orion_pdf::prelude::*;
use std::hint::black_box;

fn bench_range_queries(c: &mut Criterion) {
    let mut g = c.benchmark_group("range_prob");
    let exact = Pdf1::gaussian(50.0, 4.0).unwrap();
    let iv = Interval::new(48.0, 52.5);
    g.bench_function("symbolic", |b| b.iter(|| black_box(&exact).range_prob(black_box(&iv))));
    for bins in [5usize, 25, 100] {
        let h = Pdf1::Histogram(exact.to_histogram(bins).unwrap());
        g.bench_with_input(BenchmarkId::new("histogram", bins), &h, |b, h| {
            b.iter(|| black_box(h).range_prob(black_box(&iv)))
        });
        let d = Pdf1::Discrete(exact.to_discrete(bins).unwrap());
        g.bench_with_input(BenchmarkId::new("discrete", bins), &d, |b, d| {
            b.iter(|| black_box(d).range_prob(black_box(&iv)))
        });
    }
    g.finish();
}

fn bench_floors(c: &mut Criterion) {
    let mut g = c.benchmark_group("floor");
    let region = RegionSet::from_interval(Interval::at_least(50.0));
    let exact = Pdf1::gaussian(50.0, 4.0).unwrap();
    g.bench_function("symbolic_keeps_floor", |b| {
        b.iter(|| black_box(&exact).floor_region(black_box(&region)))
    });
    let h = Pdf1::Histogram(exact.to_histogram(25).unwrap());
    g.bench_function("histogram_25", |b| b.iter(|| black_box(&h).floor_region(black_box(&region))));
    let d = Pdf1::Discrete(exact.to_discrete(25).unwrap());
    g.bench_function("discrete_25", |b| b.iter(|| black_box(&d).floor_region(black_box(&region))));
    g.finish();
}

fn bench_joint_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("joint");
    let a = Pdf1::discrete((0..8).map(|i| (i as f64, 0.125)).collect()).unwrap();
    let b = Pdf1::discrete((0..8).map(|i| (i as f64, 0.125)).collect()).unwrap();
    let joint = JointPdf::independent(vec![a, b]).unwrap();
    g.bench_function("product_8x8", |bch| {
        let l = joint.clone();
        bch.iter(|| black_box(&l).product(black_box(&joint)))
    });
    g.bench_function("floor_predicate_8x8", |bch| {
        bch.iter(|| black_box(&joint).floor_predicate(&[0, 1], 64, |v| v[0] < v[1]).unwrap())
    });
    let merged = joint.floor_predicate(&[0, 1], 64, |v| v[0] < v[1]).unwrap();
    g.bench_function("marginalize_merged", |bch| {
        bch.iter(|| black_box(&merged).marginalize(&[0]).unwrap())
    });
    // Continuous grid path.
    let cont = JointPdf::independent(vec![
        Pdf1::uniform(0.0, 1.0).unwrap(),
        Pdf1::uniform(0.0, 1.0).unwrap(),
    ])
    .unwrap();
    g.bench_function("floor_predicate_grid_32", |bch| {
        bch.iter(|| black_box(&cont).floor_predicate(&[0, 1], 32, |v| v[0] < v[1]).unwrap())
    });
    g.finish();
}

fn bench_approximation(c: &mut Criterion) {
    let mut g = c.benchmark_group("approximate");
    let exact = Pdf1::gaussian(50.0, 4.0).unwrap();
    for n in [5usize, 25] {
        g.bench_with_input(BenchmarkId::new("to_histogram", n), &n, |b, &n| {
            b.iter(|| black_box(&exact).to_histogram(n).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("to_discrete", n), &n, |b, &n| {
            b.iter(|| black_box(&exact).to_discrete(n).unwrap())
        });
    }
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    let exact = Pdf1::gaussian(50.0, 4.0).unwrap();
    let variants = [
        ("symbolic", exact.clone()),
        ("hist5", Pdf1::Histogram(exact.to_histogram(5).unwrap())),
        ("disc25", Pdf1::Discrete(exact.to_discrete(25).unwrap())),
    ];
    for (name, pdf) in &variants {
        g.bench_function(format!("encode_{name}"), |b| {
            let mut buf = Vec::with_capacity(512);
            b.iter(|| {
                buf.clear();
                orion_storage::codec::encode_pdf1(black_box(pdf), &mut buf);
                buf.len()
            })
        });
        let mut buf = Vec::new();
        orion_storage::codec::encode_pdf1(pdf, &mut buf);
        g.bench_function(format!("decode_{name}"), |b| {
            b.iter(|| orion_storage::codec::decode_pdf1(&mut black_box(&buf[..])).unwrap())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_range_queries,
    bench_floors,
    bench_joint_ops,
    bench_approximation,
    bench_codec
);
criterion_main!(benches);
