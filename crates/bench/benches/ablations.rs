//! Ablations of the design choices DESIGN.md calls out:
//!
//! * symbolic floors vs immediate histogram materialization on selection;
//! * eager vs lazy collapse of dependent nodes after joins;
//! * history maintenance on vs off during the dependent merge;
//! * grid resolution cost/accuracy for continuous merges.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orion_core::prelude::*;
use orion_core::project::project;
use orion_core::select::select;
use orion_pdf::prelude::*;
use std::hint::black_box;

/// A base table with correlated 2-D discrete joints (Figure 3 shape).
fn joint_table(n: usize, reg: &mut HistoryRegistry) -> Relation {
    orion_bench::fig6::base_table(n, 4, 11, reg)
}

fn bench_symbolic_vs_materialized_floors(c: &mut Criterion) {
    let mut g = c.benchmark_group("floor_strategy");
    let exact = Pdf1::gaussian(50.0, 25.0).unwrap();
    let region = RegionSet::from_interval(Interval::at_least(55.0));
    // Symbolic: O(1) — append a floor interval.
    g.bench_function("symbolic_floor_chain", |b| {
        b.iter(|| {
            let mut p = black_box(&exact).clone();
            for i in 0..5 {
                p = p.floor_region(&RegionSet::from_interval(Interval::at_least(55.0 - i as f64)));
            }
            p.mass()
        })
    });
    // Materialized: convert to a histogram first, then floor repeatedly.
    g.bench_function("materialized_floor_chain", |b| {
        b.iter(|| {
            let mut h = black_box(&exact).to_histogram(64).unwrap();
            for i in 0..5 {
                h = h.floor_region(&RegionSet::from_interval(Interval::at_least(55.0 - i as f64)));
            }
            h.mass()
        })
    });
    // Accuracy: the symbolic floor is exact.
    let symbolic = exact.floor_region(&region);
    let materialized = Pdf1::Histogram(exact.to_histogram(64).unwrap().floor_region(&region));
    assert!((symbolic.mass() - materialized.mass()).abs() < 0.02);
    g.finish();
}

fn bench_eager_vs_lazy_collapse(c: &mut Criterion) {
    let mut g = c.benchmark_group("collapse_policy_500");
    g.sample_size(20);
    for (name, opts) in [
        ("eager", ExecOptions::default()),
        ("lazy", ExecOptions { eager_collapse: false, ..ExecOptions::default() }),
        ("no_histories", ExecOptions { use_histories: false, ..ExecOptions::default() }),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut reg = HistoryRegistry::new();
                let base = joint_table(500, &mut reg);
                let mut ta = project(&base, &["id", "a"], &mut reg, &opts).unwrap();
                ta.name = "Ta".into();
                let sel =
                    select(&base, &Predicate::cmp("b", CmpOp::Gt, 20.0), &mut reg, &opts).unwrap();
                let mut tb = project(&sel, &["id", "b"], &mut reg, &opts).unwrap();
                tb.name = "Tb".into();
                orion_core::join::join(
                    black_box(&ta),
                    &tb,
                    Some(&Predicate::cmp_cols("Ta.id", CmpOp::Eq, "Tb.id")),
                    &mut reg,
                    &opts,
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_merge_resolution(c: &mut Criterion) {
    // Continuous dependent merges materialize on a grid; resolution trades
    // accuracy for time quadratically (cells = res^2).
    let mut g = c.benchmark_group("merge_grid_resolution");
    let joint = JointPdf::independent(vec![
        Pdf1::gaussian(0.0, 1.0).unwrap(),
        Pdf1::gaussian(0.5, 2.0).unwrap(),
    ])
    .unwrap();
    for res in [16usize, 32, 64, 128] {
        g.bench_with_input(BenchmarkId::from_parameter(res), &res, |b, &res| {
            b.iter(|| {
                black_box(&joint).floor_predicate(&[0, 1], res, |v| v[0] < v[1]).unwrap().mass()
            })
        });
    }
    // Accuracy reference: P(X < Y) for N(0,1), N(0.5,2) is
    // Phi(0.5 / sqrt(3)) ≈ 0.6136.
    let truth = 0.613_707;
    let coarse = joint.floor_predicate(&[0, 1], 16, |v| v[0] < v[1]).unwrap().mass();
    let fine = joint.floor_predicate(&[0, 1], 128, |v| v[0] < v[1]).unwrap().mass();
    assert!((fine - truth).abs() < (coarse - truth).abs() + 1e-3);
    g.finish();
}

fn bench_support_index(c: &mut Criterion) {
    // Indexed vs full-scan probabilistic threshold range queries: the
    // paper's companion indexing line of work, reduced to support pruning.
    use orion_core::index::SupportIndex;
    use orion_core::threshold::threshold_pred;
    let mut g = c.benchmark_group("threshold_index_20k");
    g.sample_size(20);
    let mut reg = HistoryRegistry::new();
    let schema = ProbSchema::new(
        vec![("rid", ColumnType::Int, false), ("v", ColumnType::Real, true)],
        vec![],
    )
    .unwrap();
    let mut rel = Relation::new("r", schema);
    let mut workload = orion_workload::SensorWorkload::new(5);
    for r in workload.readings(20_000) {
        rel.insert_simple(&mut reg, &[("rid", Value::Int(r.rid))], &[("v", r.pdf())]).unwrap();
    }
    let idx = SupportIndex::build(&rel, "v").unwrap();
    let iv = Interval::new(40.0, 44.0);
    let opts = ExecOptions::default();
    g.bench_function("indexed", |b| {
        b.iter(|| {
            let mut rg = HistoryRegistry::new();
            idx.threshold_range(black_box(&rel), &iv, CmpOp::Gt, 0.5, &mut rg, &opts).unwrap()
        })
    });
    let pred = Predicate::And(vec![
        Predicate::cmp("v", CmpOp::Ge, iv.lo),
        Predicate::cmp("v", CmpOp::Le, iv.hi),
    ]);
    g.bench_function("full_scan", |b| {
        b.iter(|| {
            let mut rg = HistoryRegistry::new();
            threshold_pred(black_box(&rel), &pred, CmpOp::Gt, 0.5, &mut rg, &opts).unwrap()
        })
    });
    g.bench_function("build_index", |b| {
        b.iter(|| SupportIndex::build(black_box(&rel), "v").unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_symbolic_vs_materialized_floors,
    bench_eager_vs_lazy_collapse,
    bench_merge_resolution,
    bench_support_index
);
criterion_main!(benches);
