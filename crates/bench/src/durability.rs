//! Durability figure — **group commit and incremental checkpoints**.
//!
//! Two sweeps quantify the PR's durability machinery:
//!
//! * **Group commit** — `W` writer threads each commit `N` inserts through
//!   a [`SharedDurableDb`], once with group commit disabled (one fsync per
//!   commit, the PR 2 baseline) and once with a small batching window. The
//!   reported metric is *commits per fsync*: the leader/follower protocol
//!   must amortize the fsync across concurrent committers (the acceptance
//!   bar is ≥ 2× fewer fsyncs at 8 writers).
//! * **Checkpoints** — a table of `N` tuples is checkpointed in full, then
//!   receives a small tail of inserts and is checkpointed incrementally.
//!   The incremental delta must copy only the dirty pages; the row reports
//!   latency and the copied/skipped page split from the I/O counters.

use orion_core::durable::{DurableDb, SharedDurableDb};
use orion_core::prelude::*;
use orion_obs::json;
use orion_pdf::prelude::*;
use orion_storage::GroupCommitConfig;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Configuration for the durability sweeps.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Writer-thread counts to sweep for the group-commit figure.
    pub writer_counts: Vec<usize>,
    /// Inserts committed by each writer thread.
    pub inserts_per_writer: usize,
    /// Group-commit batching window.
    pub window: Duration,
    /// Table sizes (tuples) for the checkpoint figure.
    pub checkpoint_sizes: Vec<usize>,
    /// Tail inserts between the full and the incremental checkpoint.
    pub checkpoint_tail: usize,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            writer_counts: vec![1, 2, 4, 8],
            inserts_per_writer: 200,
            window: Duration::from_millis(2),
            checkpoint_sizes: vec![1_000, 4_000],
            checkpoint_tail: 16,
        }
    }
}

/// One group-commit measurement cell.
#[derive(Debug, Clone)]
pub struct GroupCommitRow {
    /// `"per-commit"` (disabled) or `"group"` (batching window).
    pub mode: String,
    /// Concurrent writer threads.
    pub writers: usize,
    /// Commits issued (inserts + the schema record).
    pub commits: u64,
    /// Physical fsyncs of the log.
    pub fsyncs: u64,
    /// Commits that shared a leader's fsync.
    pub fsyncs_saved: u64,
    /// Leader batches flushed.
    pub batches: u64,
    /// Wall-clock seconds for the whole workload.
    pub secs: f64,
}

impl GroupCommitRow {
    /// Commits amortized per physical fsync.
    pub fn commits_per_fsync(&self) -> f64 {
        self.commits as f64 / self.fsyncs.max(1) as f64
    }

    /// JSON form of the cell.
    pub fn to_json(&self) -> json::Value {
        json::Value::object()
            .with("mode", self.mode.as_str())
            .with("writers", self.writers)
            .with("commits", self.commits)
            .with("fsyncs", self.fsyncs)
            .with("fsyncs_saved", self.fsyncs_saved)
            .with("batches", self.batches)
            .with("secs", self.secs)
            .with("commits_per_fsync", self.commits_per_fsync())
    }
}

/// One checkpoint measurement cell.
#[derive(Debug, Clone)]
pub struct CheckpointRow {
    /// `"full"` or `"incremental"`.
    pub kind: String,
    /// Tuples resident when the checkpoint ran.
    pub tuples: usize,
    /// Checkpoint latency in seconds.
    pub secs: f64,
    /// Pages written into the snapshot/delta.
    pub pages_copied: u64,
    /// Clean pages the incremental checkpoint skipped.
    pub pages_skipped: u64,
}

impl CheckpointRow {
    /// JSON form of the cell.
    pub fn to_json(&self) -> json::Value {
        json::Value::object()
            .with("kind", self.kind.as_str())
            .with("tuples", self.tuples)
            .with("secs", self.secs)
            .with("pages_copied", self.pages_copied)
            .with("pages_skipped", self.pages_skipped)
    }
}

fn bench_schema() -> ProbSchema {
    ProbSchema::new(vec![("id", ColumnType::Int, false), ("v", ColumnType::Real, true)], vec![])
        .unwrap()
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("orion_fig_durability").join(tag);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs `writers × inserts` concurrent commits under `cfg` and returns the
/// measured cell. The directory is destroyed afterwards.
pub fn run_group_commit_cell(
    writers: usize,
    inserts: usize,
    cfg: GroupCommitConfig,
    mode: &str,
) -> GroupCommitRow {
    let dir = scratch_dir(&format!("gc_{mode}_{writers}"));
    let db = SharedDurableDb::open(&dir, cfg).unwrap();
    db.create_table("readings", bench_schema()).unwrap();
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for w in 0..writers {
            let db = db.clone();
            s.spawn(move || {
                for i in 0..inserts {
                    let id = (w * 1_000_000 + i) as i64;
                    db.insert_simple(
                        "readings",
                        &[("id", Value::Int(id))],
                        &[("v", Pdf1::gaussian(id as f64, 1.0).unwrap())],
                    )
                    .unwrap();
                }
            });
        }
    });
    let secs = t0.elapsed().as_secs_f64();
    let stats = db.wal_stats();
    let row = GroupCommitRow {
        mode: mode.to_string(),
        writers,
        commits: stats.group_commit_commits.get(),
        fsyncs: stats.fsyncs.get(),
        fsyncs_saved: stats.fsyncs_saved.get(),
        batches: stats.group_commit_batches.get(),
        secs,
    };
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
    row
}

/// The group-commit sweep: every writer count, disabled vs windowed.
pub fn run_group_commit(cfg: &DurabilityConfig) -> Vec<GroupCommitRow> {
    let mut rows = Vec::new();
    for &w in &cfg.writer_counts {
        let off = GroupCommitConfig { enabled: false, ..GroupCommitConfig::default() };
        rows.push(run_group_commit_cell(w, cfg.inserts_per_writer, off, "per-commit"));
        let on = GroupCommitConfig { window: cfg.window, ..GroupCommitConfig::default() };
        rows.push(run_group_commit_cell(w, cfg.inserts_per_writer, on, "group"));
    }
    rows
}

fn fill(db: &mut DurableDb, from: usize, n: usize) {
    for i in from..from + n {
        db.insert_simple(
            "readings",
            &[("id", Value::Int(i as i64))],
            &[("v", Pdf1::gaussian(i as f64, 1.0).unwrap())],
        )
        .unwrap();
    }
}

fn ckpt_pages(db: &DurableDb) -> (u64, u64) {
    let io = db.io_stats().snapshot();
    (io.ckpt_pages_copied, io.ckpt_pages_skipped)
}

/// The checkpoint sweep: for each size, one full checkpoint over the whole
/// table and one incremental checkpoint after a small tail of inserts.
pub fn run_checkpoints(cfg: &DurabilityConfig, dir: &Path) -> Vec<CheckpointRow> {
    let mut rows = Vec::new();
    for &n in &cfg.checkpoint_sizes {
        let dir = dir.join(format!("ckpt_{n}"));
        std::fs::remove_dir_all(&dir).ok();
        let mut db = DurableDb::open(&dir).unwrap();
        db.create_table("readings", bench_schema()).unwrap();
        fill(&mut db, 0, n);
        let before = ckpt_pages(&db);
        let t0 = Instant::now();
        db.checkpoint().unwrap();
        let full_secs = t0.elapsed().as_secs_f64();
        let after = ckpt_pages(&db);
        rows.push(CheckpointRow {
            kind: "full".to_string(),
            tuples: n,
            secs: full_secs,
            pages_copied: after.0 - before.0,
            pages_skipped: after.1 - before.1,
        });

        fill(&mut db, n, cfg.checkpoint_tail);
        let before = ckpt_pages(&db);
        let t0 = Instant::now();
        db.checkpoint_incremental().unwrap();
        let incr_secs = t0.elapsed().as_secs_f64();
        let after = ckpt_pages(&db);
        rows.push(CheckpointRow {
            kind: "incremental".to_string(),
            tuples: n + cfg.checkpoint_tail,
            secs: incr_secs,
            pages_copied: after.0 - before.0,
            pages_skipped: after.1 - before.1,
        });
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }
    rows
}

/// JSON artifact over both sweeps.
pub fn to_json(gc: &[GroupCommitRow], ckpt: &[CheckpointRow]) -> json::Value {
    let mut gc_arr = json::Value::array();
    for r in gc {
        gc_arr.push(r.to_json());
    }
    let mut ck_arr = json::Value::array();
    for r in ckpt {
        ck_arr.push(r.to_json());
    }
    json::Value::object()
        .with("figure", "fig_durability")
        .with("group_commit", gc_arr)
        .with("checkpoints", ck_arr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_commit_halves_fsyncs_at_eight_writers() {
        // The acceptance bar: at 8 writers the batching window must cut
        // physical fsyncs at least in half versus per-commit syncing.
        let cfg = DurabilityConfig {
            writer_counts: vec![8],
            inserts_per_writer: 50,
            ..DurabilityConfig::default()
        };
        let rows = run_group_commit(&cfg);
        let per = rows.iter().find(|r| r.mode == "per-commit").unwrap();
        let grp = rows.iter().find(|r| r.mode == "group").unwrap();
        assert_eq!(per.commits, grp.commits, "same workload either way");
        assert_eq!(per.fsyncs, per.commits, "disabled mode syncs every commit");
        assert_eq!(per.fsyncs_saved, 0);
        assert!(
            grp.fsyncs * 2 <= per.fsyncs,
            "group commit must save ≥2×: {} vs {} fsyncs",
            grp.fsyncs,
            per.fsyncs
        );
        assert_eq!(grp.fsyncs_saved, grp.commits - grp.fsyncs, "ledger closes");
        assert!(grp.batches > 0 && grp.batches == grp.fsyncs);
        assert!(grp.commits_per_fsync() >= 2.0 * per.commits_per_fsync());
    }

    #[test]
    fn lone_writer_pays_no_batching_tax_in_fsyncs_saved_accounting() {
        let cfg = DurabilityConfig {
            writer_counts: vec![1],
            inserts_per_writer: 20,
            ..DurabilityConfig::default()
        };
        let rows = run_group_commit(&cfg);
        for r in &rows {
            assert_eq!(r.commits, 21, "{:?}", r);
            assert_eq!(r.fsyncs_saved + r.fsyncs, r.commits, "{:?}", r);
        }
    }

    #[test]
    fn incremental_checkpoint_skips_most_pages() {
        let cfg = DurabilityConfig {
            checkpoint_sizes: vec![2_000],
            checkpoint_tail: 8,
            ..DurabilityConfig::default()
        };
        let dir = scratch_dir("ckpt_test");
        let rows = run_checkpoints(&cfg, &dir);
        std::fs::remove_dir_all(&dir).ok();
        let full = rows.iter().find(|r| r.kind == "full").unwrap();
        let incr = rows.iter().find(|r| r.kind == "incremental").unwrap();
        assert!(full.pages_copied > 0);
        assert!(incr.pages_skipped > 0, "{incr:?}");
        assert!(
            incr.pages_copied < full.pages_copied,
            "a small tail must not re-copy the table: {incr:?} vs {full:?}"
        );
    }

    #[test]
    fn json_artifact_carries_both_sweeps() {
        let gc = vec![GroupCommitRow {
            mode: "group".into(),
            writers: 2,
            commits: 10,
            fsyncs: 4,
            fsyncs_saved: 6,
            batches: 4,
            secs: 0.1,
        }];
        let ck = vec![CheckpointRow {
            kind: "incremental".into(),
            tuples: 100,
            secs: 0.01,
            pages_copied: 2,
            pages_skipped: 30,
        }];
        let text = to_json(&gc, &ck).to_string_compact();
        assert!(text.contains("\"commits_per_fsync\""), "{text}");
        assert!(text.contains("\"pages_skipped\""), "{text}");
        assert!(text.contains("\"fig_durability\""), "{text}");
    }
}
