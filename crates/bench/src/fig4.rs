//! Figure 4 — **Accuracy vs Sample Size**.
//!
//! The paper discretizes a dataset of random Gaussian pdfs at varying
//! sample sizes and answers random range queries against (a) an equi-width
//! histogram and (b) a discrete point sampling of the same size, measuring
//! the mean absolute error of the returned probability (cdf) values against
//! the exact symbolic answer, plus the standard deviation of those errors.
//!
//! Paper-reported shape: the histogram dominates at every size; ~5 buckets
//! already reach ±0.01 probability mass, while the discrete representation
//! needs ~25 points for comparable accuracy, and its error variance is much
//! larger (boundary misses).

use orion_obs::json;
use orion_pdf::ops::{mean_std, range_query_error};
use orion_pdf::prelude::Pdf1;
use orion_workload::SensorWorkload;

/// Configuration for the Figure 4 sweep.
#[derive(Debug, Clone)]
pub struct Fig4Config {
    /// Number of random Gaussian pdfs.
    pub n_pdfs: usize,
    /// Number of random range queries evaluated against every pdf.
    pub n_queries: usize,
    /// Sample sizes (bucket / point counts) to sweep.
    pub sample_sizes: Vec<usize>,
    /// Workload seed.
    pub seed: u64,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Fig4Config {
            n_pdfs: 200,
            n_queries: 100,
            sample_sizes: vec![2, 3, 5, 8, 10, 15, 20, 25, 30],
            seed: 42,
        }
    }
}

/// One point of the Figure 4 series.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Bucket / sample-point count.
    pub sample_size: usize,
    /// Mean |error| of the histogram approximation.
    pub hist_mean_err: f64,
    /// Standard deviation of the histogram errors.
    pub hist_err_std: f64,
    /// Mean |error| of the discrete approximation.
    pub disc_mean_err: f64,
    /// Standard deviation of the discrete errors.
    pub disc_err_std: f64,
}

impl Fig4Row {
    /// JSON form with one field per measurement.
    pub fn to_json(&self) -> json::Value {
        json::Value::object()
            .with("sample_size", self.sample_size)
            .with("hist_mean_err", self.hist_mean_err)
            .with("hist_err_std", self.hist_err_std)
            .with("disc_mean_err", self.disc_mean_err)
            .with("disc_err_std", self.disc_err_std)
    }
}

/// JSON array over the whole sweep.
pub fn rows_to_json(rows: &[Fig4Row]) -> json::Value {
    let mut arr = json::Value::array();
    for r in rows {
        arr.push(r.to_json());
    }
    arr
}

/// Runs the sweep.
pub fn run(cfg: &Fig4Config) -> Vec<Fig4Row> {
    let mut w = SensorWorkload::new(cfg.seed);
    let readings = w.readings(cfg.n_pdfs);
    let queries = w.range_queries(cfg.n_queries);
    let exact: Vec<Pdf1> = readings.iter().map(|r| r.pdf()).collect();

    let mut rows = Vec::with_capacity(cfg.sample_sizes.len());
    for &n in &cfg.sample_sizes {
        let mut hist_errs = Vec::with_capacity(cfg.n_pdfs * cfg.n_queries);
        let mut disc_errs = Vec::with_capacity(cfg.n_pdfs * cfg.n_queries);
        for e in &exact {
            let h = Pdf1::Histogram(e.to_histogram(n).expect("non-vacuous"));
            let d = Pdf1::Discrete(e.to_discrete(n).expect("non-vacuous"));
            for q in &queries {
                let iv = q.interval();
                hist_errs.push(range_query_error(e, &h, &iv));
                disc_errs.push(range_query_error(e, &d, &iv));
            }
        }
        let (hm, hs) = mean_std(&hist_errs);
        let (dm, ds) = mean_std(&disc_errs);
        rows.push(Fig4Row {
            sample_size: n,
            hist_mean_err: hm,
            hist_err_std: hs,
            disc_mean_err: dm,
            disc_err_std: ds,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Vec<Fig4Row> {
        run(&Fig4Config { n_pdfs: 40, n_queries: 40, sample_sizes: vec![3, 5, 10, 25], seed: 7 })
    }

    #[test]
    fn histogram_beats_discrete_at_every_size() {
        for row in small() {
            assert!(
                row.hist_mean_err < row.disc_mean_err,
                "size {}: hist {} vs disc {}",
                row.sample_size,
                row.hist_mean_err,
                row.disc_mean_err
            );
        }
    }

    #[test]
    fn five_bucket_histogram_reaches_paper_accuracy() {
        // Paper: "With only five sampling points, the accuracy is around
        // ±0.01 probability mass" for the histogram.
        let rows = small();
        let five = rows.iter().find(|r| r.sample_size == 5).unwrap();
        assert!(five.hist_mean_err < 0.02, "hist-5 err {}", five.hist_mean_err);
        // The discrete representation needs ~25 points for that accuracy.
        let disc5 = rows.iter().find(|r| r.sample_size == 5).unwrap();
        assert!(disc5.disc_mean_err > five.hist_mean_err * 2.0);
        let disc25 = rows.iter().find(|r| r.sample_size == 25).unwrap();
        assert!(disc25.disc_mean_err < 0.03, "disc-25 err {}", disc25.disc_mean_err);
    }

    #[test]
    fn discrete_variance_is_higher() {
        // Paper: "a discrete representation has a considerably higher
        // variance in approximation error than a histogram".
        for row in small() {
            assert!(
                row.disc_err_std > row.hist_err_std,
                "size {}: {} vs {}",
                row.sample_size,
                row.disc_err_std,
                row.hist_err_std
            );
        }
    }

    #[test]
    fn error_decreases_with_sample_size() {
        let rows = small();
        assert!(rows.last().unwrap().hist_mean_err < rows.first().unwrap().hist_mean_err);
        assert!(rows.last().unwrap().disc_mean_err < rows.first().unwrap().disc_mean_err);
    }
}
