//! Figure 6 — **Overhead of Histories**.
//!
//! The paper times two query types over relations of 1K–5K tuples, with
//! and without history maintenance: *joins over range queries* (floors +
//! products) and *projections of the resulting correlated data* (collapse
//! of the 2-D pdfs). The reported overhead is 5–20%; disabling histories
//! is faster but **incorrect** (Figure 3's phantom tuples appear).
//!
//! Setup mirrors the paper's pipeline: a base table `T(id, a, b)` with
//! jointly distributed `(a, b)`; two derived views `Ta = Π_{id,a}(σ(T))`
//! and `Tb = Π_{id,b}(σ(T))` which are historically dependent; the join
//! recombines them per `id`, and the projection then collapses the merged
//! 2-D pdfs back to one attribute.

use orion_core::prelude::*;
use orion_core::project::project;
use orion_core::select::select;
use orion_obs::{json, ExecStats, ExecStatsSnapshot};
use orion_pdf::prelude::*;
use orion_storage::codec::{decode_joint, encode_joint};
use orion_storage::{FileStore, HeapFile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

/// Configuration for the Figure 6 sweep.
#[derive(Debug, Clone)]
pub struct Fig6Config {
    /// Tuple counts to sweep (paper: 1K–5K).
    pub tuple_counts: Vec<usize>,
    /// Support points per base joint pdf.
    pub points_per_pdf: usize,
    /// Workload seed.
    pub seed: u64,
    /// Measurement repetitions (minimum is reported).
    pub repeats: usize,
}

impl Default for Fig6Config {
    fn default() -> Self {
        Fig6Config {
            tuple_counts: vec![1_000, 2_000, 3_000, 4_000, 5_000],
            points_per_pdf: 4,
            seed: 42,
            repeats: 3,
        }
    }
}

/// One measurement of the Figure 6 sweep.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    pub n_tuples: usize,
    /// `"join"` or `"project"`.
    pub query: String,
    /// Seconds with history maintenance (correct).
    pub with_hist_secs: f64,
    /// Seconds without history maintenance (fast but wrong).
    pub without_hist_secs: f64,
    /// Relative overhead, percent.
    pub overhead_pct: f64,
    /// Pdf-operation counters with histories on, cumulative over the
    /// measurement repeats.
    pub with_hist_ops: ExecStatsSnapshot,
    /// Pdf-operation counters with histories off, cumulative over the
    /// measurement repeats.
    pub without_hist_ops: ExecStatsSnapshot,
}

impl Fig6Row {
    /// JSON form: timings plus the two nested operator-stats snapshots.
    pub fn to_json(&self) -> json::Value {
        json::Value::object()
            .with("n_tuples", self.n_tuples)
            .with("query", self.query.as_str())
            .with("with_hist_secs", self.with_hist_secs)
            .with("without_hist_secs", self.without_hist_secs)
            .with("overhead_pct", self.overhead_pct)
            .with("with_hist_ops", self.with_hist_ops.to_json())
            .with("without_hist_ops", self.without_hist_ops.to_json())
    }
}

/// JSON array over the whole sweep.
pub fn rows_to_json(rows: &[Fig6Row]) -> json::Value {
    let mut arr = json::Value::array();
    for r in rows {
        arr.push(r.to_json());
    }
    arr
}

/// The operator-stats snapshot the `fig6_history_overhead` binary writes
/// next to its results: the pdf-operation counts that explain where the
/// history overhead comes from (extra collapses and marginalizations).
pub fn stats_json(rows: &[Fig6Row]) -> json::Value {
    let mut arr = json::Value::array();
    for r in rows {
        arr.push(
            json::Value::object()
                .with("n_tuples", r.n_tuples)
                .with("query", r.query.as_str())
                .with("with_hist", r.with_hist_ops.to_json())
                .with("without_hist", r.without_hist_ops.to_json()),
        );
    }
    json::Value::object().with("figure", "fig6").with("operators", arr)
}

/// Builds the base table `T(id, a, b)` with correlated discrete joints.
pub fn base_table(n: usize, points: usize, seed: u64, reg: &mut HistoryRegistry) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = ProbSchema::new(
        vec![
            ("id", ColumnType::Int, false),
            ("a", ColumnType::Real, true),
            ("b", ColumnType::Real, true),
        ],
        vec![vec!["a", "b"]],
    )
    .expect("valid schema");
    let mut rel = Relation::new("T", schema);
    for id in 1..=n as i64 {
        let mut weights: Vec<f64> = (0..points).map(|_| rng.gen_range(0.2..1.0)).collect();
        let total: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= total;
        }
        let mut pts = Vec::with_capacity(points);
        for p in weights {
            let a = rng.gen_range(0.0..100.0f64).round();
            let b = (a + rng.gen_range(-10.0..10.0f64)).round();
            pts.push((vec![a, b], p));
        }
        let joint = JointPdf::from_points(JointDiscrete::from_points(2, pts).expect("valid joint"));
        rel.insert(reg, &[("id", Value::Int(id))], vec![(vec!["a", "b"], joint)])
            .expect("valid insert");
    }
    rel
}

/// Writes the base table into an on-disk heap file (id + encoded joint per
/// record), so the timed pipelines include a real scan + decode phase, as
/// the paper's PostgreSQL-resident queries did.
pub fn write_base_heap(
    base: &Relation,
    path: &std::path::Path,
) -> std::io::Result<HeapFile<FileStore>> {
    let mut heap = HeapFile::new(FileStore::create(path)?, 256);
    let mut buf = Vec::with_capacity(512);
    for t in &base.tuples {
        let Value::Int(id) = t.certain[0] else { panic!("id is certain Int") };
        buf.clear();
        buf.extend_from_slice(&id.to_le_bytes());
        encode_joint(&t.nodes[0].joint, &mut buf);
        heap.insert(&buf)?;
    }
    heap.pool().flush()?;
    heap.pool().clear_cache()?;
    Ok(heap)
}

/// Scans the heap file back into a relation, registering fresh histories.
fn load_base(heap: &HeapFile<FileStore>, reg: &mut HistoryRegistry) -> Relation {
    let schema = ProbSchema::new(
        vec![
            ("id", ColumnType::Int, false),
            ("a", ColumnType::Real, true),
            ("b", ColumnType::Real, true),
        ],
        vec![vec!["a", "b"]],
    )
    .expect("valid schema");
    let mut rel = Relation::new("T", schema);
    heap.scan(|_, rec| {
        let id = i64::from_le_bytes(rec[..8].try_into().expect("8-byte id"));
        let mut slice = &rec[8..];
        let joint = decode_joint(&mut slice).expect("valid joint");
        rel.insert(reg, &[("id", Value::Int(id))], vec![(vec!["a", "b"], joint)])
            .expect("valid insert");
        true
    })
    .expect("scan");
    rel
}

/// Runs the full join-over-range-queries pipeline (the paper times whole
/// queries: scan + decode, range selections, projections, then the join),
/// with the supplied collapse policy. Returns `(seconds, result tuples,
/// relation)`.
fn join_query(
    heap: &HeapFile<FileStore>,
    reg: &mut HistoryRegistry,
    opts: &ExecOptions,
) -> (f64, usize, Relation) {
    heap.pool().clear_cache().expect("cache clear");
    let t0 = Instant::now();
    let base = &load_base(heap, reg);
    let sel_a = select(base, &Predicate::cmp("a", CmpOp::Lt, 80.0), reg, opts).expect("select a");
    let mut ta = project(&sel_a, &["id", "a"], reg, opts).expect("project a");
    ta.name = "Ta".to_string();
    let sel_b = select(base, &Predicate::cmp("b", CmpOp::Gt, 20.0), reg, opts).expect("select b");
    let mut tb = project(&sel_b, &["id", "b"], reg, opts).expect("project b");
    tb.name = "Tb".to_string();
    // The shared `id` column gets qualified by the view names.
    let join_pred = Predicate::cmp_cols("Ta.id", CmpOp::Eq, "Tb.id");
    let joined = orion_core::join::join(&ta, &tb, Some(&join_pred), reg, opts).expect("join");
    let secs = t0.elapsed().as_secs_f64();
    let n = joined.len();
    (secs, n, joined)
}

/// The projection query over the (lazily joined) correlated data. With
/// histories, projecting triggers the collapse of the dependent 2-D pdfs
/// (the paper's "Project (with histories)" series); without, the nodes are
/// carried as-is — faster, but the output marginals are wrong.
fn project_query(
    joined: &Relation,
    reg: &mut HistoryRegistry,
    collapse_first: bool,
    opts: &ExecOptions,
) -> (f64, usize) {
    let a_col = joined
        .schema
        .columns()
        .iter()
        .find(|c| c.uncertain && (c.name == "a" || c.name.ends_with(".a")))
        .expect("a column")
        .name
        .clone();
    let t0 = Instant::now();
    let input = if collapse_first {
        let mut collapsed = joined.clone();
        collapsed.tuples = joined
            .tuples
            .iter()
            .map(|t| {
                orion_core::collapse::collapse_tuple_with_stats(
                    t,
                    reg,
                    opts.resolution,
                    opts.stats_ref(),
                )
            })
            .collect::<Result<_, _>>()
            .expect("collapse");
        collapsed
    } else {
        joined.clone()
    };
    let projected = project(&input, &[a_col.as_str()], reg, opts).expect("project");
    let secs = t0.elapsed().as_secs_f64();
    (secs, projected.len())
}

/// Runs the sweep: each tuple count measured with and without histories.
pub fn run(cfg: &Fig6Config) -> Vec<Fig6Row> {
    let mut rows = Vec::new();
    for &n in &cfg.tuple_counts {
        // One collector per (query, policy) cell; counts accumulate over
        // the repeats and ride along in the row for the stats exporter.
        let join_w_stats = Arc::new(ExecStats::new());
        let join_wo_stats = Arc::new(ExecStats::new());
        let proj_w_stats = Arc::new(ExecStats::new());
        let proj_wo_stats = Arc::new(ExecStats::new());
        let with = ExecOptions::default().with_stats(join_w_stats.clone());
        let without = ExecOptions { use_histories: false, ..ExecOptions::default() }
            .with_stats(join_wo_stats.clone());
        let proj_with = ExecOptions::default().with_stats(proj_w_stats.clone());
        let proj_without = ExecOptions { use_histories: false, ..ExecOptions::default() }
            .with_stats(proj_wo_stats.clone());
        // Lazy mode defers the dependent-node merge to the projection.
        let lazy = ExecOptions { eager_collapse: false, ..ExecOptions::default() };

        let mut reg0 = HistoryRegistry::new();
        let base = base_table(n, cfg.points_per_pdf, cfg.seed, &mut reg0);
        let dir = std::env::temp_dir().join("orion_fig6");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join(format!("base_{n}.dat"));
        let heap = write_base_heap(&base, &path).expect("write heap");

        // Repeat each measurement and keep the minimum to suppress I/O
        // and allocator jitter.
        let mut join_w = f64::INFINITY;
        let mut join_wo = f64::INFINITY;
        let mut proj_w = f64::INFINITY;
        let mut proj_wo = f64::INFINITY;
        for _ in 0..cfg.repeats {
            let mut reg1 = HistoryRegistry::new();
            let (jw, len_w, _) = join_query(&heap, &mut reg1, &with);
            join_w = join_w.min(jw);

            let mut reg2 = HistoryRegistry::new();
            let (jwo, len_wo, _) = join_query(&heap, &mut reg2, &without);
            join_wo = join_wo.min(jwo);
            debug_assert!(len_w <= len_wo, "histories can only remove phantom combinations");

            // Projection overhead: same lazily-joined input, collapse on/off.
            let mut reg3 = HistoryRegistry::new();
            let (_, _, lazy_joined) = join_query(&heap, &mut reg3, &lazy);
            let (pw, _) = project_query(&lazy_joined, &mut reg3, true, &proj_with);
            proj_w = proj_w.min(pw);
            let (pwo, _) = project_query(&lazy_joined, &mut reg3, false, &proj_without);
            proj_wo = proj_wo.min(pwo);
        }
        drop(heap);
        std::fs::remove_file(&path).ok();

        rows.push(Fig6Row {
            n_tuples: n,
            query: "join".to_string(),
            with_hist_secs: join_w,
            without_hist_secs: join_wo,
            overhead_pct: (join_w / join_wo - 1.0) * 100.0,
            with_hist_ops: join_w_stats.snapshot(),
            without_hist_ops: join_wo_stats.snapshot(),
        });
        rows.push(Fig6Row {
            n_tuples: n,
            query: "project".to_string(),
            with_hist_secs: proj_w,
            without_hist_secs: proj_wo,
            overhead_pct: (proj_w / proj_wo - 1.0) * 100.0,
            with_hist_ops: proj_w_stats.snapshot(),
            without_hist_ops: proj_wo_stats.snapshot(),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_table_masses_are_full() {
        let mut reg = HistoryRegistry::new();
        let rel = base_table(50, 4, 1, &mut reg);
        assert_eq!(rel.len(), 50);
        for t in &rel.tuples {
            assert!((t.naive_existence() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn histories_change_results_not_just_time() {
        // The with-histories join must produce the exact per-tuple
        // distribution; the without-histories join is a plain product.
        let mut reg0 = HistoryRegistry::new();
        let base = base_table(30, 3, 9, &mut reg0);
        let path = std::env::temp_dir().join("orion_fig6_test_hist.dat");
        let heap = write_base_heap(&base, &path).unwrap();
        let with = ExecOptions::default();
        let mut reg1 = HistoryRegistry::new();
        let (_, n_with, _) = join_query(&heap, &mut reg1, &with);

        let without = ExecOptions { use_histories: false, ..ExecOptions::default() };
        let mut reg2 = HistoryRegistry::new();
        let (_, n_without, _) = join_query(&heap, &mut reg2, &without);
        drop(heap);
        std::fs::remove_file(&path).ok();

        assert!(n_with >= 1);
        assert!(n_without >= n_with);
    }

    #[test]
    fn sweep_produces_both_query_rows() {
        let rows = run(&Fig6Config {
            tuple_counts: vec![100, 200],
            points_per_pdf: 3,
            seed: 3,
            repeats: 1,
        });
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().any(|r| r.query == "join"));
        assert!(rows.iter().any(|r| r.query == "project"));
        for r in &rows {
            assert!(r.with_hist_secs > 0.0 && r.without_hist_secs > 0.0);
        }
    }

    #[test]
    fn sweep_records_operator_stats() {
        let rows =
            run(&Fig6Config { tuple_counts: vec![100], points_per_pdf: 3, seed: 3, repeats: 1 });
        let join = rows.iter().find(|r| r.query == "join").unwrap();
        assert!(join.with_hist_ops.pdf_floors > 0, "{:?}", join.with_hist_ops);
        assert!(join.without_hist_ops.pdf_floors > 0, "{:?}", join.without_hist_ops);
        // History maintenance is the source of collapse + marginalization
        // work; the naive join never does either.
        assert!(join.with_hist_ops.collapses > 0, "{:?}", join.with_hist_ops);
        assert_eq!(join.without_hist_ops.collapses, 0);
        assert_eq!(join.without_hist_ops.pdf_marginalizations, 0);
        let proj = rows.iter().find(|r| r.query == "project").unwrap();
        // Only the with-histories projection collapses the dependent pdfs;
        // the naive one records no pdf operations at all. (Batch counters
        // are bookkeeping, not pdf work, so they are not asserted on —
        // this test must pass under ORION_MODE=batch too.)
        assert!(proj.with_hist_ops.collapses > 0, "{:?}", proj.with_hist_ops);
        let naive = &proj.without_hist_ops;
        assert_eq!(
            (naive.pdf_products, naive.pdf_floors, naive.pdf_marginalizations, naive.collapses),
            (0, 0, 0, 0),
            "{naive:?}"
        );
        let text = stats_json(&rows).to_string_compact();
        assert!(text.contains("\"with_hist\""), "{text}");
        assert!(text.contains("\"pdf_floors\""), "{text}");
    }
}
