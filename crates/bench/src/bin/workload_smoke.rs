//! CI smoke for the workload repository (`orion.statements`,
//! `orion.slow_queries`, `orion.plan_feedback`).
//!
//! Usage: `workload_smoke [--n N] [--reps R] [--dump-dir DIR]
//! [--max-overhead PCT] [--skip-overhead]`
//!
//! Phase 1 (functional, always): runs the Figure 5 threshold-query shape
//! through a durable session with the repository capturing everything
//! (`slow_nanos = 0`), then asserts
//!
//! * `orion.statements` is populated and literal variants share one
//!   fingerprint,
//! * counters conserve: `sum(calls)` equals the number of executed
//!   statements,
//! * `orion.plan_feedback` q-errors match EXPLAIN ANALYZE's est-vs-actual
//!   within rounding,
//! * the slow-query dump validates ([`orion_obs::validate_slow_dump`]);
//!   its path is printed as `SLOW_DUMP <path>` for `trace_check`.
//!
//! Phase 2 (overhead, unless `--skip-overhead`): times the query mix with
//! the repository enabled (production config: no slow capture) against
//! `enabled = false`, and exits **3** — distinct from the functional
//! failure exit 1 — when the relative overhead exceeds `--max-overhead`
//! (default 5%). `scripts/check.sh` treats exit 3 as advisory unless
//! `ORION_SPEEDUP_GATE=1`.

use orion_obs::{json, validate_slow_dump};
use orion_sql::{DurableSession, Output};
use orion_workload::SensorWorkload;
use std::path::{Path, PathBuf};
use std::time::Instant;

fn fail(msg: &str) -> ! {
    eprintln!("FAIL: {msg}");
    std::process::exit(1);
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

/// Builds the sensor table and returns the number of statements executed.
fn build_readings(s: &mut DurableSession, n: usize, seed: u64) -> u64 {
    let mut executed = 0u64;
    s.execute("CREATE TABLE readings (rid INT, value REAL UNCERTAIN)").expect("create");
    executed += 1;
    let mut workload = SensorWorkload::new(seed);
    for chunk in workload.readings(n).chunks(256) {
        let values: Vec<String> = chunk
            .iter()
            .map(|r| format!("({}, GAUSSIAN({}, {}))", r.rid, r.mean, r.sd * r.sd))
            .collect();
        s.execute(&format!("INSERT INTO readings VALUES {}", values.join(", "))).expect("insert");
        executed += 1;
    }
    s.execute("ANALYZE readings").expect("analyze");
    executed + 1
}

/// Flattens a profile tree into `(op, est, actual)` triples, mirroring the
/// positional walk `PlanFeedbackStore::fold` uses.
fn collect_ops(p: &orion_obs::OpProfile, out: &mut Vec<(String, u64, u64)>) {
    out.push((p.name.clone(), p.est_rows.unwrap_or(0), p.stats.tuples_out));
    for c in &p.children {
        collect_ops(c, out);
    }
}

fn functional_phase(dir: &Path, n: usize, dump_dir: &Path) {
    let mut s = DurableSession::open(dir).expect("open durable session");
    let repo = s.db().workload();
    let mut cfg = repo.config();
    cfg.enabled = true;
    cfg.slow_nanos = 0; // capture every statement into the slow log
    repo.set_config(cfg);

    let mut executed = build_readings(&mut s, n, 42);
    // Literal variants of one statement shape: one fingerprint, six calls.
    for thr in [30, 50, 70] {
        for p in ["0.5", "0.25"] {
            s.execute(&format!("SELECT rid FROM readings WHERE PROB(value < {thr}) > {p}"))
                .expect("threshold query");
            executed += 1;
        }
    }
    let out = s
        .execute("EXPLAIN ANALYZE SELECT rid FROM readings WHERE PROB(value < 50) > 0.5")
        .expect("profiled run");
    executed += 1;
    let Output::Explain { profile, .. } = out else { fail("EXPLAIN returned non-Explain output") };

    // --- orion.statements populated; variants share a fingerprint. ---
    let stmts = repo.statements();
    if stmts.is_empty() {
        fail("orion.statements is empty after the workload");
    }
    let Some(sel) = stmts.iter().find(|st| st.text.starts_with("SELECT rid FROM readings")) else {
        fail("no SELECT entry in orion.statements")
    };
    if sel.calls != 6 {
        fail(&format!("literal variants did not share a fingerprint: calls={}", sel.calls));
    }
    if sel.pdf_ops == 0 {
        fail("threshold query charged no pdf ops to its statement");
    }

    // --- Conservation: sum(calls) == executed statements. ---
    let total = repo.total_calls();
    if total != executed {
        fail(&format!("counter conservation: sum(calls)={total}, executed={executed}"));
    }

    // --- Vtables queryable through SQL. ---
    let Output::Table(rel) = s.execute("SELECT * FROM orion.statements").expect("vtable") else {
        fail("orion.statements did not return a table")
    };
    if rel.len() != stmts.len() {
        fail(&format!("orion.statements rows {} != repository entries {}", rel.len(), stmts.len()));
    }
    let Output::Table(slow_rel) = s.execute("SELECT * FROM orion.slow_queries").expect("vtable")
    else {
        fail("orion.slow_queries did not return a table")
    };
    if slow_rel.is_empty() {
        fail("slow_nanos=0 captured nothing");
    }

    // --- plan_feedback q-errors match EXPLAIN ANALYZE within rounding. ---
    let mut ops: Vec<(String, u64, u64)> = Vec::new();
    collect_ops(&profile, &mut ops);
    let summaries = s.db().plan_feedback().summaries();
    if summaries.is_empty() {
        fail("orion.plan_feedback is empty after a profiled run");
    }
    for (op, est, actual) in &ops {
        let q = orion_core::prelude::q_error(*est, *actual);
        let Some(fb) = summaries.iter().find(|f| &f.op == op && f.table == "readings") else {
            fail(&format!("operator {op} missing from plan_feedback"))
        };
        // The profiled run is the most recent fold, so the summary's
        // latest observation must equal it exactly; its q-error must
        // reproduce within rounding and bound below the recorded max
        // (earlier captured literal variants may have fared worse).
        if fb.last_est != *est || fb.last_actual != *actual {
            fail(&format!(
                "{op}: feedback last est/actual {}/{} != profiled {est}/{actual}",
                fb.last_est, fb.last_actual
            ));
        }
        let last_q = orion_core::prelude::q_error(fb.last_est, fb.last_actual);
        if (last_q - q).abs() > 1e-9 {
            fail(&format!("{op}: feedback q-error {last_q} != profiled {q}"));
        }
        if fb.max_q < q - 1e-9 {
            fail(&format!("{op}: feedback max_q {} below profiled q-error {q}", fb.max_q));
        }
    }

    // --- The slow-query dump validates. ---
    std::fs::create_dir_all(dump_dir).expect("create dump dir");
    let path = repo.dump_slow_to_dir(dump_dir).expect("dump slow queries");
    let text = std::fs::read_to_string(&path).expect("read dump");
    let doc = json::parse(&text).unwrap_or_else(|e| fail(&format!("dump is not JSON: {e}")));
    match validate_slow_dump(&doc) {
        Ok(n) if n > 0 => {}
        Ok(_) => fail("slow dump validated but holds no queries"),
        Err(e) => fail(&format!("slow dump invalid: {e}")),
    }
    println!("SLOW_DUMP {}", path.display());
    eprintln!(
        "functional: OK ({} fingerprints, {} slow captures, {} feedback summaries)",
        stmts.len(),
        slow_rel.len(),
        summaries.len()
    );
}

/// Times one burst of `reps` threshold queries.
fn time_queries(s: &mut DurableSession, reps: usize) -> f64 {
    let start = Instant::now();
    for i in 0..reps {
        s.execute(&format!("SELECT rid FROM readings WHERE PROB(value < {}) > 0.5", 30 + i))
            .expect("query");
    }
    start.elapsed().as_secs_f64()
}

fn overhead_phase(dir: &Path, reps: usize, max_overhead_pct: f64) {
    let mut s = DurableSession::open(dir).expect("reopen durable session");
    let repo = s.db().workload();
    // Production config: repository on, slow capture off — the cost being
    // measured is fingerprinting + counter folding, not plan re-runs.
    let mut cfg = repo.config();
    cfg.enabled = true;
    cfg.slow_nanos = u64::MAX;
    cfg.sample_every = 0;
    repo.set_config(cfg);
    repo.set_enabled(false);
    let _ = time_queries(&mut s, reps); // warm the buffer pool and caches
                                        // Interleave the enabled/disabled bursts so machine drift hits both
                                        // sides equally, then compare best-of-5 (minimum filters scheduler
                                        // noise better than the mean on shared CI hardware).
    let (mut disabled, mut enabled) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..5 {
        repo.set_enabled(false);
        disabled = disabled.min(time_queries(&mut s, reps));
        repo.set_enabled(true);
        enabled = enabled.min(time_queries(&mut s, reps));
    }
    let overhead_pct = if disabled > 0.0 { (enabled / disabled - 1.0) * 100.0 } else { 0.0 };
    eprintln!(
        "overhead: disabled {disabled:.4}s, enabled {enabled:.4}s => {overhead_pct:+.2}% \
         (gate {max_overhead_pct:.1}%)"
    );
    if overhead_pct > max_overhead_pct {
        eprintln!("workload repository overhead above the gate");
        std::process::exit(3);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = arg_value(&args, "--n").map_or(2_000, |v| v.parse().expect("--n"));
    let reps: usize = arg_value(&args, "--reps").map_or(20, |v| v.parse().expect("--reps"));
    let max_overhead: f64 =
        arg_value(&args, "--max-overhead").map_or(5.0, |v| v.parse().expect("--max-overhead"));
    let skip_overhead = args.iter().any(|a| a == "--skip-overhead");
    let dump_dir = arg_value(&args, "--dump-dir")
        .map_or_else(|| std::env::temp_dir().join("orion_workload_smoke_dumps"), PathBuf::from);

    let dir = std::env::temp_dir().join(format!("orion_workload_smoke_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    functional_phase(&dir, n, &dump_dir);
    if !skip_overhead {
        overhead_phase(&dir, reps, max_overhead);
    }
    std::fs::remove_dir_all(&dir).ok();
    println!("workload_smoke: OK");
}
