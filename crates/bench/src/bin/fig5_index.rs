//! Regenerates the fig5 index variant: threshold-query runtime through a
//! persistent cdf-summary index vs the seed full scan, per selectivity,
//! in row and batch execution modes.
//!
//! Usage: `fig5_index [--full] [--n N] [--selectivity S] [--queries Q]
//! [--min-speedup X] [--json PATH]`
//!
//! Default sweeps selectivities 0.02/0.05/0.1 over 20K tuples; `--full`
//! raises the relation to 100K. `--selectivity S` restricts the sweep to
//! one point. With `--min-speedup X` the process exits non-zero when the
//! smallest steady-state speedup at selectivity ≤ 0.1 falls below `X`.
//! Results are bitwise-identical across paths by construction — the sweep
//! aborts on any divergence.

use orion_bench::fig5_index::{min_query_speedup, rows_to_json, run, FigIndexConfig};
use orion_bench::report;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut cfg = if args.iter().any(|a| a == "--full") {
        FigIndexConfig::full()
    } else {
        FigIndexConfig::default()
    };
    if let Some(n) = args.iter().position(|a| a == "--n").and_then(|i| args.get(i + 1)) {
        cfg.n_tuples = n.parse().expect("--n expects a tuple count");
    }
    if let Some(s) = args.iter().position(|a| a == "--selectivity").and_then(|i| args.get(i + 1)) {
        cfg.selectivities = vec![s.parse().expect("--selectivity expects a fraction")];
    }
    if let Some(q) = args.iter().position(|a| a == "--queries").and_then(|i| args.get(i + 1)) {
        cfg.n_queries = q.parse().expect("--queries expects a count");
    }
    let min_speedup: Option<f64> = args
        .iter()
        .position(|a| a == "--min-speedup")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--min-speedup expects a number"));
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);

    eprintln!(
        "fig5 index variant: {} tuples, selectivities {:?}, {} queries each, p = {}",
        cfg.n_tuples, cfg.selectivities, cfg.n_queries, cfg.p
    );
    let rows = run(&cfg).expect("index-vs-scan sweep");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.3}", r.target_selectivity),
                r.mode.clone(),
                r.matches.to_string(),
                report::fmt_secs(r.build_secs),
                report::fmt_secs(r.scan_secs),
                report::fmt_secs(r.index_secs),
                format!("{:.2}x", r.query_speedup),
                format!("{:.2}x", r.total_speedup),
                r.pruned.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        report::text_table(
            &[
                "selectivity",
                "mode",
                "matches",
                "build",
                "scan",
                "index",
                "q_speedup",
                "t_speedup",
                "pruned"
            ],
            &table
        )
    );
    let min = min_query_speedup(&rows);
    eprintln!("min steady-state speedup at selectivity <= 0.1: {min:.2}x");
    if let Some(p) = json_path {
        report::write_json(&p, &rows_to_json(&rows)).expect("write json");
        eprintln!("wrote {}", p.display());
    }
    if let Some(gate) = min_speedup {
        if min < gate {
            eprintln!("index speedup {min:.2}x below required {gate:.2}x");
            std::process::exit(1);
        }
    }
}
