//! Morsel-driven parallel scaling sweep: selection runtime and speedup at
//! increasing worker counts, with bit-identical output enforced.
//!
//! Usage: `fig_parallel [--quick] [--json PATH] [--trace PATH] [--min-speedup X]`
//! Default is the acceptance workload (500K Gaussian tuples); `--quick`
//! runs 100K. `--json PATH` also writes a `.stats.json` sibling with the
//! per-worker morsel/busy-time lanes; `--trace PATH` records the sweep with
//! the structured tracer and writes a Chrome trace-event file. With
//! `--min-speedup X` the process exits non-zero unless the 4-thread
//! speedup reaches `X` — intended for CI gates on machines with at least
//! 4 cores.

use orion_bench::parallel::{rows_to_json, run, speedup_at, stats_json, ParallelConfig};
use orion_bench::report;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    let min_speedup = args
        .iter()
        .position(|a| a == "--min-speedup")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse::<f64>().expect("--min-speedup takes a number"));
    let trace_path = report::trace_arg(&args);

    let cfg = if quick { ParallelConfig::quick() } else { ParallelConfig::default() };
    eprintln!(
        "fig_parallel: {} tuples, threads {:?}, morsel {} (host cores: {})",
        cfg.n_tuples,
        cfg.thread_counts,
        cfg.morsel_size,
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
    let rows = run(&cfg);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.threads.to_string(),
                report::fmt_secs(r.query_secs),
                format!("{:.2}x", r.speedup),
                r.n_tuples.to_string(),
                r.out_tuples.to_string(),
            ]
        })
        .collect();
    print!("{}", report::text_table(&["threads", "query", "speedup", "tuples", "matches"], &table));
    if let Some(p) = json_path {
        report::write_json(&p, &rows_to_json(&rows)).expect("write json");
        eprintln!("wrote {}", p.display());
        let sp = report::stats_path(&p);
        report::write_json(&sp, &stats_json(&rows)).expect("write stats json");
        eprintln!("wrote {}", sp.display());
    }
    if let Some(p) = trace_path {
        report::write_trace(&p);
    }
    if let Some(min) = min_speedup {
        let got = speedup_at(&rows, 4).unwrap_or(0.0);
        if got < min {
            eprintln!("FAIL: 4-thread speedup {got:.2}x < required {min:.2}x");
            std::process::exit(1);
        }
        eprintln!("OK: 4-thread speedup {got:.2}x >= {min:.2}x");
    }
}
