//! Regenerates Figure 5: range-query runtime and physical reads over
//! on-disk relations of uncertain tuples, per representation.
//!
//! Usage: `fig5_performance [--full] [--mode row|batch] [--compare]
//! [--min-speedup X] [--json PATH] [--trace PATH]`
//!
//! Default is a 10x scaled-down sweep (50K-300K tuples); `--full` runs the
//! paper's 0.5M-3M. `--mode batch` runs the query phase through the
//! columnar batch kernels instead of the scalar row path. `--compare`
//! builds each relation once and times the query phase in both modes,
//! reporting the row/batch speedup (with `--min-speedup X` the process
//! exits non-zero if the widest representation's aggregate speedup —
//! fig5's `Discrete(25)`, where the columnar layout has the most bytes to
//! win — falls below `X`). `--trace
//! PATH` records the sweep with the structured tracer and writes a
//! Chrome trace-event file.

use orion_bench::fig5::{
    aggregate_speedup, cleanup, compare, compare_to_json, estimate_report, rows_to_json, run_mode,
    stats_json, wide_repr_speedup, workload_report, Fig5Config,
};
use orion_bench::report;
use orion_core::batch::ExecMode;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let compare_modes = args.iter().any(|a| a == "--compare");
    let mode = match args.iter().position(|a| a == "--mode").and_then(|i| args.get(i + 1)) {
        Some(m) if m.eq_ignore_ascii_case("batch") => ExecMode::Batch,
        Some(m) if m.eq_ignore_ascii_case("row") => ExecMode::Row,
        Some(m) => {
            eprintln!("unknown --mode '{m}' (expected row or batch)");
            std::process::exit(2);
        }
        None => ExecMode::Row,
    };
    let min_speedup: Option<f64> = args
        .iter()
        .position(|a| a == "--min-speedup")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--min-speedup expects a number"));
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    let trace_path = report::trace_arg(&args);

    let cfg = if full { Fig5Config::default() } else { Fig5Config::quick() };
    eprintln!(
        "Figure 5: tuples {:?}, pool {} pages, reprs {:?}, mode {}",
        cfg.tuple_counts,
        cfg.pool_pages,
        cfg.reprs.iter().map(|r| r.label()).collect::<Vec<_>>(),
        if compare_modes { "row-vs-batch".to_string() } else { mode.to_string() }
    );

    if compare_modes {
        let rows = compare(&cfg).expect("compare sweep");
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.n_tuples.to_string(),
                    r.repr.clone(),
                    report::fmt_secs(r.row_query_secs),
                    report::fmt_secs(r.batch_query_secs),
                    format!("{:.2}x", r.speedup),
                    r.matches.to_string(),
                ]
            })
            .collect();
        print!(
            "{}",
            report::text_table(
                &["tuples", "repr", "row_query", "batch_query", "speedup", "matches"],
                &table
            )
        );
        let agg = aggregate_speedup(&rows);
        let wide = wide_repr_speedup(&rows);
        eprintln!("aggregate speedup (total row query time / total batch): {agg:.2}x");
        eprintln!("wide-representation aggregate speedup (gate metric): {wide:.2}x");
        if let Some(p) = json_path {
            report::write_json(&p, &compare_to_json(&rows)).expect("write json");
            eprintln!("wrote {}", p.display());
        }
        if let Some(p) = trace_path {
            report::write_trace(&p);
        }
        cleanup(&cfg.dir);
        if let Some(min) = min_speedup {
            if wide < min {
                eprintln!("wide-representation speedup {wide:.2}x below required {min:.2}x");
                std::process::exit(1);
            }
        }
        return;
    }

    let rows = run_mode(&cfg, mode).expect("sweep");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n_tuples.to_string(),
                r.repr.clone(),
                r.mode.clone(),
                report::fmt_secs(r.build_secs),
                report::fmt_secs(r.query_secs),
                r.physical_reads.to_string(),
                r.pages.to_string(),
                r.matches.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        report::text_table(
            &["tuples", "repr", "mode", "build", "query", "phys_reads", "pages", "matches"],
            &table
        )
    );
    if let Some(p) = json_path {
        report::write_json(&p, &rows_to_json(&rows)).expect("write json");
        eprintln!("wrote {}", p.display());
        // Estimate-vs-actual for the workload's threshold query, before
        // and after ANALYZE, rides along in the stats sidecar.
        let est_n = 2_000;
        let estimates =
            vec![estimate_report(est_n, cfg.seed, false), estimate_report(est_n, cfg.seed, true)];
        for r in &estimates {
            if let Some(t) = r.threshold_op() {
                eprintln!(
                    "threshold estimate (analyzed={}): est {} actual {} rel_err {:.3}",
                    r.analyzed, t.est_rows, t.actual_rows, t.rel_err
                );
            }
        }
        // The per-statement workload repository over the same query shape
        // becomes the sidecar's `statements` section.
        let statements = workload_report(est_n, cfg.seed);
        let sp = report::stats_path(&p);
        report::write_json(&sp, &stats_json(&rows, &estimates, statements))
            .expect("write stats json");
        eprintln!("wrote {}", sp.display());
    }
    if let Some(p) = trace_path {
        report::write_trace(&p);
    }
    cleanup(&cfg.dir);
}
