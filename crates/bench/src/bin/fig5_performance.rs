//! Regenerates Figure 5: range-query runtime and physical reads over
//! on-disk relations of uncertain tuples, per representation.
//!
//! Usage: `fig5_performance [--full] [--json PATH] [--trace PATH]`
//! Default is a 10x scaled-down sweep (50K-300K tuples); `--full` runs the
//! paper's 0.5M-3M. `--trace PATH` records the sweep with the structured
//! tracer and writes a Chrome trace-event file.

use orion_bench::fig5::{cleanup, estimate_report, rows_to_json, run, stats_json, Fig5Config};
use orion_bench::report;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    let trace_path = report::trace_arg(&args);

    let cfg = if full { Fig5Config::default() } else { Fig5Config::quick() };
    eprintln!(
        "Figure 5: tuples {:?}, pool {} pages, reprs {:?}",
        cfg.tuple_counts,
        cfg.pool_pages,
        cfg.reprs.iter().map(|r| r.label()).collect::<Vec<_>>()
    );
    let rows = run(&cfg).expect("sweep");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n_tuples.to_string(),
                r.repr.clone(),
                report::fmt_secs(r.build_secs),
                report::fmt_secs(r.query_secs),
                r.physical_reads.to_string(),
                r.pages.to_string(),
                r.matches.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        report::text_table(
            &["tuples", "repr", "build", "query", "phys_reads", "pages", "matches"],
            &table
        )
    );
    if let Some(p) = json_path {
        report::write_json(&p, &rows_to_json(&rows)).expect("write json");
        eprintln!("wrote {}", p.display());
        // Estimate-vs-actual for the workload's threshold query, before
        // and after ANALYZE, rides along in the stats sidecar.
        let est_n = 2_000;
        let estimates =
            vec![estimate_report(est_n, cfg.seed, false), estimate_report(est_n, cfg.seed, true)];
        for r in &estimates {
            if let Some(t) = r.threshold_op() {
                eprintln!(
                    "threshold estimate (analyzed={}): est {} actual {} rel_err {:.3}",
                    r.analyzed, t.est_rows, t.actual_rows, t.rel_err
                );
            }
        }
        let sp = report::stats_path(&p);
        report::write_json(&sp, &stats_json(&rows, &estimates)).expect("write stats json");
        eprintln!("wrote {}", sp.display());
    }
    if let Some(p) = trace_path {
        report::write_trace(&p);
    }
    cleanup(&cfg.dir);
}
