//! Regenerates Figure 6: runtime of joins over range queries and of
//! projections of correlated data, with and without history maintenance.
//!
//! Usage: `fig6_history_overhead [--json PATH]`

use orion_bench::fig6::{rows_to_json, run, stats_json, Fig6Config};
use orion_bench::report;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);

    let cfg = Fig6Config::default();
    eprintln!("Figure 6: tuples {:?}", cfg.tuple_counts);
    let rows = run(&cfg);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n_tuples.to_string(),
                r.query.clone(),
                report::fmt_secs(r.with_hist_secs),
                report::fmt_secs(r.without_hist_secs),
                format!("{:.1}%", r.overhead_pct),
            ]
        })
        .collect();
    print!(
        "{}",
        report::text_table(&["tuples", "query", "with_hist", "wo_hist", "overhead"], &table)
    );
    if let Some(p) = json_path {
        report::write_json(&p, &rows_to_json(&rows)).expect("write json");
        eprintln!("wrote {}", p.display());
        let sp = report::stats_path(&p);
        report::write_json(&sp, &stats_json(&rows)).expect("write stats json");
        eprintln!("wrote {}", sp.display());
    }
}
