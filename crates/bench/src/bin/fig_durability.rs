//! Regenerates the durability figure: group-commit fsync amortization vs
//! writer count, and full vs incremental checkpoint cost.
//!
//! Usage: `fig_durability [--json PATH] [--trace PATH]`
//!
//! `--trace PATH` records the run with the structured tracer (WAL append /
//! fsync spans, checkpoint spans) and writes a Chrome trace-event file.

use orion_bench::durability::{run_checkpoints, run_group_commit, to_json, DurabilityConfig};
use orion_bench::report;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    let trace_path = report::trace_arg(&args);

    let cfg = DurabilityConfig::default();
    eprintln!(
        "Durability figure: writers {:?}, {} inserts/writer, window {:?}",
        cfg.writer_counts, cfg.inserts_per_writer, cfg.window
    );
    let gc = run_group_commit(&cfg);
    let table: Vec<Vec<String>> = gc
        .iter()
        .map(|r| {
            vec![
                r.writers.to_string(),
                r.mode.clone(),
                r.commits.to_string(),
                r.fsyncs.to_string(),
                r.fsyncs_saved.to_string(),
                format!("{:.2}", r.commits_per_fsync()),
                report::fmt_secs(r.secs),
            ]
        })
        .collect();
    print!(
        "{}",
        report::text_table(
            &["writers", "mode", "commits", "fsyncs", "saved", "commits/fsync", "time"],
            &table
        )
    );

    let dir = std::env::temp_dir().join("orion_fig_durability_bin");
    let ckpt = run_checkpoints(&cfg, &dir);
    std::fs::remove_dir_all(&dir).ok();
    let table: Vec<Vec<String>> = ckpt
        .iter()
        .map(|r| {
            vec![
                r.kind.clone(),
                r.tuples.to_string(),
                r.pages_copied.to_string(),
                r.pages_skipped.to_string(),
                report::fmt_secs(r.secs),
            ]
        })
        .collect();
    print!(
        "{}",
        report::text_table(
            &["checkpoint", "tuples", "pages_copied", "pages_skipped", "time"],
            &table
        )
    );

    if let Some(p) = json_path {
        report::write_json(&p, &to_json(&gc, &ckpt)).expect("write json");
        eprintln!("wrote {}", p.display());
    }
    if let Some(p) = trace_path {
        report::write_trace(&p);
    }
}
