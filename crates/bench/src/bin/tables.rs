//! Regenerates the paper's worked tables and examples through the real
//! engine: Table I (sensor relation), Tables II/III (possible worlds), the
//! Section III-C selection, Table IV (partial pdfs vs NULL), and the
//! Figure 3 history example.

use orion_core::plan::execute;
use orion_core::prelude::*;
use orion_core::pws::{engine_row_distribution, pws_row_distribution};
use orion_pdf::prelude::*;
use orion_sql::{render_relation, Database, Output};
use std::collections::HashMap;

fn main() {
    table1();
    tables2_and_3();
    section3c_selection();
    table4();
    fig3();
}

fn table1() {
    println!("== Table I: sensor database with symbolic Gaussian pdfs ==");
    let mut db = Database::new();
    db.execute("CREATE TABLE sensors (id INT, location REAL UNCERTAIN)").unwrap();
    db.execute(
        "INSERT INTO sensors VALUES (1, GAUSSIAN(20, 5)), (2, GAUSSIAN(25, 4)), \
         (3, GAUSSIAN(13, 1))",
    )
    .unwrap();
    match db.execute("SELECT * FROM sensors").unwrap() {
        Output::Table(rel) => println!("{}\n", render_relation(&rel).unwrap()),
        _ => unreachable!(),
    }
}

fn table2_relation() -> (HashMap<String, Relation>, HistoryRegistry) {
    let mut reg = HistoryRegistry::new();
    let schema =
        ProbSchema::new(vec![("a", ColumnType::Int, true), ("b", ColumnType::Int, true)], vec![])
            .unwrap();
    let mut rel = Relation::new("T", schema);
    rel.insert_simple(
        &mut reg,
        &[],
        &[
            ("a", Pdf1::discrete(vec![(0.0, 0.1), (1.0, 0.9)]).unwrap()),
            ("b", Pdf1::discrete(vec![(1.0, 0.6), (2.0, 0.4)]).unwrap()),
        ],
    )
    .unwrap();
    rel.insert_simple(&mut reg, &[], &[("a", Pdf1::certain(7.0)), ("b", Pdf1::certain(3.0))])
        .unwrap();
    let mut tables = HashMap::new();
    tables.insert("T".to_string(), rel);
    (tables, reg)
}

fn tables2_and_3() {
    println!("== Tables II + III: probabilistic relation and its possible worlds ==");
    let (tables, _) = table2_relation();
    let dist = pws_row_distribution(&Plan::scan("T"), &tables).unwrap();
    let mut rows: Vec<(String, f64)> = dist
        .iter()
        .map(|(row, p)| {
            let cells: Vec<String> = row
                .iter()
                .map(|v| match v {
                    orion_core::pws::CanonValue::Real(bits) => {
                        format!("{}", f64::from_bits(*bits))
                    }
                    other => format!("{other:?}"),
                })
                .collect();
            (format!("({})", cells.join(", ")), *p)
        })
        .collect();
    rows.sort_by(|x, y| x.0.cmp(&y.0));
    for (row, p) in rows {
        println!("  row {row}  Pr = {p:.2}");
    }
    println!();
}

fn section3c_selection() {
    println!("== Section III-C: sigma_(a < b) over Table II ==");
    let (tables, mut reg) = table2_relation();
    let plan = Plan::scan("T").select(Predicate::cmp_cols("a", CmpOp::Lt, "b"));
    let out = execute(&plan, &tables, &mut reg, &ExecOptions::default()).unwrap();
    println!("  result tuples: {}", out.len());
    let t = &out.tuples[0];
    let n = &t.nodes[0];
    println!("  joint pdf (mass {:.2}):", n.mass());
    let j = n.joint.enumerate().unwrap();
    for (v, p) in j.points() {
        println!("    ({}, {}) : {:.2}", v[0], v[1], p);
    }
    let engine = engine_row_distribution(&out, &reg, &ExecOptions::default()).unwrap();
    let truth = pws_row_distribution(&plan, &tables).unwrap();
    let dist = orion_core::pws::distribution_distance(&truth, &engine);
    println!("  PWS conformance distance: {dist:.2e}\n");
}

fn table4() {
    println!("== Table IV: missing attribute values vs missing tuples ==");
    let mut db = Database::new();
    db.execute("CREATE TABLE t (a INT, b REAL UNCERTAIN, c REAL UNCERTAIN, CORRELATED (b, c))")
        .unwrap();
    // Row 1: tuple certainly exists (mass 1).
    db.execute("INSERT INTO t VALUES (1, JOINT((2, 3):0.8, (9, 9):0.2))").unwrap();
    // Row 2: closed-world partial pdf; the tuple exists with probability 0.8.
    db.execute("INSERT INTO t VALUES (2, JOINT((4, 7):0.2, (4.1, 3.7):0.6))").unwrap();
    match db.execute("SELECT * FROM t").unwrap() {
        Output::Table(rel) => {
            println!("{}", render_relation(&rel).unwrap());
            println!("  tuple 2 existence probability: {:.2}\n", rel.tuples[1].naive_existence());
        }
        _ => unreachable!(),
    }
}

fn fig3() {
    println!("== Figure 3: histories make the join correct ==");
    let mut reg = HistoryRegistry::new();
    let schema = ProbSchema::new(
        vec![("a", ColumnType::Int, true), ("b", ColumnType::Int, true)],
        vec![vec!["a", "b"]],
    )
    .unwrap();
    let mut t = Relation::new("T", schema);
    t.insert(
        &mut reg,
        &[],
        vec![(
            vec!["a", "b"],
            JointPdf::from_points(
                JointDiscrete::from_points(2, vec![(vec![4.0, 5.0], 0.9), (vec![2.0, 3.0], 0.1)])
                    .unwrap(),
            ),
        )],
    )
    .unwrap();
    t.insert(
        &mut reg,
        &[],
        vec![(
            vec!["a", "b"],
            JointPdf::from_points(
                JointDiscrete::from_points(2, vec![(vec![7.0, 3.0], 0.7)]).unwrap(),
            ),
        )],
    )
    .unwrap();
    let opts = ExecOptions::default();
    let mut ta = orion_core::project::project(&t, &["a"], &mut reg, &opts).unwrap();
    ta.name = "Ta".to_string();
    let sel =
        orion_core::select::select(&t, &Predicate::cmp("b", CmpOp::Gt, 4i64), &mut reg, &opts)
            .unwrap();
    let mut tb = orion_core::project::project(&sel, &["b"], &mut reg, &opts).unwrap();
    tb.name = "Tb".to_string();
    let joined = orion_core::join::join(&ta, &tb, None, &mut reg, &opts).unwrap();
    println!("  with histories (correct, the paper's T2):");
    print_rows(&joined, &reg, &opts);
    let naive_opts = ExecOptions { use_histories: false, ..ExecOptions::default() };
    let joined_naive = orion_core::join::join(&ta, &tb, None, &mut reg, &naive_opts).unwrap();
    println!("  without histories (incorrect, the paper's T1):");
    print_rows(&joined_naive, &reg, &naive_opts);
}

/// Prints the visible-row distribution of a small discrete relation.
fn print_rows(rel: &Relation, reg: &HistoryRegistry, opts: &ExecOptions) {
    let dist = engine_row_distribution(rel, reg, opts).unwrap();
    let mut rows: Vec<(String, f64)> = dist
        .iter()
        .map(|(row, p)| {
            let cells: Vec<String> = row
                .iter()
                .map(|v| match v {
                    orion_core::pws::CanonValue::Real(bits) => {
                        format!("{}", f64::from_bits(*bits))
                    }
                    other => format!("{other:?}"),
                })
                .collect();
            (format!("({})", cells.join(", ")), *p)
        })
        .collect();
    rows.sort_by(|x, y| x.0.cmp(&y.0));
    for (row, p) in rows {
        println!("    (a, b) = {row} : {p:.2}");
    }
}
