//! CI schema check for Chrome trace-event files, crash flight dumps, and
//! slow-query dumps.
//!
//! Usage: `trace_check FILE [FILE ...]`
//!
//! Parses each file with the dependency-free JSON parser and runs the
//! structural validator ([`orion_obs::validate_chrome_trace`]): required
//! keys on every `"X"` event, monotone timestamps, well-nested spans per
//! lane, and at least one complete event. Files carrying a top-level
//! `"kind": "slow_queries"` are workload-repository slow-query dumps
//! (`slow-*.json`) and go through [`orion_obs::validate_slow_dump`]; files
//! carrying a top-level `"reason"` key are flight-recorder dumps
//! (`flight-*.json`) and go through [`orion_obs::validate_flight_dump`],
//! which additionally requires a non-empty crash reason. Exits non-zero on
//! the first unparseable or malformed file, so `scripts/check.sh` fails
//! loudly when instrumentation regresses.

use orion_obs::{json, validate_chrome_trace, validate_flight_dump, validate_slow_dump};

fn main() {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: trace_check FILE [FILE ...]");
        std::process::exit(2);
    }
    let mut failed = false;
    for file in &files {
        match check(file) {
            Ok(n) => eprintln!("OK: {file} ({n} events)"),
            Err(e) => {
                eprintln!("FAIL: {file}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// Validates one file; returns the number of `traceEvents` entries (or
/// captured queries for a slow-query dump).
fn check(path: &str) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    if doc.get("kind").and_then(json::Value::as_str) == Some("slow_queries") {
        return validate_slow_dump(&doc);
    }
    if doc.get("reason").is_some() {
        validate_flight_dump(&doc)?;
    } else {
        validate_chrome_trace(&doc)?;
    }
    let n = doc.get("traceEvents").and_then(json::Value::as_array).map(|a| a.len()).unwrap_or(0);
    Ok(n)
}
