//! Regenerates Figure 4: accuracy vs sample size for histogram vs discrete
//! approximations of Gaussian pdfs under random range queries.
//!
//! Usage: `fig4_accuracy [--quick] [--json PATH]`

use orion_bench::fig4::{rows_to_json, run, Fig4Config};
use orion_bench::report;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);

    let mut cfg = Fig4Config::default();
    if quick {
        cfg.n_pdfs = 50;
        cfg.n_queries = 50;
    }
    eprintln!(
        "Figure 4: {} Gaussian pdfs x {} range queries, sizes {:?}",
        cfg.n_pdfs, cfg.n_queries, cfg.sample_sizes
    );
    let rows = run(&cfg);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.sample_size.to_string(),
                format!("{:.5}", r.hist_mean_err),
                format!("{:.5}", r.hist_err_std),
                format!("{:.5}", r.disc_mean_err),
                format!("{:.5}", r.disc_err_std),
            ]
        })
        .collect();
    print!(
        "{}",
        report::text_table(&["size", "hist_err", "hist_std", "disc_err", "disc_std"], &table)
    );
    if let Some(p) = json_path {
        report::write_json(&p, &rows_to_json(&rows)).expect("write json");
        eprintln!("wrote {}", p.display());
    }
}
