//! Shared reporting helpers: aligned text tables and JSON artifacts.

use orion_obs::json;
use std::path::Path;

/// Renders rows of cells into an aligned text table.
pub fn text_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, c) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let mut out = String::new();
    let mut push_row = |cells: &[String]| {
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    push_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    for row in rows {
        push_row(row);
    }
    out
}

/// Writes an experiment result as pretty JSON.
pub fn write_json(path: &Path, value: &json::Value) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, value.to_string_pretty())
}

/// The sibling path where a binary's operator-stats snapshot goes: the
/// results path with `.stats.json` in place of its extension.
pub fn stats_path(results: &Path) -> std::path::PathBuf {
    results.with_extension("stats.json")
}

/// Handles the shared `--trace PATH` bench flag: when present in `args`,
/// enables the process-wide tracer (so the run records exec / WAL /
/// checkpoint spans) and returns the path to hand to [`write_trace`] once
/// the run finishes.
pub fn trace_arg(args: &[String]) -> Option<std::path::PathBuf> {
    let p = args.iter().position(|a| a == "--trace").and_then(|i| args.get(i + 1))?;
    orion_obs::Tracer::global().set_enabled(true);
    Some(std::path::PathBuf::from(p))
}

/// Writes the global tracer's recorded spans as a Chrome trace-event file.
pub fn write_trace(path: &Path) {
    orion_obs::Tracer::global().write_chrome_trace(path).expect("write trace file");
    eprintln!("wrote {}", path.display());
}

/// Formats a duration in adaptive units.
pub fn fmt_secs(secs: f64) -> String {
    if secs < 1e-3 {
        format!("{:.1}us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{secs:.3}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = text_table(
            &["n", "value"],
            &[vec!["1".into(), "10.5".into()], vec!["100".into(), "2".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("value"));
    }

    #[test]
    fn json_round_trip() {
        let dir = std::env::temp_dir().join("orion_bench_report_test");
        let path = dir.join("x.json");
        let mut arr = json::Value::array();
        for v in [1u64, 2, 3] {
            arr.push(v);
        }
        write_json(&path, &arr).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains('1') && text.contains('3'), "{text}");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn stats_path_is_sibling() {
        let p = stats_path(Path::new("results/fig5.json"));
        assert_eq!(p, Path::new("results/fig5.stats.json"));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_secs(0.0000005), "0.5us");
        assert_eq!(fmt_secs(0.005), "5.00ms");
        assert_eq!(fmt_secs(2.5), "2.500s");
    }
}
