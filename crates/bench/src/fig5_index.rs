//! Figure 5 (index variant) — **threshold queries through a persistent
//! cdf-summary index vs the seed full scan**.
//!
//! The paper's Section IV motivates probabilistic threshold indexing: for
//! selective `σ_{Pr(θ) > p}` queries, a cdf-summary index rules out most
//! tuples from their stored quantile levels alone, so only a small
//! candidate set pays the full probability machinery. This harness builds
//! the fig5 sensor workload in memory, picks predicate thresholds that hit
//! exact target selectivities, and times the same query twice:
//!
//! * **scan** — the seed path: every tuple pays `Pr(value > T)`.
//! * **index** — the cost-based access path over a persistent `cdf` index;
//!   the candidate mask is a sound superset, so the output is
//!   bitwise-identical to the scan (verified on every query).
//!
//! Both paths run in row and batch execution modes. The index build is
//! DDL, timed separately (`build_secs`); `query_speedup` compares steady
//! state while `total_speedup` charges the build to the index side. Each
//! timed batch runs [`REPEATS`] times after a warmup and the best time is
//! kept (see `REPEATS` for why the minimum).

use orion_core::pindex::{IndexDef, IndexHandle, IndexKind, PlannerMode};
use orion_core::plan::plan_threshold_access;
use orion_core::prelude::*;
use orion_core::threshold::threshold_pred_masked;
use orion_obs::json;
use orion_workload::SensorWorkload;
use std::time::Instant;

/// Timed repetitions of each query batch; the best (minimum) batch time is
/// reported. On shared hosts a single descheduling stall can double one
/// batch's wall time — the minimum is the only estimator of steady-state
/// cost that such stalls cannot bias.
pub const REPEATS: usize = 3;

/// Configuration for the index-vs-scan sweep.
#[derive(Debug, Clone)]
pub struct FigIndexConfig {
    /// Relation size.
    pub n_tuples: usize,
    /// Target selectivities to sweep (fraction of tuples passing).
    pub selectivities: Vec<f64>,
    /// Timed repetitions of each query (steady-state measurement).
    pub n_queries: usize,
    /// Probability threshold `p` of `Pr(value > T) > p`.
    pub p: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for FigIndexConfig {
    fn default() -> Self {
        FigIndexConfig {
            n_tuples: 20_000,
            selectivities: vec![0.02, 0.05, 0.1],
            n_queries: 6,
            p: 0.9,
            seed: 42,
        }
    }
}

impl FigIndexConfig {
    /// The paper-scale sweep.
    pub fn full() -> Self {
        FigIndexConfig { n_tuples: 100_000, ..Self::default() }
    }
}

/// One index-vs-scan measurement.
#[derive(Debug, Clone)]
pub struct FigIndexRow {
    pub n_tuples: usize,
    /// Execution mode of both paths (`row` or `batch`).
    pub mode: String,
    /// Requested selectivity.
    pub target_selectivity: f64,
    /// `matches / n_tuples` actually observed.
    pub achieved_selectivity: f64,
    /// The predicate cutoff `T` realizing the target.
    pub threshold: f64,
    /// Probability bound `p`.
    pub p: f64,
    /// Tuples passing the threshold (identical across paths by
    /// construction, verified per query).
    pub matches: usize,
    /// One-time cdf-index build (DDL side).
    pub build_secs: f64,
    /// Scan time for one `n_queries` batch — best of [`REPEATS`] timed
    /// repetitions after a warmup, so scheduler noise on shared hosts
    /// cannot masquerade as a slowdown of either path.
    pub scan_secs: f64,
    /// Index-path time for one `n_queries` batch (planning + probe +
    /// residual evaluation; build excluded), best of [`REPEATS`].
    pub index_secs: f64,
    /// `scan_secs / index_secs` — the figure's gate metric.
    pub query_speedup: f64,
    /// `scan_secs / (index_secs + build_secs)` — build amortized over the
    /// measured repetitions.
    pub total_speedup: f64,
    /// Whether the cost model picked the index (it must at these
    /// selectivities).
    pub chose_index: bool,
    /// Tuples the index mask pruned per query.
    pub pruned: usize,
    pub threads: usize,
}

impl FigIndexRow {
    /// JSON form, one field per measurement.
    pub fn to_json(&self) -> json::Value {
        json::Value::object()
            .with("n_tuples", self.n_tuples)
            .with("mode", self.mode.as_str())
            .with("target_selectivity", self.target_selectivity)
            .with("achieved_selectivity", self.achieved_selectivity)
            .with("threshold", self.threshold)
            .with("p", self.p)
            .with("matches", self.matches)
            .with("build_secs", self.build_secs)
            .with("scan_secs", self.scan_secs)
            .with("index_secs", self.index_secs)
            .with("query_speedup", self.query_speedup)
            .with("total_speedup", self.total_speedup)
            .with("chose_index", self.chose_index)
            .with("pruned", self.pruned)
            .with("threads", self.threads)
    }
}

/// Smallest steady-state speedup among rows at selectivity ≤ 0.1 — the
/// number the check script's gate reads.
pub fn min_query_speedup(rows: &[FigIndexRow]) -> f64 {
    rows.iter()
        .filter(|r| r.target_selectivity <= 0.1 + 1e-12)
        .map(|r| r.query_speedup)
        .fold(f64::INFINITY, f64::min)
}

/// JSON document over the whole sweep with the gate metric attached.
pub fn rows_to_json(rows: &[FigIndexRow]) -> json::Value {
    let mut arr = json::Value::array();
    for r in rows {
        arr.push(r.to_json());
    }
    json::Value::object()
        .with("figure", "fig5_index")
        .with("min_query_speedup", min_query_speedup(rows))
        .with("rows", arr)
}

/// The generated relation plus the per-tuple cutoffs `c_i` with
/// `Pr(value_i > c_i) = p` exactly: a tuple passes `Pr(value > T) > p` iff
/// `T < c_i`, so the sorted cutoffs convert target selectivities into
/// predicate thresholds with no search.
struct Workbench {
    rel: Relation,
    reg: HistoryRegistry,
    stats: StatsCatalog,
    cuts: Vec<f64>,
}

fn build_workbench(cfg: &FigIndexConfig) -> EngineResult<Workbench> {
    let schema = ProbSchema::new(
        vec![("rid", ColumnType::Int, false), ("value", ColumnType::Real, true)],
        vec![],
    )?;
    let mut rel = Relation::new("readings", schema);
    let mut reg = HistoryRegistry::new();
    let mut workload = SensorWorkload::new(cfg.seed);
    let mut cuts = Vec::with_capacity(cfg.n_tuples);
    for r in workload.readings(cfg.n_tuples) {
        let pdf = r.pdf();
        cuts.push(
            pdf.quantile(1.0 - cfg.p)
                .ok_or_else(|| EngineError::Operator("workload pdf has no quantile".into()))?,
        );
        rel.insert_simple(&mut reg, &[("rid", Value::Int(r.rid))], &[("value", pdf)])?;
    }
    cuts.sort_by(f64::total_cmp);
    let mut stats = StatsCatalog::new();
    stats.insert(analyze_relation(&rel)?);
    Ok(Workbench { rel, reg, stats, cuts })
}

/// The cutoff realizing `sel`: just below the `k`-th largest per-tuple
/// cutoff, so exactly `k = round(sel · n)` tuples pass.
fn threshold_for(cuts: &[f64], sel: f64) -> f64 {
    let k = ((cuts.len() as f64) * sel).round().max(1.0) as usize;
    cuts[cuts.len() - k.min(cuts.len())] - 1e-9
}

/// Runs the query and returns (passing rids, pruned count). The output
/// relation's history refs are released so repetitions leave the registry
/// unchanged.
fn run_query(
    wb: &mut Workbench,
    pred: &Predicate,
    p: f64,
    mask: Option<&[bool]>,
    opts: &ExecOptions,
) -> EngineResult<Vec<i64>> {
    let out = threshold_pred_masked(&wb.rel, pred, CmpOp::Gt, p, mask, &mut wb.reg, opts)?;
    let rids = out
        .tuples
        .iter()
        .map(|t| match t.certain[0] {
            Value::Int(v) => v,
            _ => unreachable!("rid is INT"),
        })
        .collect();
    out.release(&mut wb.reg);
    Ok(rids)
}

/// One selectivity × mode measurement over a prebuilt workbench.
fn measure(
    cfg: &FigIndexConfig,
    wb: &mut Workbench,
    sel: f64,
    mode: orion_core::batch::ExecMode,
) -> EngineResult<FigIndexRow> {
    let t = threshold_for(&wb.cuts, sel);
    let pred = Predicate::cmp("value", CmpOp::Gt, t);

    // Seed path: no catalog in the options, so nothing can prune.
    let scan_opts = ExecOptions { mode, ..ExecOptions::default() };
    let scan_rids = run_query(wb, &pred, cfg.p, None, &scan_opts)?; // warmup
    let mut scan_secs = f64::INFINITY;
    for _ in 0..REPEATS {
        let start = Instant::now();
        for _ in 0..cfg.n_queries {
            let rids = run_query(wb, &pred, cfg.p, None, &scan_opts)?;
            debug_assert_eq!(rids, scan_rids);
        }
        scan_secs = scan_secs.min(start.elapsed().as_secs_f64());
    }

    // Index path: persistent cdf index + cost-based access planning.
    let handle = IndexHandle::new();
    handle.lock().create(IndexDef {
        name: "ix_value".into(),
        table: "readings".into(),
        column: "value".into(),
        kind: IndexKind::Cdf,
    })?;
    let idx_opts = ExecOptions {
        mode,
        planner: PlannerMode::Cost,
        indexes: Some(handle.clone()),
        ..ExecOptions::default()
    };
    let build_start = Instant::now();
    handle.lock().ensure_built("ix_value", &wb.rel)?;
    let build_secs = build_start.elapsed().as_secs_f64();

    // Warmup probe: captures the planner's verdict and verifies identity
    // once before the clock starts.
    let ap = plan_threshold_access(&wb.rel, &pred, CmpOp::Gt, cfg.p, Some(&wb.stats), &idx_opts)?;
    let chose_index = ap.alternatives.get(1).is_some_and(|a| a.chosen);
    let pruned = ap.mask.as_ref().map_or(0, |m| m.iter().filter(|&&keep| !keep).count());
    let warm_rids = run_query(wb, &pred, cfg.p, ap.mask.as_deref(), &idx_opts)?;
    if warm_rids != scan_rids {
        return Err(EngineError::Operator(format!(
            "index path diverged from scan at selectivity {sel}: {} vs {} matches",
            warm_rids.len(),
            scan_rids.len()
        )));
    }

    let mut plan_secs = 0.0f64;
    let mut index_secs = f64::INFINITY;
    for _ in 0..REPEATS {
        let start = Instant::now();
        for _ in 0..cfg.n_queries {
            let p0 = Instant::now();
            let ap = plan_threshold_access(
                &wb.rel,
                &pred,
                CmpOp::Gt,
                cfg.p,
                Some(&wb.stats),
                &idx_opts,
            )?;
            plan_secs += p0.elapsed().as_secs_f64();
            let idx_rids = run_query(wb, &pred, cfg.p, ap.mask.as_deref(), &idx_opts)?;
            if idx_rids != scan_rids {
                return Err(EngineError::Operator(format!(
                    "index path diverged from scan at selectivity {sel}: {} vs {} matches",
                    idx_rids.len(),
                    scan_rids.len()
                )));
            }
        }
        index_secs = index_secs.min(start.elapsed().as_secs_f64());
    }
    if std::env::var_os("ORION_FIG5_DEBUG").is_some() {
        eprintln!(
            "  [debug] sel {sel} mode {mode:?}: plan+mask {plan_secs:.4}s across {REPEATS} reps; best batch {index_secs:.4}s"
        );
    }

    Ok(FigIndexRow {
        n_tuples: cfg.n_tuples,
        mode: mode.to_string(),
        target_selectivity: sel,
        achieved_selectivity: scan_rids.len() as f64 / cfg.n_tuples as f64,
        threshold: t,
        p: cfg.p,
        matches: scan_rids.len(),
        build_secs,
        scan_secs,
        index_secs,
        query_speedup: if index_secs > 0.0 { scan_secs / index_secs } else { f64::INFINITY },
        total_speedup: if index_secs + build_secs > 0.0 {
            scan_secs / (index_secs + build_secs)
        } else {
            f64::INFINITY
        },
        chose_index,
        pruned,
        threads: orion_core::exec_par::effective_threads(0),
    })
}

/// Runs the sweep: every selectivity in both execution modes over one
/// generated relation.
pub fn run(cfg: &FigIndexConfig) -> EngineResult<Vec<FigIndexRow>> {
    use orion_core::batch::ExecMode;
    let mut wb = build_workbench(cfg)?;
    let mut rows = Vec::new();
    for &sel in &cfg.selectivities {
        for mode in [ExecMode::Row, ExecMode::Batch] {
            rows.push(measure(cfg, &mut wb, sel, mode)?);
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> FigIndexConfig {
        FigIndexConfig {
            n_tuples: 2_000,
            selectivities: vec![0.05],
            n_queries: 2,
            ..Default::default()
        }
    }

    #[test]
    fn index_path_matches_scan_and_hits_target_selectivity() {
        // measure() errors out on any rid divergence, so a clean run is
        // the bitwise-identity check.
        let rows = run(&tiny_cfg()).unwrap();
        assert_eq!(rows.len(), 2, "row and batch mode");
        for r in &rows {
            assert!((r.achieved_selectivity - 0.05).abs() < 0.01, "{r:?}");
            assert!(r.matches > 0 && r.matches < r.n_tuples);
            assert!(r.chose_index, "cost model must take the index at 5%: {r:?}");
            assert!(r.pruned > r.n_tuples / 2, "mask prunes most tuples: {r:?}");
        }
    }

    #[test]
    fn json_carries_the_gate_metric() {
        let rows = run(&tiny_cfg()).unwrap();
        let text = rows_to_json(&rows).to_string_compact();
        assert!(text.contains("\"figure\":\"fig5_index\""), "{text}");
        assert!(text.contains("\"min_query_speedup\""), "{text}");
        assert!(text.contains("\"query_speedup\""), "{text}");
        assert!(text.contains("\"build_secs\""), "{text}");
        assert!(min_query_speedup(&rows) > 0.0);
    }

    #[test]
    fn threshold_for_realizes_exact_counts() {
        let cuts: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let t = threshold_for(&cuts, 0.1);
        assert_eq!(cuts.iter().filter(|&&c| c > t).count(), 10);
        let t = threshold_for(&cuts, 0.005); // rounds to at least one
        assert_eq!(cuts.iter().filter(|&&c| c > t).count(), 1);
    }
}
