//! Morsel-driven parallel scaling of the selection operator.
//!
//! An in-memory relation of Gaussian sensor readings is queried with a
//! probabilistic range selection (`σ_{lo ≤ v ≤ hi}`, the paper's bread-and-
//! butter query) at increasing worker counts. Each run must produce
//! **bit-identical** tuples — the morsel protocol's determinism guarantee —
//! so the sweep doubles as an end-to-end equivalence check on a large
//! input; the reported numbers are wall-clock per thread count and the
//! speedup over single-threaded execution.

use orion_core::prelude::*;
use orion_core::select::select;
use orion_obs::{json, ExecStats, ExecStatsSnapshot};
use orion_pdf::prelude::JointPdf;
use orion_workload::SensorWorkload;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Configuration for the parallel-scaling sweep.
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// Relation size (acceptance target: 500K; `--quick`: 100K).
    pub n_tuples: usize,
    /// Worker counts to sweep; 1 is always measured first as the baseline.
    pub thread_counts: Vec<usize>,
    /// Morsel size handed to [`ExecOptions`].
    pub morsel_size: usize,
    /// Timed repetitions per thread count (best time wins, to damp noise).
    pub repeats: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            n_tuples: 500_000,
            thread_counts: vec![1, 2, 4, 8],
            morsel_size: orion_core::exec_par::DEFAULT_MORSEL_SIZE,
            repeats: 3,
            seed: 42,
        }
    }
}

impl ParallelConfig {
    /// A scaled-down sweep for quick runs and CI gates.
    pub fn quick() -> Self {
        ParallelConfig { n_tuples: 100_000, repeats: 2, ..Self::default() }
    }
}

/// One measurement of the sweep.
#[derive(Debug, Clone)]
pub struct ParallelRow {
    /// Workload label.
    pub workload: String,
    /// Worker count for this row.
    pub threads: usize,
    /// Best wall-clock selection time across the repeats.
    pub query_secs: f64,
    /// `serial query_secs / this query_secs` (1.0 for the baseline row).
    pub speedup: f64,
    /// Relation size.
    pub n_tuples: usize,
    /// Tuples per morsel.
    pub morsel_size: usize,
    /// `available_parallelism` of the machine that produced the row —
    /// speedups above this core count are not expected.
    pub host_cores: usize,
    /// Result cardinality (identical across thread counts by construction).
    pub out_tuples: usize,
    /// Operator counters accumulated over the repeats, including the
    /// per-worker morsel/busy-time lanes (empty for the serial row) —
    /// the raw material for worker-skew analysis.
    pub stats: ExecStatsSnapshot,
}

impl ParallelRow {
    /// JSON form, one field per measurement.
    pub fn to_json(&self) -> json::Value {
        json::Value::object()
            .with("workload", self.workload.as_str())
            .with("threads", self.threads)
            .with("query_secs", self.query_secs)
            .with("speedup", self.speedup)
            .with("n_tuples", self.n_tuples)
            .with("morsel_size", self.morsel_size)
            .with("host_cores", self.host_cores)
            .with("out_tuples", self.out_tuples)
    }
}

/// JSON array over the whole sweep.
pub fn rows_to_json(rows: &[ParallelRow]) -> json::Value {
    let mut arr = json::Value::array();
    for r in rows {
        arr.push(r.to_json());
    }
    arr
}

/// Operator-stats snapshot for the `.stats.json` sibling artifact: one
/// entry per thread count carrying the full counter set, worker lanes
/// included (so per-worker skew is inspectable after the run).
pub fn stats_json(rows: &[ParallelRow]) -> json::Value {
    let mut arr = json::Value::array();
    for r in rows {
        arr.push(
            json::Value::object()
                .with("threads", r.threads)
                .with("morsel_size", r.morsel_size)
                .with("stats", r.stats.to_json()),
        );
    }
    json::Value::object().with("figure", "fig_parallel").with("rows", arr)
}

/// Builds the reading relation with the parallel bulk loader (ids are
/// nevertheless bit-identical to a serial load, see
/// [`orion_core::exec_par::insert_batch`]).
fn build_relation(cfg: &ParallelConfig) -> (HashMap<String, Relation>, HistoryRegistry) {
    let readings = SensorWorkload::new(cfg.seed).readings(cfg.n_tuples);
    let schema = ProbSchema::new(
        vec![("rid", ColumnType::Int, false), ("v", ColumnType::Real, true)],
        vec![],
    )
    .expect("valid schema");
    let mut rel = Relation::new("readings", schema);
    let mut reg = HistoryRegistry::new();
    let opts = ExecOptions { morsel_size: cfg.morsel_size, ..ExecOptions::default() };
    orion_core::exec_par::insert_batch(&mut rel, &mut reg, &opts, cfg.n_tuples, |i| BulkRow {
        certain: vec![("rid".into(), Value::Int(readings[i].rid))],
        uncertain: vec![(vec!["v".into()], JointPdf::from_pdf1(readings[i].pdf()))],
    })
    .expect("bulk load");
    let mut tables = HashMap::new();
    tables.insert("readings".to_string(), rel);
    (tables, reg)
}

/// Runs the sweep: selection at every requested thread count over one
/// shared relation, verifying bit-identical output against the serial
/// baseline. Panics if any thread count disagrees with serial.
pub fn run(cfg: &ParallelConfig) -> Vec<ParallelRow> {
    let (tables, mut reg) = build_relation(cfg);
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // The paper's range query: P(v in [40, 60]) — selection floors every
    // Gaussian to the interval, which is the per-tuple work being scaled.
    let pred = Predicate::And(vec![
        Predicate::cmp("v", CmpOp::Ge, 40.0),
        Predicate::cmp("v", CmpOp::Le, 60.0),
    ]);
    let rel = &tables["readings"];

    let mut baseline: Option<Relation> = None;
    let mut serial_secs = 0.0;
    let mut rows = Vec::new();
    let mut counts = cfg.thread_counts.clone();
    if counts.first() != Some(&1) {
        counts.insert(0, 1);
    }
    for threads in counts {
        let stats = Arc::new(ExecStats::new());
        let opts = ExecOptions { threads, morsel_size: cfg.morsel_size, ..ExecOptions::default() }
            .with_stats(Arc::clone(&stats));
        let mut best = f64::INFINITY;
        let mut out_len = 0usize;
        for _ in 0..cfg.repeats.max(1) {
            let start = Instant::now();
            let out = select(rel, &pred, &mut reg, &opts).expect("selection");
            best = best.min(start.elapsed().as_secs_f64());
            out_len = out.len();
            match &baseline {
                None => baseline = Some(out),
                Some(base) => {
                    assert_eq!(
                        out.tuples, base.tuples,
                        "threads={threads} diverged from serial output"
                    );
                    out.release(&mut reg);
                }
            }
        }
        if threads == 1 {
            serial_secs = best;
        }
        rows.push(ParallelRow {
            workload: "select_range_gaussian".to_string(),
            threads,
            query_secs: best,
            speedup: if best > 0.0 { serial_secs / best } else { 0.0 },
            n_tuples: cfg.n_tuples,
            morsel_size: cfg.morsel_size,
            host_cores,
            out_tuples: out_len,
            stats: stats.snapshot(),
        });
    }
    rows
}

/// The speedup measured at `threads`, if that row exists.
pub fn speedup_at(rows: &[ParallelRow], threads: usize) -> Option<f64> {
    rows.iter().find(|r| r.threads == threads).map(|r| r.speedup)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ParallelConfig {
        ParallelConfig {
            n_tuples: 2_000,
            thread_counts: vec![1, 2, 4],
            morsel_size: 64,
            repeats: 1,
            ..ParallelConfig::default()
        }
    }

    #[test]
    fn sweep_produces_one_row_per_thread_count() {
        let rows = run(&tiny_cfg());
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].threads, 1);
        assert!((rows[0].speedup - 1.0).abs() < 1e-12);
        let n = rows[0].out_tuples;
        assert!(n > 0, "selection keeps some tuples");
        assert!(rows.iter().all(|r| r.out_tuples == n));
        assert!(rows.iter().all(|r| r.query_secs > 0.0 && r.speedup > 0.0));
    }

    #[test]
    fn stats_snapshot_carries_worker_lanes() {
        let rows = run(&tiny_cfg());
        let par = rows.iter().find(|r| r.threads == 4).expect("4-thread row");
        assert!(!par.stats.workers.is_empty(), "parallel row records worker lanes");
        assert!(par.stats.pdf_floors > 0, "range selection floors pdfs");
        let text = stats_json(&rows).to_string_compact();
        assert!(text.contains("\"figure\":\"fig_parallel\""), "{text}");
        assert!(text.contains("\"workers\""), "{text}");
        assert!(text.contains("\"busy_nanos\""), "{text}");
    }

    #[test]
    fn json_rows_carry_thread_counts() {
        let rows = run(&ParallelConfig { thread_counts: vec![1, 2], ..tiny_cfg() });
        let text = rows_to_json(&rows).to_string_compact();
        assert!(text.contains("\"threads\":1"), "{text}");
        assert!(text.contains("\"threads\":2"), "{text}");
        assert!(text.contains("\"host_cores\""), "{text}");
        assert!(speedup_at(&rows, 2).is_some());
    }
}
