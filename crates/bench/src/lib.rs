//! # orion-bench — the ICDE 2008 evaluation harness
//!
//! One module per figure of the paper's Section IV, plus shared reporting:
//!
//! * [`fig4`] — accuracy vs sample size (histogram vs discrete
//!   approximations of Gaussian pdfs under range queries);
//! * [`fig5`] — query performance of discretized pdfs over on-disk
//!   relations (runtime and physical reads vs tuple count);
//! * [`fig6`] — overhead of history maintenance for joins and projections;
//! * [`durability`] — group-commit fsync amortization and full vs
//!   incremental checkpoint cost (not a paper figure; added with the
//!   durability layer).
//!
//! The binaries `fig4_accuracy`, `fig5_performance`, `fig6_history_overhead`,
//! `fig_durability` and `tables` regenerate every figure and table;
//! Criterion benches in `benches/` cover operator micro-costs and design
//! ablations.

pub mod durability;
pub mod fig4;
pub mod fig5;
pub mod fig5_index;
pub mod fig6;
pub mod parallel;
pub mod report;
