//! Figure 5 — **Performance of Discretized PDFs**.
//!
//! The paper compares range-query runtime over relations of 0.5M–3M
//! uncertain tuples stored three ways: 5-bucket histograms and 25-point
//! discrete samplings (chosen for equal accuracy per Figure 4), with
//! symbolic pdfs "just under the five-bin histogram times". Discretized
//! data both costs more CPU per tuple and occupies more pages, so the
//! discrete line rises steepest — it incurs more disk reads.
//!
//! This reproduction stores each relation in an on-disk heap file behind a
//! bounded buffer pool (the cost model PostgreSQL contributed in the
//! original) and measures a cold full-scan range query plus the physical
//! reads it triggers.

use orion_core::batch::ExecMode;
use orion_obs::{json, OpProfile};
use orion_pdf::prelude::{Interval, Pdf1, Pdf1Batch};
use orion_sql::{Database, DurableSession, Output};
use orion_storage::codec::{decode_pdf1, decode_pdf1_into, encode_pdf1};
use orion_storage::{FileStore, HeapFile, IoSnapshot};
use orion_workload::SensorWorkload;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Records accumulated per batch in the batch-mode scan — one morsel's
/// worth, matching the executor's default morsel size.
const SCAN_BATCH: usize = 1024;

/// The three physical representations compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Repr {
    /// Exact symbolic pdfs (`Gaus(m, v)` parameters).
    Symbolic,
    /// Equi-width histogram with the given bucket count.
    Histogram(usize),
    /// Discrete sampling with the given point count.
    Discrete(usize),
}

impl Repr {
    /// Display label matching the paper's legend.
    pub fn label(&self) -> String {
        match self {
            Repr::Symbolic => "Symbolic".to_string(),
            Repr::Histogram(n) => format!("Histogram({n})"),
            Repr::Discrete(n) => format!("Discrete({n})"),
        }
    }

    /// Converts an exact pdf into this representation.
    pub fn materialize(&self, exact: &Pdf1) -> Pdf1 {
        match self {
            Repr::Symbolic => exact.clone(),
            Repr::Histogram(n) => Pdf1::Histogram(exact.to_histogram(*n).expect("non-vacuous")),
            Repr::Discrete(n) => Pdf1::Discrete(exact.to_discrete(*n).expect("non-vacuous")),
        }
    }
}

/// Configuration for the Figure 5 sweep.
#[derive(Debug, Clone)]
pub struct Fig5Config {
    /// Tuple counts to sweep (paper: 0.5M–3M).
    pub tuple_counts: Vec<usize>,
    /// Representations to compare (paper: Histogram(5) vs Discrete(25)).
    pub reprs: Vec<Repr>,
    /// Buffer-pool size in pages (bounded, so large relations spill).
    pub pool_pages: usize,
    /// Number of range queries evaluated in one scan.
    pub n_queries: usize,
    /// Workload seed.
    pub seed: u64,
    /// Directory for the on-disk heap files.
    pub dir: PathBuf,
}

impl Default for Fig5Config {
    fn default() -> Self {
        Fig5Config {
            tuple_counts: vec![500_000, 1_000_000, 1_500_000, 2_000_000, 2_500_000, 3_000_000],
            reprs: vec![Repr::Histogram(5), Repr::Discrete(25), Repr::Symbolic],
            pool_pages: 2048,
            n_queries: 4,
            seed: 42,
            dir: std::env::temp_dir().join("orion_fig5"),
        }
    }
}

impl Fig5Config {
    /// A scaled-down sweep for quick runs and CI.
    pub fn quick() -> Self {
        Fig5Config {
            tuple_counts: vec![50_000, 100_000, 150_000, 200_000, 250_000, 300_000],
            ..Self::default()
        }
    }
}

/// One measurement of the Figure 5 sweep.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    pub n_tuples: usize,
    pub repr: String,
    /// Execution mode of the query phase (`row` or `batch`).
    pub mode: String,
    /// Time to build (discretize + write) the relation.
    pub build_secs: f64,
    /// Cold full-scan range-query time.
    pub query_secs: f64,
    /// Physical page reads during the query.
    pub physical_reads: u64,
    /// Total pages occupied by the relation.
    pub pages: u32,
    /// Number of tuples whose probability in the first query range
    /// exceeded 0.5 (sanity output so work is not optimized away).
    pub matches: usize,
    /// Worker threads in effect while the row was measured (the scan
    /// itself is sequential I/O; recorded so runs on different
    /// `ORION_THREADS` settings are distinguishable in the results).
    pub threads: usize,
    /// Full buffer-pool counter snapshot for the query phase.
    pub io: IoSnapshot,
}

impl Fig5Row {
    /// JSON form with one field per measurement plus the nested I/O
    /// snapshot.
    pub fn to_json(&self) -> json::Value {
        json::Value::object()
            .with("n_tuples", self.n_tuples)
            .with("repr", self.repr.as_str())
            .with("mode", self.mode.as_str())
            .with("build_secs", self.build_secs)
            .with("query_secs", self.query_secs)
            .with("physical_reads", self.physical_reads)
            .with("pages", self.pages)
            .with("matches", self.matches)
            .with("threads", self.threads)
            .with("io", self.io.to_json())
    }
}

/// JSON array over the whole sweep.
pub fn rows_to_json(rows: &[Fig5Row]) -> json::Value {
    let mut arr = json::Value::array();
    for r in rows {
        arr.push(r.to_json());
    }
    arr
}

/// The operator-stats snapshot the `fig5_performance` binary writes next
/// to its results: the per-configuration buffer-pool counters that explain
/// the figure's read curve, plus the planner's estimate-vs-actual record
/// for the workload's threshold query (un-analyzed and analyzed).
pub fn stats_json(
    rows: &[Fig5Row],
    estimates: &[EstimateReport],
    statements: json::Value,
) -> json::Value {
    let mut arr = json::Value::array();
    for r in rows {
        arr.push(
            json::Value::object()
                .with("n_tuples", r.n_tuples)
                .with("repr", r.repr.as_str())
                .with("io", r.io.to_json()),
        );
    }
    json::Value::object()
        .with("figure", "fig5")
        .with("buffer_pool", arr)
        .with("estimates", estimates_json(estimates))
        .with("statements", statements)
}

/// Runs the figure's threshold-query shape through a durable session with
/// the workload repository enabled, and returns the per-statement
/// repository plus the planner-feedback summaries as the `statements`
/// section of the `.stats.json` sidecar.
pub fn workload_report(n: usize, seed: u64) -> json::Value {
    let dir = std::env::temp_dir().join(format!("orion_fig5_workload_{n}_{seed}"));
    std::fs::remove_dir_all(&dir).ok();
    let mut s = DurableSession::open(&dir).expect("open durable session");
    let repo = s.db().workload();
    repo.set_enabled(true);
    s.execute("CREATE TABLE readings (rid INT, value REAL UNCERTAIN)").expect("create");
    let mut workload = SensorWorkload::new(seed);
    for chunk in workload.readings(n).chunks(256) {
        let values: Vec<String> = chunk
            .iter()
            .map(|r| format!("({}, GAUSSIAN({}, {}))", r.rid, r.mean, r.sd * r.sd))
            .collect();
        s.execute(&format!("INSERT INTO readings VALUES {}", values.join(", "))).expect("insert");
    }
    s.execute("ANALYZE readings").expect("analyze");
    // Literal variations collapse onto one fingerprint in the repository.
    for thr in [30, 50, 70] {
        s.execute(&format!("SELECT rid FROM readings WHERE PROB(value < {thr}) > 0.5"))
            .expect("threshold query");
    }
    // A profiled run folds est-vs-actual into the planner-feedback store.
    s.execute("EXPLAIN ANALYZE SELECT rid FROM readings WHERE PROB(value < 50) > 0.5")
        .expect("profiled run");
    let out = json::Value::object()
        .with("workload", repo.to_json())
        .with("plan_feedback", s.db().plan_feedback().to_json());
    drop(s);
    std::fs::remove_dir_all(&dir).ok();
    out
}

/// One operator's estimate-vs-actual record from a profiled plan.
#[derive(Debug, Clone)]
pub struct OpEstimate {
    /// `Name [detail]` of the operator.
    pub op: String,
    /// Planner cardinality estimate (0 when none was attached).
    pub est_rows: u64,
    /// Observed output cardinality.
    pub actual_rows: u64,
    /// `|est - actual| / max(actual, 1)`.
    pub rel_err: f64,
}

/// Estimate-vs-actual over the sensor threshold query
/// `SELECT rid FROM readings WHERE PROB(value < 50) > 0.5`, the query shape
/// Figure 5 sweeps: one record per plan operator, plus whether the table
/// had been `ANALYZE`d when the plan was costed.
#[derive(Debug, Clone)]
pub struct EstimateReport {
    pub analyzed: bool,
    pub n_tuples: usize,
    pub query: String,
    pub operators: Vec<OpEstimate>,
}

impl EstimateReport {
    /// The record for the threshold operator (`ThresholdPred`), the node
    /// whose estimate the stats catalog exists to improve.
    pub fn threshold_op(&self) -> Option<&OpEstimate> {
        self.operators.iter().find(|o| o.op.starts_with("ThresholdPred"))
    }
}

/// Flattens a profile tree into pre-order estimate records.
fn collect_ops(p: &OpProfile, out: &mut Vec<OpEstimate>) {
    out.push(OpEstimate {
        op: format!("{} [{}]", p.name, p.detail),
        est_rows: p.est_rows.unwrap_or(0),
        actual_rows: p.stats.tuples_out,
        rel_err: p.est_error().unwrap_or(0.0),
    });
    for c in &p.children {
        collect_ops(c, out);
    }
}

/// Builds an in-memory SQL relation from the seeded sensor workload and
/// profiles the threshold query, with or without a preceding `ANALYZE`.
pub fn estimate_report(n: usize, seed: u64, analyzed: bool) -> EstimateReport {
    let query = "SELECT rid FROM readings WHERE PROB(value < 50) > 0.5";
    let mut db = Database::new();
    db.execute("CREATE TABLE readings (rid INT, value REAL UNCERTAIN)").expect("create");
    let mut workload = SensorWorkload::new(seed);
    for chunk in workload.readings(n).chunks(256) {
        let values: Vec<String> = chunk
            .iter()
            .map(|r| format!("({}, GAUSSIAN({}, {}))", r.rid, r.mean, r.sd * r.sd))
            .collect();
        db.execute(&format!("INSERT INTO readings VALUES {}", values.join(", "))).expect("insert");
    }
    if analyzed {
        db.execute("ANALYZE readings").expect("analyze");
    }
    let out = db.execute(&format!("EXPLAIN ANALYZE {query}")).expect("explain");
    let Output::Explain { profile, .. } = out else { panic!("EXPLAIN returns Explain output") };
    let mut operators = Vec::new();
    collect_ops(&profile, &mut operators);
    EstimateReport { analyzed, n_tuples: n, query: query.to_string(), operators }
}

/// JSON array form of the estimate reports.
pub fn estimates_json(reports: &[EstimateReport]) -> json::Value {
    let mut arr = json::Value::array();
    for r in reports {
        let mut ops = json::Value::array();
        for o in &r.operators {
            ops.push(
                json::Value::object()
                    .with("op", o.op.as_str())
                    .with("est_rows", o.est_rows)
                    .with("actual_rows", o.actual_rows)
                    .with("rel_err", o.rel_err),
            );
        }
        arr.push(
            json::Value::object()
                .with("analyzed", r.analyzed)
                .with("n_tuples", r.n_tuples)
                .with("query", r.query.as_str())
                .with("operators", ops),
        );
    }
    arr
}

/// Build phase: generate, convert, encode, append. Returns the heap, the
/// build time, the relation's path, and the sweep's range queries. The
/// workload RNG stream (queries first, then readings) is identical to the
/// original single-mode runner, so matches are comparable across modes and
/// with historical results.
fn build_relation(
    cfg: &Fig5Config,
    n: usize,
    repr: Repr,
) -> std::io::Result<(HeapFile<FileStore>, f64, PathBuf, Vec<Interval>)> {
    std::fs::create_dir_all(&cfg.dir)?;
    let path: PathBuf = cfg.dir.join(format!("readings_{}_{}.dat", n, repr.label()));
    let mut workload = SensorWorkload::new(cfg.seed);
    let queries: Vec<Interval> =
        workload.range_queries(cfg.n_queries).iter().map(|q| q.interval()).collect();

    let build_start = Instant::now();
    let mut heap = HeapFile::new(FileStore::create(&path)?, cfg.pool_pages);
    let mut buf = Vec::with_capacity(512);
    for _ in 0..n {
        let r = workload.reading();
        let pdf = repr.materialize(&r.pdf());
        buf.clear();
        buf.extend_from_slice(&r.rid.to_le_bytes());
        encode_pdf1(&pdf, &mut buf);
        heap.insert(&buf)?;
    }
    heap.pool().flush()?;
    let build_secs = build_start.elapsed().as_secs_f64();
    Ok((heap, build_secs, path, queries))
}

/// Evaluates every range query over every surviving pdf of one batch,
/// counting first-query matches (`p > 0.5`), then resets the batch for
/// reuse. The batched kernels are bitwise-identical to the scalar
/// `Pdf1::range_prob`, so the count matches row mode exactly.
fn flush_batch(batch: &mut Pdf1Batch, queries: &[Interval], probs: &mut Vec<f64>) -> usize {
    let mut matches = 0usize;
    for (qi, q) in queries.iter().enumerate() {
        batch.range_prob_into(q, probs);
        if qi == 0 {
            matches += probs.iter().filter(|&&p| p > 0.5).count();
        }
    }
    batch.clear();
    matches
}

/// Query phase: cold scan, evaluate every query against every tuple.
/// Row mode decodes each record into a scalar [`Pdf1`] and probes it;
/// batch mode appends ~[`SCAN_BATCH`] records into a reusable arena-backed
/// [`Pdf1Batch`] and probes them with the flat-loop kernels.
fn query_phase(
    heap: &HeapFile<FileStore>,
    queries: &[Interval],
    mode: ExecMode,
) -> std::io::Result<(f64, usize, IoSnapshot)> {
    heap.pool().clear_cache()?;
    heap.pool().stats().reset();
    let query_start = Instant::now();
    let mut matches = 0usize;
    let mut scan_err: Option<std::io::Error> = None;
    match mode {
        ExecMode::Row => {
            heap.scan(|_, rec| {
                let mut slice = &rec[8..];
                match decode_pdf1(&mut slice) {
                    Ok(pdf) => {
                        for (qi, q) in queries.iter().enumerate() {
                            let p = pdf.range_prob(q);
                            if qi == 0 && p > 0.5 {
                                matches += 1;
                            }
                        }
                        true
                    }
                    Err(e) => {
                        scan_err = Some(std::io::Error::new(std::io::ErrorKind::InvalidData, e));
                        false
                    }
                }
            })?;
        }
        ExecMode::Batch => {
            // The batch path scans through the pool's scan-resistant bulk
            // reader (no per-page LRU maintenance) and decodes straight
            // into a reusable columnar arena.
            let mut batch = Pdf1Batch::new();
            let mut probs: Vec<f64> = Vec::with_capacity(SCAN_BATCH);
            heap.scan_bulk(|_, rec| {
                let mut slice = &rec[8..];
                match decode_pdf1_into(&mut slice, &mut batch) {
                    Ok(()) => {
                        if batch.len() >= SCAN_BATCH {
                            matches += flush_batch(&mut batch, queries, &mut probs);
                        }
                        true
                    }
                    Err(e) => {
                        scan_err = Some(std::io::Error::new(std::io::ErrorKind::InvalidData, e));
                        false
                    }
                }
            })?;
            if scan_err.is_none() {
                matches += flush_batch(&mut batch, queries, &mut probs);
            }
        }
    }
    if let Some(e) = scan_err {
        return Err(e);
    }
    Ok((query_start.elapsed().as_secs_f64(), matches, heap.pool().stats().snapshot()))
}

/// Builds one on-disk relation and runs the range-query scan in row mode.
pub fn run_one(cfg: &Fig5Config, n: usize, repr: Repr) -> std::io::Result<Fig5Row> {
    run_one_mode(cfg, n, repr, ExecMode::Row)
}

/// Builds one on-disk relation and runs the range-query scan in `mode`.
pub fn run_one_mode(
    cfg: &Fig5Config,
    n: usize,
    repr: Repr,
    mode: ExecMode,
) -> std::io::Result<Fig5Row> {
    let (heap, build_secs, path, queries) = build_relation(cfg, n, repr)?;
    let result = query_phase(&heap, &queries, mode);
    std::fs::remove_file(&path).ok();
    let (query_secs, matches, stats) = result?;
    Ok(Fig5Row {
        n_tuples: n,
        repr: repr.label(),
        mode: mode.to_string(),
        build_secs,
        query_secs,
        physical_reads: stats.physical_reads,
        pages: heap.page_count(),
        matches,
        threads: orion_core::exec_par::effective_threads(0),
        io: stats,
    })
}

/// Runs the full sweep in row mode.
pub fn run(cfg: &Fig5Config) -> std::io::Result<Vec<Fig5Row>> {
    run_mode(cfg, ExecMode::Row)
}

/// Runs the full sweep in `mode`.
pub fn run_mode(cfg: &Fig5Config, mode: ExecMode) -> std::io::Result<Vec<Fig5Row>> {
    let mut rows = Vec::new();
    for &n in &cfg.tuple_counts {
        for &repr in &cfg.reprs {
            rows.push(run_one_mode(cfg, n, repr, mode)?);
        }
    }
    Ok(rows)
}

/// One row-vs-batch measurement over the same on-disk relation: the heap
/// is built once and the query phase runs cold in each mode.
#[derive(Debug, Clone)]
pub struct Fig5Compare {
    pub n_tuples: usize,
    pub repr: String,
    pub row_query_secs: f64,
    pub batch_query_secs: f64,
    /// `row_query_secs / batch_query_secs`.
    pub speedup: f64,
    /// First-query match count — identical across modes by construction
    /// (the batch kernels are bitwise-equal to the scalar path), verified
    /// on every run.
    pub matches: usize,
    pub threads: usize,
    /// On-disk footprint per tuple (pages × page size / tuples) — orders
    /// the representations by width for [`wide_repr_speedup`].
    pub record_bytes: usize,
}

impl Fig5Compare {
    /// JSON form, one field per measurement.
    pub fn to_json(&self) -> json::Value {
        json::Value::object()
            .with("n_tuples", self.n_tuples)
            .with("repr", self.repr.as_str())
            .with("row_query_secs", self.row_query_secs)
            .with("batch_query_secs", self.batch_query_secs)
            .with("speedup", self.speedup)
            .with("matches", self.matches)
            .with("threads", self.threads)
            .with("record_bytes", self.record_bytes)
    }
}

/// JSON array over a compare sweep, with the aggregate speedups attached
/// (overall and per representation).
pub fn compare_to_json(rows: &[Fig5Compare]) -> json::Value {
    let mut arr = json::Value::array();
    for r in rows {
        arr.push(r.to_json());
    }
    let mut per_repr = json::Value::object();
    for repr in rows.iter().map(|r| r.repr.as_str()).collect::<BTreeSet<_>>() {
        let subset: Vec<Fig5Compare> = rows.iter().filter(|r| r.repr == repr).cloned().collect();
        per_repr = per_repr.with(repr, aggregate_speedup(&subset));
    }
    json::Value::object()
        .with("figure", "fig5_batch")
        .with("aggregate_speedup", aggregate_speedup(rows))
        .with("repr_aggregate_speedups", per_repr)
        .with("wide_repr_aggregate_speedup", wide_repr_speedup(rows))
        .with("rows", arr)
}

/// Aggregate speedup of the representation where the columnar layout has
/// the most to win: the one with the largest encoded tuples (most bytes
/// per record — fig5's `Discrete(25)`). This is the number the check
/// script's ≥3x gate reads; narrow representations bottleneck on the same
/// scalar `erf`/`exp` in both modes and dilute the sweep-wide aggregate.
pub fn wide_repr_speedup(rows: &[Fig5Compare]) -> f64 {
    let Some(widest) =
        rows.iter().max_by(|a, b| a.record_bytes.cmp(&b.record_bytes)).map(|r| r.repr.clone())
    else {
        return f64::INFINITY;
    };
    let subset: Vec<Fig5Compare> = rows.iter().filter(|r| r.repr == widest).cloned().collect();
    aggregate_speedup(&subset)
}

/// Sweep-level speedup: total row query time over total batch query time
/// (time-weighted, so large configurations dominate — the same weighting
/// the figure's wall clock has).
pub fn aggregate_speedup(rows: &[Fig5Compare]) -> f64 {
    let row: f64 = rows.iter().map(|r| r.row_query_secs).sum();
    let batch: f64 = rows.iter().map(|r| r.batch_query_secs).sum();
    if batch > 0.0 {
        row / batch
    } else {
        f64::INFINITY
    }
}

/// Builds one relation and measures the query phase in both modes.
/// Returns an error if the modes disagree on the match count — they are
/// bitwise-identical by construction, so a mismatch is a kernel bug, not
/// noise.
pub fn compare_one(cfg: &Fig5Config, n: usize, repr: Repr) -> std::io::Result<Fig5Compare> {
    let (heap, _build_secs, path, queries) = build_relation(cfg, n, repr)?;
    let result = (|| {
        let (row_secs, row_matches, _) = query_phase(&heap, &queries, ExecMode::Row)?;
        let (batch_secs, batch_matches, _) = query_phase(&heap, &queries, ExecMode::Batch)?;
        if row_matches != batch_matches {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "mode mismatch on {} x {}: row matched {row_matches}, batch {batch_matches}",
                    n,
                    repr.label()
                ),
            ));
        }
        Ok(Fig5Compare {
            n_tuples: n,
            repr: repr.label(),
            row_query_secs: row_secs,
            batch_query_secs: batch_secs,
            speedup: if batch_secs > 0.0 { row_secs / batch_secs } else { f64::INFINITY },
            matches: row_matches,
            threads: orion_core::exec_par::effective_threads(0),
            record_bytes: heap.page_count() as usize * orion_storage::PAGE_SIZE / n.max(1),
        })
    })();
    std::fs::remove_file(&path).ok();
    result
}

/// Row-vs-batch compare over the whole sweep.
pub fn compare(cfg: &Fig5Config) -> std::io::Result<Vec<Fig5Compare>> {
    let mut rows = Vec::new();
    for &n in &cfg.tuple_counts {
        for &repr in &cfg.reprs {
            rows.push(compare_one(cfg, n, repr)?);
        }
    }
    Ok(rows)
}

/// Removes the scratch directory.
pub fn cleanup(dir: &Path) {
    std::fs::remove_dir_all(dir).ok();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> Fig5Config {
        Fig5Config {
            tuple_counts: vec![2_000],
            pool_pages: 16,
            n_queries: 2,
            dir: std::env::temp_dir().join("orion_fig5_test"),
            ..Fig5Config::default()
        }
    }

    #[test]
    fn discrete_occupies_more_pages_and_reads() {
        let cfg = tiny_cfg();
        let hist = run_one(&cfg, 2_000, Repr::Histogram(5)).unwrap();
        let disc = run_one(&cfg, 2_000, Repr::Discrete(25)).unwrap();
        let symb = run_one(&cfg, 2_000, Repr::Symbolic).unwrap();
        assert!(disc.pages > hist.pages, "{} vs {}", disc.pages, hist.pages);
        assert!(disc.physical_reads > hist.physical_reads);
        assert!(symb.pages <= hist.pages);
        cleanup(&cfg.dir);
    }

    #[test]
    fn matches_are_consistent_across_reprs() {
        // At equal accuracy (hist-5 vs disc-25) the query answers should
        // largely agree; symbolic is the ground truth.
        let cfg = tiny_cfg();
        let hist = run_one(&cfg, 2_000, Repr::Histogram(5)).unwrap();
        let disc = run_one(&cfg, 2_000, Repr::Discrete(25)).unwrap();
        let symb = run_one(&cfg, 2_000, Repr::Symbolic).unwrap();
        let tol = 2_000 / 20; // 5% of tuples
        assert!((hist.matches as i64 - symb.matches as i64).unsigned_abs() < tol as u64);
        assert!((disc.matches as i64 - symb.matches as i64).unsigned_abs() < tol as u64);
        cleanup(&cfg.dir);
    }

    #[test]
    fn batch_mode_matches_row_mode_per_repr() {
        // The batched range-probe kernels must agree with the scalar path
        // exactly: compare_one errors out on any match-count divergence.
        let cfg = tiny_cfg();
        for repr in [Repr::Histogram(5), Repr::Discrete(25), Repr::Symbolic] {
            let cmp = compare_one(&cfg, 2_000, repr).unwrap();
            assert!(cmp.matches > 0, "{}: degenerate workload", cmp.repr);
            assert!(cmp.speedup > 0.0);
        }
        cleanup(&cfg.dir);
    }

    #[test]
    fn run_one_mode_reports_its_mode() {
        let cfg = tiny_cfg();
        let row = run_one_mode(&cfg, 1_000, Repr::Histogram(5), ExecMode::Row).unwrap();
        let batch = run_one_mode(&cfg, 1_000, Repr::Histogram(5), ExecMode::Batch).unwrap();
        assert_eq!(row.mode, "row");
        assert_eq!(batch.mode, "batch");
        assert_eq!(row.matches, batch.matches, "modes must agree bitwise");
        let text = rows_to_json(&[batch]).to_string_compact();
        assert!(text.contains("\"mode\":\"batch\""), "{text}");
        cleanup(&cfg.dir);
    }

    #[test]
    fn compare_json_carries_aggregate_speedup() {
        let mk = |repr: &str, row: f64, batch: f64, bytes: usize| Fig5Compare {
            n_tuples: 10,
            repr: repr.into(),
            row_query_secs: row,
            batch_query_secs: batch,
            speedup: row / batch,
            matches: 3,
            threads: 1,
            record_bytes: bytes,
        };
        let rows = vec![mk("hist-5", 2.0, 1.0, 70), mk("disc-25", 8.0, 2.0, 413)];
        assert!((aggregate_speedup(&rows) - 10.0 / 3.0).abs() < 1e-12);
        // The gate metric follows the widest representation, not the sweep.
        assert!((wide_repr_speedup(&rows) - 4.0).abs() < 1e-12);
        let text = compare_to_json(&rows).to_string_compact();
        assert!(text.contains("\"figure\":\"fig5_batch\""), "{text}");
        assert!(text.contains("\"aggregate_speedup\""), "{text}");
        assert!(text.contains("\"repr_aggregate_speedups\""), "{text}");
        assert!(text.contains("\"wide_repr_aggregate_speedup\":4"), "{text}");
        assert!(text.contains("\"disc-25\":4"), "{text}");
        assert!(text.contains("\"speedup\""), "{text}");
    }

    #[test]
    fn io_snapshot_rides_along_in_json() {
        let cfg = tiny_cfg();
        let row = run_one(&cfg, 1_000, Repr::Histogram(5)).unwrap();
        assert_eq!(row.io.physical_reads, row.physical_reads);
        assert!(row.threads >= 1);
        let text = rows_to_json(std::slice::from_ref(&row)).to_string_compact();
        assert!(text.contains("\"threads\""), "{text}");
        let text = stats_json(&[row], &[], json::Value::object()).to_string_compact();
        assert!(text.contains("\"physical_reads\""), "{text}");
        assert!(text.contains("\"cache_misses\""), "{text}");
        assert!(text.contains("\"evictions\""), "{text}");
        assert!(text.contains("\"estimates\""), "{text}");
        assert!(text.contains("\"statements\""), "{text}");
        cleanup(&cfg.dir);
    }

    #[test]
    fn workload_report_populates_statements_and_feedback() {
        let doc = workload_report(500, 42);
        let text = doc.to_string_compact();
        assert!(text.contains("\"workload\""), "{text}");
        assert!(text.contains("\"plan_feedback\""), "{text}");
        // The three literal variants collapsed onto one SELECT entry.
        let stmts = doc
            .get("workload")
            .and_then(|w| w.get("statements"))
            .and_then(json::Value::as_array)
            .expect("statements array");
        let sel = stmts
            .iter()
            .find(|s| {
                s.get("text")
                    .and_then(json::Value::as_str)
                    .is_some_and(|t| t.starts_with("SELECT rid FROM readings"))
            })
            .expect("SELECT entry");
        assert_eq!(sel.get("calls").and_then(json::Value::as_u64), Some(3));
        let fb = doc
            .get("plan_feedback")
            .and_then(|f| f.get("feedback"))
            .and_then(json::Value::as_array)
            .expect("feedback array");
        assert!(!fb.is_empty(), "profiled run folded q-errors");
    }

    #[test]
    fn analyzed_threshold_estimate_within_2x() {
        // The acceptance gate: after ANALYZE, the threshold operator's
        // cardinality estimate tracks the actual within a 2x relative
        // error on the Figure 5 sensor workload.
        let n = 2_000;
        let plain = estimate_report(n, 42, false);
        let analyzed = estimate_report(n, 42, true);
        let before = plain.threshold_op().expect("threshold op in plan");
        let after = analyzed.threshold_op().expect("threshold op in plan");
        // Un-analyzed plans fall back to the magic constants
        // (1000 rows * 0.2 threshold selectivity = 200)...
        assert_eq!(before.est_rows, 200, "magic fallback");
        // ...while analyzed plans use the cdf sketch, and must not be the
        // magic value (non-default per the acceptance criterion).
        assert_ne!(after.est_rows, 200);
        assert!(
            after.rel_err < 2.0,
            "rel_err {} (est {} actual {})",
            after.rel_err,
            after.est_rows,
            after.actual_rows
        );
        assert!(after.rel_err <= before.rel_err, "ANALYZE must not make the estimate worse");
        let text = estimates_json(&[plain, analyzed]).to_string_compact();
        assert!(text.contains("\"analyzed\":true"), "{text}");
        assert!(text.contains("\"actual_rows\""), "{text}");
    }

    #[test]
    fn pages_scale_linearly_with_tuples() {
        let cfg = tiny_cfg();
        let a = run_one(&cfg, 1_000, Repr::Histogram(5)).unwrap();
        let b = run_one(&cfg, 2_000, Repr::Histogram(5)).unwrap();
        let ratio = b.pages as f64 / a.pages as f64;
        assert!((ratio - 2.0).abs() < 0.2, "ratio {ratio}");
        cleanup(&cfg.dir);
    }
}
