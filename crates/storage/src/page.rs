//! Slotted pages: the fixed-size on-disk unit.
//!
//! Layout (offsets in bytes):
//! ```text
//! [0..2)   slot count (u16)
//! [2..4)   free-space offset (u16) — start of the record heap, grows down
//! [4..8)   CRC32 seal over the rest of the page (0 until first sealed)
//! [8..)    slot directory: (offset: u16, len: u16) per slot, grows up
//! [...]    record data, packed from the end of the page downward
//! ```
//! A slot with `len == DEAD` marks a deleted record.
//!
//! The seal is the torn-write detector: [`Page::seal`] stamps the CRC32 of
//! the whole page (with the seal field zeroed) immediately before a write
//! to stable storage, and [`Page::checksum_ok`] recomputes it after a read.
//! A write that only partially reached the platter leaves a page whose
//! stored seal disagrees with its contents.

use crate::checksum::Crc32;

/// Size of every page in bytes (matches PostgreSQL's default block size).
pub const PAGE_SIZE: usize = 8192;

const HEADER: usize = 8;
const CKSUM: usize = 4;
const SLOT: usize = 4;
const DEAD: u16 = u16::MAX;

/// A page whose stored CRC32 seal disagrees with its contents — the
/// signature of a torn or corrupted write. Carried as the payload of an
/// `io::Error` with kind [`std::io::ErrorKind::InvalidData`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChecksumMismatch {
    /// Page id within its store.
    pub page: u32,
    /// Seal found on the page.
    pub stored: u32,
    /// Seal recomputed from the page contents.
    pub computed: u32,
}

impl std::fmt::Display for ChecksumMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "torn page {}: stored checksum {:#010x} != computed {:#010x}",
            self.page, self.stored, self.computed
        )
    }
}

impl std::error::Error for ChecksumMismatch {}

/// A fixed-size slotted page holding variable-length records.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    /// An empty page.
    pub fn new() -> Self {
        let mut data = Box::new([0u8; PAGE_SIZE]);
        // Free space starts at the end of the page and grows downward.
        data[2..4].copy_from_slice(&(PAGE_SIZE as u16).to_le_bytes());
        Page { data }
    }

    /// Wraps raw page bytes read from disk.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert_eq!(bytes.len(), PAGE_SIZE, "page must be {PAGE_SIZE} bytes");
        let mut data = Box::new([0u8; PAGE_SIZE]);
        data.copy_from_slice(bytes);
        Page { data }
    }

    /// The raw bytes, for writing to disk.
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Mutable raw bytes — fault injection and recovery tooling only;
    /// arbitrary edits invalidate the seal (which is the point).
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.data
    }

    /// CRC32 of the page with the seal field zeroed.
    pub fn compute_checksum(&self) -> u32 {
        let mut h = Crc32::new();
        h.update(&self.data[..CKSUM]);
        h.update(&[0u8; 4]);
        h.update(&self.data[CKSUM + 4..]);
        h.finalize()
    }

    /// The seal currently stored in the header (0 = never sealed).
    pub fn stored_checksum(&self) -> u32 {
        u32::from_le_bytes(self.data[CKSUM..CKSUM + 4].try_into().expect("4 bytes"))
    }

    /// Stamps the seal; call immediately before writing to stable storage.
    pub fn seal(&mut self) {
        let c = self.compute_checksum();
        self.data[CKSUM..CKSUM + 4].copy_from_slice(&c.to_le_bytes());
    }

    /// Whether the stored seal matches the contents. Pages read back from
    /// a store must pass this; a mismatch means a torn or corrupted write.
    pub fn checksum_ok(&self) -> bool {
        self.stored_checksum() == self.compute_checksum()
    }

    fn read_u16(&self, at: usize) -> u16 {
        u16::from_le_bytes([self.data[at], self.data[at + 1]])
    }

    fn write_u16(&mut self, at: usize, v: u16) {
        self.data[at..at + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Number of slots (live and dead).
    pub fn slot_count(&self) -> usize {
        self.read_u16(0) as usize
    }

    fn free_offset(&self) -> usize {
        self.read_u16(2) as usize
    }

    /// Bytes available for one more record (including its slot entry).
    pub fn free_space(&self) -> usize {
        let dir_end = HEADER + self.slot_count() * SLOT;
        self.free_offset().saturating_sub(dir_end)
    }

    /// Whether a record of `len` bytes fits.
    pub fn fits(&self, len: usize) -> bool {
        self.free_space() >= len + SLOT
    }

    /// Inserts a record, returning its slot index, or `None` if it does not
    /// fit. Records larger than the page payload never fit.
    pub fn insert(&mut self, record: &[u8]) -> Option<usize> {
        if !self.fits(record.len()) || record.len() >= DEAD as usize {
            return None;
        }
        let slot = self.slot_count();
        let new_free = self.free_offset() - record.len();
        self.data[new_free..new_free + record.len()].copy_from_slice(record);
        self.write_u16(2, new_free as u16);
        let dir = HEADER + slot * SLOT;
        self.write_u16(dir, new_free as u16);
        self.write_u16(dir + 2, record.len() as u16);
        self.write_u16(0, (slot + 1) as u16);
        Some(slot)
    }

    /// Reads the record in `slot`, or `None` if out of range or deleted.
    pub fn get(&self, slot: usize) -> Option<&[u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let dir = HEADER + slot * SLOT;
        let off = self.read_u16(dir) as usize;
        let len = self.read_u16(dir + 2);
        if len == DEAD {
            return None;
        }
        Some(&self.data[off..off + len as usize])
    }

    /// Marks the record in `slot` deleted (space is not reclaimed;
    /// compaction is a higher-level concern).
    pub fn delete(&mut self, slot: usize) -> bool {
        if slot >= self.slot_count() {
            return false;
        }
        let dir = HEADER + slot * SLOT;
        if self.read_u16(dir + 2) == DEAD {
            return false;
        }
        self.write_u16(dir + 2, DEAD);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_page_geometry() {
        let p = Page::new();
        assert_eq!(p.slot_count(), 0);
        assert_eq!(p.free_space(), PAGE_SIZE - HEADER);
        assert!(p.get(0).is_none());
    }

    #[test]
    fn insert_and_get_round_trip() {
        let mut p = Page::new();
        let s0 = p.insert(b"hello").unwrap();
        let s1 = p.insert(b"world!").unwrap();
        assert_eq!(s0, 0);
        assert_eq!(s1, 1);
        assert_eq!(p.get(0), Some(&b"hello"[..]));
        assert_eq!(p.get(1), Some(&b"world!"[..]));
        assert_eq!(p.slot_count(), 2);
    }

    #[test]
    fn fill_page_until_full() {
        let mut p = Page::new();
        let rec = vec![0xAB; 100];
        let mut n = 0;
        while p.insert(&rec).is_some() {
            n += 1;
        }
        // 8184 bytes available / 104 per record.
        assert_eq!(n, (PAGE_SIZE - HEADER) / (100 + SLOT));
        assert!(!p.fits(100));
        assert!(p.get(n - 1).is_some());
    }

    #[test]
    fn delete_marks_dead() {
        let mut p = Page::new();
        p.insert(b"a").unwrap();
        p.insert(b"b").unwrap();
        assert!(p.delete(0));
        assert!(p.get(0).is_none());
        assert_eq!(p.get(1), Some(&b"b"[..]));
        assert!(!p.delete(0), "double delete");
        assert!(!p.delete(7), "out of range");
        // Slot count unchanged (scan skips dead slots).
        assert_eq!(p.slot_count(), 2);
    }

    #[test]
    fn serialization_round_trip() {
        let mut p = Page::new();
        p.insert(b"persisted").unwrap();
        let q = Page::from_bytes(p.bytes());
        assert_eq!(q.get(0), Some(&b"persisted"[..]));
        assert_eq!(q.slot_count(), 1);
    }

    #[test]
    fn oversized_record_rejected() {
        let mut p = Page::new();
        assert!(p.insert(&vec![0u8; PAGE_SIZE]).is_none());
        assert!(p.insert(&vec![0u8; PAGE_SIZE - HEADER - SLOT]).is_some());
    }

    #[test]
    fn seal_round_trip_and_mutation_detection() {
        let mut p = Page::new();
        p.insert(b"sealed record").unwrap();
        assert!(!p.checksum_ok(), "unsealed page has no valid seal");
        p.seal();
        assert!(p.checksum_ok());
        assert_eq!(p.stored_checksum(), p.compute_checksum());
        // The seal survives a disk round trip...
        let q = Page::from_bytes(p.bytes());
        assert!(q.checksum_ok());
        // ...and any content mutation invalidates it.
        let mut torn = q.clone();
        torn.insert(b"late write").unwrap();
        assert!(!torn.checksum_ok());
        torn.seal();
        assert!(torn.checksum_ok(), "resealing repairs the stamp");
    }

    #[test]
    fn torn_tail_is_detected() {
        let mut p = Page::new();
        p.insert(&vec![0x42u8; 3000]).unwrap();
        p.seal();
        // Simulate a torn write: only the first 4 KiB hit the platter, the
        // tail still holds old (zero) content.
        let mut bytes = *p.bytes();
        for b in &mut bytes[4096..] {
            *b = 0;
        }
        let torn = Page::from_bytes(&bytes);
        assert!(!torn.checksum_ok());
    }

    #[test]
    fn checksum_mismatch_error_formats() {
        let e = ChecksumMismatch { page: 7, stored: 1, computed: 2 };
        let text = e.to_string();
        assert!(text.contains("torn page 7"), "{text}");
        let io = std::io::Error::new(std::io::ErrorKind::InvalidData, e.clone());
        assert!(io.get_ref().is_some_and(|r| r.downcast_ref::<ChecksumMismatch>() == Some(&e)));
    }
}
