//! Slotted pages: the fixed-size on-disk unit.
//!
//! Layout (offsets in bytes):
//! ```text
//! [0..2)   slot count (u16)
//! [2..4)   free-space offset (u16) — start of the record heap, grows down
//! [4..)    slot directory: (offset: u16, len: u16) per slot, grows up
//! [...]    record data, packed from the end of the page downward
//! ```
//! A slot with `len == DEAD` marks a deleted record.

/// Size of every page in bytes (matches PostgreSQL's default block size).
pub const PAGE_SIZE: usize = 8192;

const HEADER: usize = 4;
const SLOT: usize = 4;
const DEAD: u16 = u16::MAX;

/// A fixed-size slotted page holding variable-length records.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    /// An empty page.
    pub fn new() -> Self {
        let mut data = Box::new([0u8; PAGE_SIZE]);
        // Free space starts at the end of the page and grows downward.
        data[2..4].copy_from_slice(&(PAGE_SIZE as u16).to_le_bytes());
        Page { data }
    }

    /// Wraps raw page bytes read from disk.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert_eq!(bytes.len(), PAGE_SIZE, "page must be {PAGE_SIZE} bytes");
        let mut data = Box::new([0u8; PAGE_SIZE]);
        data.copy_from_slice(bytes);
        Page { data }
    }

    /// The raw bytes, for writing to disk.
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    fn read_u16(&self, at: usize) -> u16 {
        u16::from_le_bytes([self.data[at], self.data[at + 1]])
    }

    fn write_u16(&mut self, at: usize, v: u16) {
        self.data[at..at + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Number of slots (live and dead).
    pub fn slot_count(&self) -> usize {
        self.read_u16(0) as usize
    }

    fn free_offset(&self) -> usize {
        self.read_u16(2) as usize
    }

    /// Bytes available for one more record (including its slot entry).
    pub fn free_space(&self) -> usize {
        let dir_end = HEADER + self.slot_count() * SLOT;
        self.free_offset().saturating_sub(dir_end)
    }

    /// Whether a record of `len` bytes fits.
    pub fn fits(&self, len: usize) -> bool {
        self.free_space() >= len + SLOT
    }

    /// Inserts a record, returning its slot index, or `None` if it does not
    /// fit. Records larger than the page payload never fit.
    pub fn insert(&mut self, record: &[u8]) -> Option<usize> {
        if !self.fits(record.len()) || record.len() >= DEAD as usize {
            return None;
        }
        let slot = self.slot_count();
        let new_free = self.free_offset() - record.len();
        self.data[new_free..new_free + record.len()].copy_from_slice(record);
        self.write_u16(2, new_free as u16);
        let dir = HEADER + slot * SLOT;
        self.write_u16(dir, new_free as u16);
        self.write_u16(dir + 2, record.len() as u16);
        self.write_u16(0, (slot + 1) as u16);
        Some(slot)
    }

    /// Reads the record in `slot`, or `None` if out of range or deleted.
    pub fn get(&self, slot: usize) -> Option<&[u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let dir = HEADER + slot * SLOT;
        let off = self.read_u16(dir) as usize;
        let len = self.read_u16(dir + 2);
        if len == DEAD {
            return None;
        }
        Some(&self.data[off..off + len as usize])
    }

    /// Marks the record in `slot` deleted (space is not reclaimed;
    /// compaction is a higher-level concern).
    pub fn delete(&mut self, slot: usize) -> bool {
        if slot >= self.slot_count() {
            return false;
        }
        let dir = HEADER + slot * SLOT;
        if self.read_u16(dir + 2) == DEAD {
            return false;
        }
        self.write_u16(dir + 2, DEAD);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_page_geometry() {
        let p = Page::new();
        assert_eq!(p.slot_count(), 0);
        assert_eq!(p.free_space(), PAGE_SIZE - HEADER);
        assert!(p.get(0).is_none());
    }

    #[test]
    fn insert_and_get_round_trip() {
        let mut p = Page::new();
        let s0 = p.insert(b"hello").unwrap();
        let s1 = p.insert(b"world!").unwrap();
        assert_eq!(s0, 0);
        assert_eq!(s1, 1);
        assert_eq!(p.get(0), Some(&b"hello"[..]));
        assert_eq!(p.get(1), Some(&b"world!"[..]));
        assert_eq!(p.slot_count(), 2);
    }

    #[test]
    fn fill_page_until_full() {
        let mut p = Page::new();
        let rec = vec![0xAB; 100];
        let mut n = 0;
        while p.insert(&rec).is_some() {
            n += 1;
        }
        // 8188 bytes available / 104 per record.
        assert_eq!(n, (PAGE_SIZE - HEADER) / (100 + SLOT));
        assert!(!p.fits(100));
        assert!(p.get(n - 1).is_some());
    }

    #[test]
    fn delete_marks_dead() {
        let mut p = Page::new();
        p.insert(b"a").unwrap();
        p.insert(b"b").unwrap();
        assert!(p.delete(0));
        assert!(p.get(0).is_none());
        assert_eq!(p.get(1), Some(&b"b"[..]));
        assert!(!p.delete(0), "double delete");
        assert!(!p.delete(7), "out of range");
        // Slot count unchanged (scan skips dead slots).
        assert_eq!(p.slot_count(), 2);
    }

    #[test]
    fn serialization_round_trip() {
        let mut p = Page::new();
        p.insert(b"persisted").unwrap();
        let q = Page::from_bytes(p.bytes());
        assert_eq!(q.get(0), Some(&b"persisted"[..]));
        assert_eq!(q.slot_count(), 1);
    }

    #[test]
    fn oversized_record_rejected() {
        let mut p = Page::new();
        assert!(p.insert(&vec![0u8; PAGE_SIZE]).is_none());
        assert!(p.insert(&vec![0u8; PAGE_SIZE - HEADER - SLOT]).is_some());
    }
}
