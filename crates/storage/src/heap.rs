//! Heap files: unordered record storage over a buffer pool.

use crate::buffer::BufferPool;
use crate::file::{PageId, PageStore};

/// Physical address of a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecordId {
    /// Page containing the record.
    pub page: PageId,
    /// Slot within the page.
    pub slot: u16,
}

/// An append-oriented heap file of variable-length records.
pub struct HeapFile<S: PageStore> {
    pool: BufferPool<S>,
    /// Page currently accepting inserts (append-only fill strategy).
    tail: Option<PageId>,
}

impl<S: PageStore> HeapFile<S> {
    /// Creates a heap over `store` with a pool of `pool_pages` frames.
    pub fn new(store: S, pool_pages: usize) -> Self {
        HeapFile { pool: BufferPool::new(store, pool_pages), tail: None }
    }

    /// The underlying buffer pool (for stats and cache control).
    pub fn pool(&self) -> &BufferPool<S> {
        &self.pool
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> u32 {
        self.pool.page_count()
    }

    /// Writes every dirty page back and forces it to stable storage
    /// (flush + fsync) — the durability point for heap contents.
    pub fn sync(&self) -> std::io::Result<()> {
        self.pool.flush()?;
        self.pool.sync()
    }

    /// Appends a record, allocating pages as needed.
    pub fn insert(&mut self, record: &[u8]) -> std::io::Result<RecordId> {
        if let Some(pid) = self.tail {
            if let Some(slot) = self.pool.with_page_mut(pid, |p| p.insert(record))? {
                return Ok(RecordId { page: pid, slot: slot as u16 });
            }
        }
        let pid = self.pool.allocate()?;
        self.tail = Some(pid);
        let slot = self.pool.with_page_mut(pid, |p| p.insert(record))?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("record of {} bytes exceeds page capacity", record.len()),
            )
        })?;
        Ok(RecordId { page: pid, slot: slot as u16 })
    }

    /// Reads one record (a copy), or `None` if deleted/absent.
    pub fn get(&self, rid: RecordId) -> std::io::Result<Option<Vec<u8>>> {
        self.pool.with_page(rid.page, |p| p.get(rid.slot as usize).map(|b| b.to_vec()))
    }

    /// Deletes one record; returns whether it existed.
    pub fn delete(&mut self, rid: RecordId) -> std::io::Result<bool> {
        self.pool.with_page_mut(rid.page, |p| p.delete(rid.slot as usize))
    }

    /// Full scan, invoking `f` for every live record. The visitor receives
    /// the record id and bytes; returning `false` stops the scan early.
    pub fn scan(&self, mut f: impl FnMut(RecordId, &[u8]) -> bool) -> std::io::Result<()> {
        let pages = self.pool.page_count();
        'outer: for pid in 0..pages {
            let stop = self.pool.with_page(pid, |p| {
                for slot in 0..p.slot_count() {
                    if let Some(rec) = p.get(slot) {
                        if !f(RecordId { page: pid, slot: slot as u16 }, rec) {
                            return true;
                        }
                    }
                }
                false
            })?;
            if stop {
                break 'outer;
            }
        }
        Ok(())
    }

    /// Full scan through the pool's scan-resistant bulk path: same visit
    /// order and semantics as [`HeapFile::scan`], but uncached pages stream
    /// through a scratch frame instead of faulting into the cache — no
    /// evictions, no LRU churn. Preferred for large analytic scans (the
    /// columnar batch executor's table access path).
    pub fn scan_bulk(&self, mut f: impl FnMut(RecordId, &[u8]) -> bool) -> std::io::Result<()> {
        self.pool.scan_pages(|pid, p| {
            for slot in 0..p.slot_count() {
                if let Some(rec) = p.get(slot) {
                    if !f(RecordId { page: pid, slot: slot as u16 }, rec) {
                        return false;
                    }
                }
            }
            true
        })
    }

    /// Makes the last allocated page the insert tail, so appends fill its
    /// free space instead of always allocating. Used when a heap is rebuilt
    /// from existing pages (e.g. the incremental checkpointer folding a
    /// snapshot chain): without adoption every append would dirty a fresh
    /// page, and the partial tail page's remaining capacity would be lost.
    pub fn adopt_tail(&mut self) {
        let pages = self.pool.page_count();
        self.tail = pages.checked_sub(1);
    }

    /// Flushes and consumes the heap, returning the underlying store.
    pub fn into_store(self) -> std::io::Result<S> {
        self.pool.into_store()
    }

    /// Number of live records (full scan).
    pub fn len(&self) -> std::io::Result<usize> {
        let mut n = 0;
        self.scan(|_, _| {
            n += 1;
            true
        })?;
        Ok(n)
    }

    /// Whether the heap holds no live records.
    pub fn is_empty(&self) -> std::io::Result<bool> {
        let mut any = false;
        self.scan(|_, _| {
            any = true;
            false
        })?;
        Ok(!any)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::MemStore;

    #[test]
    fn insert_get_delete() {
        let mut h = HeapFile::new(MemStore::new(), 4);
        let a = h.insert(b"alpha").unwrap();
        let b = h.insert(b"beta").unwrap();
        assert_eq!(h.get(a).unwrap().unwrap(), b"alpha");
        assert_eq!(h.get(b).unwrap().unwrap(), b"beta");
        assert!(h.delete(a).unwrap());
        assert!(h.get(a).unwrap().is_none());
        assert!(!h.delete(a).unwrap());
        assert_eq!(h.len().unwrap(), 1);
    }

    #[test]
    fn spills_to_new_pages() {
        let mut h = HeapFile::new(MemStore::new(), 2);
        let rec = vec![7u8; 1000];
        for _ in 0..30 {
            h.insert(&rec).unwrap();
        }
        assert!(h.page_count() > 1);
        assert_eq!(h.len().unwrap(), 30);
    }

    #[test]
    fn scan_visits_in_insert_order_per_page() {
        let mut h = HeapFile::new(MemStore::new(), 4);
        for i in 0..10u8 {
            h.insert(&[i]).unwrap();
        }
        let mut seen = Vec::new();
        h.scan(|_, rec| {
            seen.push(rec[0]);
            true
        })
        .unwrap();
        assert_eq!(seen, (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn scan_early_stop() {
        let mut h = HeapFile::new(MemStore::new(), 4);
        for i in 0..10u8 {
            h.insert(&[i]).unwrap();
        }
        let mut n = 0;
        h.scan(|_, _| {
            n += 1;
            n < 3
        })
        .unwrap();
        assert_eq!(n, 3);
        assert!(!h.is_empty().unwrap());
    }

    #[test]
    fn scan_bulk_matches_scan() {
        let mut h = HeapFile::new(MemStore::new(), 2);
        for i in 0..200u8 {
            h.insert(&[i, i.wrapping_mul(3)]).unwrap();
        }
        h.delete(RecordId { page: 0, slot: 1 }).unwrap();
        let collect = |bulk: bool| {
            let mut seen: Vec<(RecordId, Vec<u8>)> = Vec::new();
            let f = |rid: RecordId, rec: &[u8]| {
                seen.push((rid, rec.to_vec()));
                true
            };
            if bulk {
                h.scan_bulk(f).unwrap()
            } else {
                h.scan(f).unwrap()
            }
            seen
        };
        assert_eq!(collect(true), collect(false));
    }

    #[test]
    fn scan_bulk_early_stop() {
        let mut h = HeapFile::new(MemStore::new(), 4);
        for i in 0..10u8 {
            h.insert(&[i]).unwrap();
        }
        let mut n = 0;
        h.scan_bulk(|_, _| {
            n += 1;
            n < 3
        })
        .unwrap();
        assert_eq!(n, 3);
    }

    #[test]
    fn oversized_record_errors() {
        let mut h = HeapFile::new(MemStore::new(), 2);
        let err = h.insert(&vec![0u8; crate::page::PAGE_SIZE * 2]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }
}
