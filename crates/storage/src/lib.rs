//! # orion-storage — paged storage substrate for Orion-RS
//!
//! A from-scratch storage engine standing in for the PostgreSQL layer the
//! paper's Orion extension ran inside: 8 KiB slotted [`page::Page`]s,
//! on-disk/in-memory [`file::PageStore`] backends, a bounded LRU
//! [`buffer::BufferPool`] with physical-I/O counters, and append-oriented
//! [`heap::HeapFile`]s. The [`codec`] module packs pdf attribute values into
//! records, making the on-disk footprint of each representation (symbolic
//! vs histogram vs discrete) measurable — the cost model of the paper's
//! Figure 5.
//!
//! Durability layer: every page carries a CRC32 seal ([`checksum`],
//! [`page::Page::seal`]) verified by the buffer pool on fault-in, and the
//! [`wal`] module provides the length+CRC-framed write-ahead log the engine
//! commits through. With the `failpoints` feature, [`faults::FaultyStore`]
//! injects deterministic write/read faults for crash-matrix testing.

pub mod btree;
pub mod buffer;
pub mod checksum;
pub mod codec;
pub mod delta;
#[cfg(feature = "failpoints")]
pub mod faults;
pub mod file;
pub mod heap;
pub mod page;
pub mod wal;

pub use btree::BTree;
pub use buffer::BufferPool;
pub use delta::DeltaFile;
#[cfg(feature = "failpoints")]
pub use faults::{Fault, FaultPlan, FaultyStore};
pub use file::{FileStore, IoSnapshot, IoStats, MemStore, PageId, PageStore};
pub use heap::{HeapFile, RecordId};
pub use page::{ChecksumMismatch, Page, PAGE_SIZE};
pub use wal::{GroupCommitConfig, GroupWal, Wal, WalReplay, WalStats};
