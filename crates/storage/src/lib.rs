//! # orion-storage — paged storage substrate for Orion-RS
//!
//! A from-scratch storage engine standing in for the PostgreSQL layer the
//! paper's Orion extension ran inside: 8 KiB slotted [`page::Page`]s,
//! on-disk/in-memory [`file::PageStore`] backends, a bounded LRU
//! [`buffer::BufferPool`] with physical-I/O counters, and append-oriented
//! [`heap::HeapFile`]s. The [`codec`] module packs pdf attribute values into
//! records, making the on-disk footprint of each representation (symbolic
//! vs histogram vs discrete) measurable — the cost model of the paper's
//! Figure 5.

pub mod buffer;
pub mod codec;
pub mod file;
pub mod heap;
pub mod page;

pub use buffer::BufferPool;
pub use file::{FileStore, IoSnapshot, IoStats, MemStore, PageId, PageStore};
pub use heap::{HeapFile, RecordId};
pub use page::{Page, PAGE_SIZE};
