//! CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the integrity
//! primitive shared by [`crate::page`] (per-page seals) and [`crate::wal`]
//! (per-record frames). Implemented from scratch: the build environment is
//! offline, so no `crc32fast`.

/// Lookup tables for slicing-by-8: `TABLES[0]` is the classic one-byte
/// reflected table; `TABLES[j][b]` advances the CRC of byte `b` by `j`
/// further zero bytes, letting [`Crc32::update`] fold eight input bytes per
/// step instead of one. Same polynomial, same checksums — only faster,
/// which matters because every buffer-pool page fault verifies a full page.
const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            tables[j][i] = (tables[j - 1][i] >> 8) ^ tables[0][(tables[j - 1][i] & 0xFF) as usize];
            i += 1;
        }
        j += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = build_tables();

/// Carry-less-multiply (PCLMULQDQ) folding for the same reflected CRC32,
/// after Intel's "Fast CRC Computation for Generic Polynomials Using
/// PCLMULQDQ" white paper. The kernel folds the bulk of the input down to
/// one 128-bit residue **congruent to the whole message mod the CRC
/// polynomial**; the residue's 16 bytes then go through the ordinary table
/// loop, so the result is bit-identical to the table path while the bulk
/// runs at multiple bytes per cycle. Runtime-detected: non-x86_64 hosts and
/// CPUs without the instruction keep the slicing-by-8 loop.
#[cfg(target_arch = "x86_64")]
mod clmul {
    use std::arch::x86_64::*;

    // Folding constants for the reflected polynomial 0xEDB88320:
    // K1 = x^(4·128+32) mod P, K2 = x^(4·128-32) mod P (512-bit stride),
    // K3 = x^(128+32) mod P,   K4 = x^(128-32) mod P  (128-bit stride).
    const K1: i64 = 0x1_5444_2bd4;
    const K2: i64 = 0x1_c6e4_1596;
    const K3: i64 = 0x1_7519_97d0;
    const K4: i64 = 0x0_ccaa_009e;

    /// Whether this CPU can run [`fold_blocks`].
    #[inline]
    pub fn supported() -> bool {
        // `is_x86_feature_detected!` caches the cpuid result internally.
        std::arch::is_x86_feature_detected!("pclmulqdq")
    }

    /// One fold step: advances accumulator `a` over 128 input bits and
    /// absorbs the next block — `a.lo · K_lo ⊕ a.hi · K_hi ⊕ b` in GF(2).
    #[inline]
    #[target_feature(enable = "pclmulqdq")]
    unsafe fn reduce128(a: __m128i, b: __m128i, keys: __m128i) -> __m128i {
        let t1 = _mm_clmulepi64_si128(a, keys, 0x00);
        let t2 = _mm_clmulepi64_si128(a, keys, 0x11);
        _mm_xor_si128(_mm_xor_si128(b, t1), t2)
    }

    /// Folds `data` (length a multiple of 16 and at least 64) into `out`:
    /// feeding `out` through the table loop **with state 0** yields the same
    /// state as feeding all of `data` with state `state`. The running state
    /// is injected by XOR into the first four message bytes (the classic
    /// init-state identity for reflected CRCs).
    ///
    /// # Safety
    /// The caller must check [`supported`] first.
    #[target_feature(enable = "pclmulqdq")]
    pub unsafe fn fold_blocks(state: u32, data: &[u8], out: &mut [u8; 16]) {
        debug_assert!(data.len() >= 64 && data.len().is_multiple_of(16));
        let mut ptr = data.as_ptr().cast::<__m128i>();
        let mut blocks = data.len() / 16 - 4;
        let mut x3 = _mm_loadu_si128(ptr);
        let mut x2 = _mm_loadu_si128(ptr.add(1));
        let mut x1 = _mm_loadu_si128(ptr.add(2));
        let mut x0 = _mm_loadu_si128(ptr.add(3));
        ptr = ptr.add(4);
        x3 = _mm_xor_si128(x3, _mm_cvtsi32_si128(state as i32));
        // Four independent accumulators hide the multiplier latency.
        let k1k2 = _mm_set_epi64x(K2, K1);
        while blocks >= 4 {
            x3 = reduce128(x3, _mm_loadu_si128(ptr), k1k2);
            x2 = reduce128(x2, _mm_loadu_si128(ptr.add(1)), k1k2);
            x1 = reduce128(x1, _mm_loadu_si128(ptr.add(2)), k1k2);
            x0 = reduce128(x0, _mm_loadu_si128(ptr.add(3)), k1k2);
            ptr = ptr.add(4);
            blocks -= 4;
        }
        let k3k4 = _mm_set_epi64x(K4, K3);
        let mut x = reduce128(x3, x2, k3k4);
        x = reduce128(x, x1, k3k4);
        x = reduce128(x, x0, k3k4);
        while blocks > 0 {
            x = reduce128(x, _mm_loadu_si128(ptr), k3k4);
            ptr = ptr.add(1);
            blocks -= 1;
        }
        _mm_storeu_si128(out.as_mut_ptr().cast::<__m128i>(), x);
    }
}

/// Incremental CRC32 state, for checksums over scattered byte ranges.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh hasher.
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the checksum. Large inputs on CPUs with
    /// carry-less multiply go through the [`clmul`] folding kernel (the
    /// residue and any tail finish in the table loop); everything else uses
    /// slicing-by-8 over the bulk and the classic byte loop over the
    /// remainder. All paths produce identical checksums.
    pub fn update(&mut self, bytes: &[u8]) {
        #[cfg(target_arch = "x86_64")]
        if bytes.len() >= 64 && clmul::supported() {
            let cut = bytes.len() & !15;
            let mut residue = [0u8; 16];
            // SAFETY: `supported()` checked pclmulqdq; `cut` is a multiple
            // of 16 and at least 64.
            unsafe { clmul::fold_blocks(self.state, &bytes[..cut], &mut residue) };
            let mut c = Self::table_update(0, &residue);
            c = Self::table_update(c, &bytes[cut..]);
            self.state = c;
            return;
        }
        self.state = Self::table_update(self.state, bytes);
    }

    /// The slicing-by-8 table loop over `bytes`, starting from `state`.
    fn table_update(state: u32, bytes: &[u8]) -> u32 {
        let mut c = state;
        let mut chunks = bytes.chunks_exact(8);
        for ch in &mut chunks {
            let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ c;
            let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
            c = TABLES[7][(lo & 0xFF) as usize]
                ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][(hi & 0xFF) as usize]
                ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ TABLES[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            c = TABLES[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
        }
        c
    }

    /// Final checksum value.
    pub fn finalize(self) -> u32 {
        !self.state
    }
}

/// One-shot CRC32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in [0, 1, 7, 20, data.len()] {
            let mut h = Crc32::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), crc32(data), "split at {split}");
        }
    }

    #[test]
    fn sliced_update_matches_byte_at_a_time() {
        // Reference: the classic one-byte table loop the sliced kernel
        // replaced. Every length exercises a different bulk/remainder split.
        fn reference(bytes: &[u8]) -> u32 {
            let mut c = 0xFFFF_FFFFu32;
            for &b in bytes {
                c = TABLES[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
            }
            !c
        }
        // 4096 covers a full page through the clmul kernel; 63/64/65 and
        // the odd tails cover every dispatch boundary and remainder split.
        let data: Vec<u8> =
            (0..4096u32).map(|i| (i.wrapping_mul(2_654_435_761) >> 13) as u8).collect();
        for len in [0, 1, 7, 8, 9, 15, 16, 63, 64, 65, 79, 80, 100, 127, 128, 1024, 4092, 4096] {
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "len {len}");
        }
    }

    #[test]
    fn streaming_resumes_through_every_kernel() {
        // A second `update` call starts from a nonzero running state; the
        // folding kernel must inject it exactly like the table loop does.
        let data: Vec<u8> = (0..1000u32).map(|i| (i.wrapping_mul(40_503) >> 7) as u8).collect();
        let whole = crc32(&data);
        for split in [1, 8, 63, 64, 65, 500, 936, 999] {
            let mut h = Crc32::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), whole, "split at {split}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0x5Au8; 256];
        let base = crc32(&data);
        for byte in [0usize, 100, 255] {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), base, "flip {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
