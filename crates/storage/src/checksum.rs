//! CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the integrity
//! primitive shared by [`crate::page`] (per-page seals) and [`crate::wal`]
//! (per-record frames). Implemented from scratch: the build environment is
//! offline, so no `crc32fast`.

/// Lookup table for one byte of reflected CRC32.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Incremental CRC32 state, for checksums over scattered byte ranges.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh hasher.
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.state;
        for &b in bytes {
            c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// Final checksum value.
    pub fn finalize(self) -> u32 {
        !self.state
    }
}

/// One-shot CRC32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in [0, 1, 7, 20, data.len()] {
            let mut h = Crc32::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), crc32(data), "split at {split}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0x5Au8; 256];
        let base = crc32(&data);
        for byte in [0usize, 100, 255] {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), base, "flip {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
