//! Incremental-checkpoint delta files: the pages dirtied since the last
//! checkpoint, stamped with the epoch they advance the snapshot chain to.
//!
//! File layout (little-endian):
//! ```text
//! [0..4)    magic "ODLT"
//! [4..8)    format version (u32)
//! [8..16)   checkpoint epoch this delta advances to (u64)
//! [16..20)  page count (u32)
//! [20..24)  CRC32 of bytes [0..20) — header integrity
//! then per page: [page id (u32)][PAGE_SIZE page image]
//! ```
//!
//! Page images carry their ordinary CRC32 seals, so a torn page inside a
//! delta is detected the same way a torn snapshot page is. Writing is
//! crash-atomic with the PR 2 discipline: temp file → fsync → rename →
//! directory fsync; a crash mid-write leaves only a `.tmp` that loaders
//! ignore and checkpointers overwrite.
//!
//! Recovery folds the chain in epoch order: base snapshot pages first,
//! each delta's pages overlaid on top (higher epoch wins per page), and
//! only then is the folded store scanned as one heap — scanning base and
//! deltas separately would double-count records living on a page that a
//! delta re-images.

use crate::checksum::crc32;
use crate::file::PageId;
use crate::page::{Page, PAGE_SIZE};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Magic prefix of a delta file.
pub const DELTA_MAGIC: [u8; 4] = *b"ODLT";

/// Current delta format version.
pub const DELTA_VERSION: u32 = 1;

const HEADER_LEN: usize = 24;

/// An incremental checkpoint: the dirty pages that, overlaid on the
/// snapshot chain at `epoch − 1`, produce the state at `epoch`.
#[derive(Clone)]
pub struct DeltaFile {
    /// Epoch this delta advances the chain to.
    pub epoch: u64,
    /// Re-imaged pages, sorted by id.
    pub pages: Vec<(PageId, Page)>,
}

impl DeltaFile {
    /// Canonical file name for the delta advancing to `epoch`.
    pub fn file_name(epoch: u64) -> String {
        format!("delta-{epoch:010}.db")
    }

    /// Canonical path of the delta advancing to `epoch` under `dir`.
    pub fn path_for(dir: &Path, epoch: u64) -> PathBuf {
        dir.join(Self::file_name(epoch))
    }

    /// Parses a canonical delta file name back to its epoch.
    pub fn epoch_of(name: &str) -> Option<u64> {
        let rest = name.strip_prefix("delta-")?.strip_suffix(".db")?;
        rest.parse().ok()
    }

    /// Serializes the delta (header + page images).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.pages.len() * (4 + PAGE_SIZE));
        out.extend_from_slice(&DELTA_MAGIC);
        out.extend_from_slice(&DELTA_VERSION.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&(self.pages.len() as u32).to_le_bytes());
        let hcrc = crc32(&out[..HEADER_LEN - 4]);
        out.extend_from_slice(&hcrc.to_le_bytes());
        for (id, page) in &self.pages {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(page.bytes());
        }
        out
    }

    /// Decodes and integrity-checks a serialized delta.
    pub fn decode(bytes: &[u8]) -> std::io::Result<DeltaFile> {
        let corrupt = |msg: &str| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("delta file: {msg}"))
        };
        let header = bytes.get(..HEADER_LEN).ok_or_else(|| corrupt("truncated header"))?;
        if header[..4] != DELTA_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if version != DELTA_VERSION {
            return Err(corrupt(&format!("unsupported version {version}")));
        }
        let epoch = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        let count = u32::from_le_bytes(header[16..20].try_into().expect("4 bytes")) as usize;
        let stored_crc = u32::from_le_bytes(header[20..24].try_into().expect("4 bytes"));
        if crc32(&header[..HEADER_LEN - 4]) != stored_crc {
            return Err(corrupt("header checksum mismatch"));
        }
        let body = &bytes[HEADER_LEN..];
        let entry = 4 + PAGE_SIZE;
        if body.len() != count * entry {
            return Err(corrupt(&format!(
                "body holds {} bytes, header promises {} pages",
                body.len(),
                count
            )));
        }
        let mut pages = Vec::with_capacity(count);
        for i in 0..count {
            let at = i * entry;
            let id = u32::from_le_bytes(body[at..at + 4].try_into().expect("4 bytes"));
            let image: [u8; PAGE_SIZE] =
                body[at + 4..at + entry].try_into().expect("PAGE_SIZE bytes");
            let page = Page::from_bytes(&image);
            if !page.checksum_ok() {
                return Err(corrupt(&format!("torn page {id} inside delta")));
            }
            pages.push((id, page));
        }
        Ok(DeltaFile { epoch, pages })
    }

    /// Writes the delta crash-atomically under `dir`: temp file → fsync →
    /// rename to the canonical name → directory fsync. Returns the final
    /// path.
    pub fn write_atomic(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let final_path = Self::path_for(dir, self.epoch);
        let tmp_path = dir.join(format!("{}.tmp", Self::file_name(self.epoch)));
        {
            let mut f =
                OpenOptions::new().write(true).create(true).truncate(true).open(&tmp_path)?;
            f.write_all(&self.encode())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp_path, &final_path)?;
        if let Ok(d) = File::open(dir) {
            d.sync_all()?;
        }
        Ok(final_path)
    }

    /// Reads and validates the delta at `path`.
    pub fn read(path: &Path) -> std::io::Result<DeltaFile> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        Self::decode(&bytes)
    }

    /// Lists the canonical delta files under `dir`, sorted by epoch.
    /// `.tmp` leftovers from a crashed checkpoint are ignored.
    pub fn list(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(epoch) = Self::epoch_of(name) {
                out.push((epoch, entry.path()));
            }
        }
        out.sort_by_key(|(e, _)| *e);
        Ok(out)
    }

    /// Deletes every delta file (and stale `.tmp`) under `dir` — a full
    /// checkpoint has subsumed the chain. Best-effort on the `.tmp`s.
    pub fn remove_all(dir: &Path) -> std::io::Result<usize> {
        let mut removed = 0;
        for (_, path) in Self::list(dir)? {
            std::fs::remove_file(&path)?;
            removed += 1;
        }
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            if let Some(name) = name.to_str() {
                if name.starts_with("delta-") && name.ends_with(".tmp") {
                    std::fs::remove_file(entry.path()).ok();
                }
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(epoch: u64) -> DeltaFile {
        let mut a = Page::new();
        a.insert(b"page-a").unwrap();
        a.seal();
        let mut b = Page::new();
        b.insert(b"page-b").unwrap();
        b.seal();
        DeltaFile { epoch, pages: vec![(0, a), (3, b)] }
    }

    fn tempdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("orion_delta_test").join(name);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn encode_decode_round_trip() {
        let d = sample(7);
        let back = DeltaFile::decode(&d.encode()).unwrap();
        assert_eq!(back.epoch, 7);
        assert_eq!(back.pages.len(), 2);
        assert_eq!(back.pages[0].0, 0);
        assert_eq!(back.pages[1].0, 3);
        assert_eq!(back.pages[1].1.get(0), Some(&b"page-b"[..]));
    }

    #[test]
    fn every_truncation_and_corruption_is_detected() {
        let bytes = sample(2).encode();
        for cut in 0..bytes.len() {
            assert!(DeltaFile::decode(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
        // Flip each header byte: must never decode to a *different* valid
        // delta silently (the header CRC catches it).
        for i in 0..HEADER_LEN {
            let mut b = bytes.clone();
            b[i] ^= 0xFF;
            assert!(DeltaFile::decode(&b).is_err(), "header byte {i} flip accepted");
        }
        // Flip a payload byte inside a page image: page seal catches it.
        let mut b = bytes.clone();
        let mid = HEADER_LEN + 4 + PAGE_SIZE / 2;
        b[mid] ^= 0xFF;
        assert!(DeltaFile::decode(&b).is_err());
    }

    #[test]
    fn atomic_write_list_read_remove() {
        let dir = tempdir("rw");
        sample(1).write_atomic(&dir).unwrap();
        sample(2).write_atomic(&dir).unwrap();
        // A stale tmp from a crashed checkpoint is invisible to list().
        std::fs::write(dir.join("delta-0000000003.db.tmp"), b"garbage").unwrap();
        let listed = DeltaFile::list(&dir).unwrap();
        assert_eq!(listed.iter().map(|(e, _)| *e).collect::<Vec<_>>(), vec![1, 2]);
        let d = DeltaFile::read(&listed[1].1).unwrap();
        assert_eq!(d.epoch, 2);
        assert_eq!(DeltaFile::remove_all(&dir).unwrap(), 2);
        assert!(DeltaFile::list(&dir).unwrap().is_empty());
        assert!(!dir.join("delta-0000000003.db.tmp").exists(), "tmp swept");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_name_round_trip() {
        assert_eq!(DeltaFile::file_name(42), "delta-0000000042.db");
        assert_eq!(DeltaFile::epoch_of("delta-0000000042.db"), Some(42));
        assert_eq!(DeltaFile::epoch_of("delta-junk.db"), None);
        assert_eq!(DeltaFile::epoch_of("snapshot.db"), None);
        assert_eq!(DeltaFile::epoch_of("delta-0000000042.db.tmp"), None);
    }
}
