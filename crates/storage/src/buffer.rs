//! A bounded LRU buffer pool over a [`PageStore`], with I/O accounting.
//!
//! The pool is the cost model for Figure 5: wider tuples (discrete-25 vs
//! histogram-5 vs symbolic pdfs) occupy more pages, overflow the pool
//! sooner, and incur more physical reads.

use crate::file::{IoStats, PageId, PageStore};
use crate::page::Page;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

struct Frame {
    page: Page,
    dirty: bool,
    /// Monotonic access stamp for LRU eviction.
    last_used: u64,
}

struct PoolInner<S: PageStore> {
    store: S,
    frames: HashMap<PageId, Frame>,
    capacity: usize,
    clock: u64,
}

/// A buffer pool caching up to `capacity` pages of a single store.
pub struct BufferPool<S: PageStore> {
    inner: Mutex<PoolInner<S>>,
    stats: Arc<IoStats>,
}

impl<S: PageStore> BufferPool<S> {
    /// Wraps `store` with a pool of `capacity` page frames (>= 1).
    pub fn new(store: S, capacity: usize) -> Self {
        assert!(capacity >= 1, "buffer pool needs >= 1 frame");
        BufferPool {
            inner: Mutex::new(PoolInner {
                store,
                frames: HashMap::with_capacity(capacity),
                capacity,
                clock: 0,
            }),
            stats: Arc::new(IoStats::default()),
        }
    }

    /// Handle to the pool's [`IoStats`] (orion-obs atomic counters):
    /// physical page reads/writes, cache hits/misses, and evictions. The
    /// `Arc` stays live across `reset()` calls, so callers can hold it for
    /// the lifetime of the pool and snapshot per measurement phase.
    pub fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    /// Number of allocated pages in the underlying store.
    pub fn page_count(&self) -> u32 {
        self.inner.lock().store.page_count()
    }

    /// Allocates a fresh page and caches it.
    pub fn allocate(&self) -> std::io::Result<PageId> {
        let mut g = self.inner.lock();
        let id = g.store.allocate()?;
        self.stats.physical_writes.inc();
        let stamp = Self::bump(&mut g);
        Self::make_room(&mut g, &self.stats)?;
        g.frames.insert(id, Frame { page: Page::new(), dirty: false, last_used: stamp });
        Ok(id)
    }

    fn bump(g: &mut PoolInner<S>) -> u64 {
        g.clock += 1;
        g.clock
    }

    fn make_room(g: &mut PoolInner<S>, stats: &IoStats) -> std::io::Result<()> {
        while g.frames.len() >= g.capacity {
            let victim = g
                .frames
                .iter()
                .min_by_key(|(_, f)| f.last_used)
                .map(|(&id, _)| id)
                .expect("non-empty frame table");
            let frame = g.frames.remove(&victim).expect("victim present");
            stats.evictions.inc();
            if frame.dirty {
                g.store.write_page(victim, &frame.page)?;
                stats.physical_writes.inc();
            }
        }
        Ok(())
    }

    /// Runs `f` with read access to page `id`, faulting it in if needed.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&Page) -> R) -> std::io::Result<R> {
        let mut g = self.inner.lock();
        let stamp = Self::bump(&mut g);
        if let Some(frame) = g.frames.get_mut(&id) {
            frame.last_used = stamp;
            self.stats.cache_hits.inc();
            return Ok(f(&frame.page));
        }
        self.stats.cache_misses.inc();
        Self::make_room(&mut g, &self.stats)?;
        let mut page = Page::new();
        g.store.read_page(id, &mut page)?;
        self.stats.physical_reads.inc();
        let r = f(&page);
        g.frames.insert(id, Frame { page, dirty: false, last_used: stamp });
        Ok(r)
    }

    /// Runs `f` with write access to page `id`, marking it dirty.
    pub fn with_page_mut<R>(
        &self,
        id: PageId,
        f: impl FnOnce(&mut Page) -> R,
    ) -> std::io::Result<R> {
        let mut g = self.inner.lock();
        let stamp = Self::bump(&mut g);
        if let Some(frame) = g.frames.get_mut(&id) {
            frame.last_used = stamp;
            frame.dirty = true;
            self.stats.cache_hits.inc();
            return Ok(f(&mut frame.page));
        }
        self.stats.cache_misses.inc();
        Self::make_room(&mut g, &self.stats)?;
        let mut page = Page::new();
        g.store.read_page(id, &mut page)?;
        self.stats.physical_reads.inc();
        let r = f(&mut page);
        g.frames.insert(id, Frame { page, dirty: true, last_used: stamp });
        Ok(r)
    }

    /// Writes all dirty frames back to the store.
    pub fn flush(&self) -> std::io::Result<()> {
        let mut g = self.inner.lock();
        let dirty: Vec<PageId> =
            g.frames.iter().filter(|(_, f)| f.dirty).map(|(&id, _)| id).collect();
        for id in dirty {
            let page = g.frames.get(&id).expect("frame present").page.clone();
            g.store.write_page(id, &page)?;
            g.frames.get_mut(&id).expect("frame present").dirty = false;
            self.stats.physical_writes.inc();
        }
        Ok(())
    }

    /// Drops every cached frame (flushing dirty ones), so subsequent reads
    /// hit the backend — used by benchmarks to measure cold scans.
    pub fn clear_cache(&self) -> std::io::Result<()> {
        self.flush()?;
        self.inner.lock().frames.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::MemStore;

    #[test]
    fn hit_and_miss_accounting() {
        let pool = BufferPool::new(MemStore::new(), 4);
        let id = pool.allocate().unwrap();
        pool.with_page_mut(id, |p| {
            p.insert(b"x").unwrap();
        })
        .unwrap();
        let snap = pool.stats().snapshot();
        assert_eq!(snap.physical_reads, 0, "allocate caches the page");
        pool.with_page(id, |p| assert!(p.get(0).is_some())).unwrap();
        let snap = pool.stats().snapshot();
        assert!(snap.cache_hits >= 2);
    }

    #[test]
    fn eviction_writes_dirty_pages() {
        let pool = BufferPool::new(MemStore::new(), 2);
        let ids: Vec<_> = (0..4).map(|_| pool.allocate().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            pool.with_page_mut(id, |p| {
                p.insert(format!("rec{i}").as_bytes()).unwrap();
            })
            .unwrap();
        }
        // Reading the first page again must fault it in with its data intact.
        pool.with_page(ids[0], |p| {
            assert_eq!(p.get(0), Some(&b"rec0"[..]));
        })
        .unwrap();
        let snap = pool.stats().snapshot();
        assert!(snap.physical_reads >= 1);
        assert!(snap.evictions >= 2, "pool of 2 held 4 pages");
        assert_eq!(snap.cache_misses, snap.physical_reads);
    }

    #[test]
    fn clear_cache_forces_cold_reads() {
        let pool = BufferPool::new(MemStore::new(), 8);
        let id = pool.allocate().unwrap();
        pool.with_page_mut(id, |p| {
            p.insert(b"cold").unwrap();
        })
        .unwrap();
        pool.clear_cache().unwrap();
        pool.stats().reset();
        pool.with_page(id, |p| {
            assert_eq!(p.get(0), Some(&b"cold"[..]));
        })
        .unwrap();
        let snap = pool.stats().snapshot();
        assert_eq!(snap.physical_reads, 1);
        assert_eq!(snap.cache_hits, 0);
        assert_eq!(snap.cache_misses, 1);
    }

    #[test]
    fn lru_keeps_hot_page() {
        let pool = BufferPool::new(MemStore::new(), 2);
        let a = pool.allocate().unwrap();
        let b = pool.allocate().unwrap();
        let c = pool.allocate().unwrap();
        let _ = b;
        // Touch `a` so `b` is the LRU victim when `c` was cached.
        pool.with_page(a, |_| ()).unwrap();
        pool.stats().reset();
        pool.with_page(a, |_| ()).unwrap();
        pool.with_page(c, |_| ()).unwrap();
        let snap = pool.stats().snapshot();
        assert_eq!(snap.physical_reads + snap.cache_hits, 2);
    }
}
