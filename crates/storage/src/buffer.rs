//! A bounded LRU buffer pool over a [`PageStore`], with I/O accounting and
//! integrity enforcement.
//!
//! The pool is the cost model for Figure 5: wider tuples (discrete-25 vs
//! histogram-5 vs symbolic pdfs) occupy more pages, overflow the pool
//! sooner, and incur more physical reads.
//!
//! It is also the integrity choke point: every page is [`Page::seal`]ed
//! (CRC32-stamped) immediately before write-back and verified when faulted
//! in. A failed verification surfaces as an `InvalidData` error carrying
//! [`ChecksumMismatch`] and bumps the `torn_pages` counter. A failed
//! dirty-page write **keeps the frame dirty and cached** — the pool never
//! drops unpersisted data on an I/O error; the caller may retry.

use crate::file::{IoStats, PageId, PageStore};
use crate::page::{ChecksumMismatch, Page};
use orion_obs::{Lane, Span, Tracer};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, OnceLock};

struct Frame {
    page: Page,
    dirty: bool,
    /// Monotonic access stamp for LRU eviction.
    last_used: u64,
}

struct PoolInner<S: PageStore> {
    store: S,
    frames: HashMap<PageId, Frame>,
    capacity: usize,
    clock: u64,
    /// Pages mutated (or allocated) since the last
    /// [`BufferPool::mark_checkpoint`] — the incremental-checkpoint
    /// working set. Unlike `Frame::dirty` this survives write-back and
    /// eviction: a page stays "checkpoint-dirty" until the next mark.
    ckpt_dirty: HashSet<PageId>,
}

/// A buffer pool caching up to `capacity` pages of a single store.
pub struct BufferPool<S: PageStore> {
    inner: Mutex<PoolInner<S>>,
    stats: Arc<IoStats>,
    /// This pool's trace lane, created lazily when tracing is on. Every
    /// span-opening path holds the `inner` mutex, so spans on the lane are
    /// serialized; per-instance so concurrent pools never share a lane.
    lane: OnceLock<Lane>,
}

impl<S: PageStore> BufferPool<S> {
    /// Wraps `store` with a pool of `capacity` page frames (>= 1).
    pub fn new(store: S, capacity: usize) -> Self {
        assert!(capacity >= 1, "buffer pool needs >= 1 frame");
        BufferPool {
            inner: Mutex::new(PoolInner {
                store,
                frames: HashMap::with_capacity(capacity),
                capacity,
                clock: 0,
                ckpt_dirty: HashSet::new(),
            }),
            stats: Arc::new(IoStats::default()),
            lane: OnceLock::new(),
        }
    }

    /// A span on this pool's lane, inert while tracing is off.
    fn span(&self, name: &'static str, page: Option<PageId>) -> Span {
        let t = Tracer::global();
        if !t.enabled() {
            return Span::noop();
        }
        let lane = self.lane.get_or_init(|| t.unique_lane("storage"));
        let mut s = lane.span(name, "storage");
        if let Some(id) = page {
            s.arg("page", u64::from(id));
        }
        s
    }

    /// Handle to the pool's [`IoStats`] (orion-obs atomic counters):
    /// physical page reads/writes, cache hits/misses, and evictions. The
    /// `Arc` stays live across `reset()` calls, so callers can hold it for
    /// the lifetime of the pool and snapshot per measurement phase.
    pub fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    /// Number of allocated pages in the underlying store.
    pub fn page_count(&self) -> u32 {
        self.inner.lock().store.page_count()
    }

    /// Allocates a fresh page and caches it.
    pub fn allocate(&self) -> std::io::Result<PageId> {
        let mut g = self.inner.lock();
        let id = g.store.allocate()?;
        self.stats.physical_writes.inc();
        g.ckpt_dirty.insert(id);
        let stamp = Self::bump(&mut g);
        self.make_room(&mut g)?;
        g.frames.insert(id, Frame { page: Page::new(), dirty: false, last_used: stamp });
        Ok(id)
    }

    fn bump(g: &mut PoolInner<S>) -> u64 {
        g.clock += 1;
        g.clock
    }

    fn make_room(&self, g: &mut PoolInner<S>) -> std::io::Result<()> {
        let stats = &self.stats;
        while g.frames.len() >= g.capacity {
            let Some(victim) = g.frames.iter().min_by_key(|(_, f)| f.last_used).map(|(&id, _)| id)
            else {
                break;
            };
            let Some(mut frame) = g.frames.remove(&victim) else { break };
            if frame.dirty {
                let _s = self.span("page.write_back", Some(victim));
                frame.page.seal();
                if let Err(e) = g.store.write_page(victim, &frame.page) {
                    // Keep the data: the frame goes back in, still dirty, so
                    // a later eviction (or flush) retries the write.
                    stats.write_errors.inc();
                    g.frames.insert(victim, frame);
                    return Err(e);
                }
                stats.physical_writes.inc();
            }
            stats.evictions.inc();
        }
        Ok(())
    }

    /// Verifies the seal of a page faulted in from the store.
    fn verify(stats: &IoStats, id: PageId, page: &Page) -> std::io::Result<()> {
        if page.checksum_ok() {
            return Ok(());
        }
        stats.torn_pages.inc();
        Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            ChecksumMismatch {
                page: id,
                stored: page.stored_checksum(),
                computed: page.compute_checksum(),
            },
        ))
    }

    /// Runs `f` with read access to page `id`, faulting it in if needed.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&Page) -> R) -> std::io::Result<R> {
        let mut g = self.inner.lock();
        let stamp = Self::bump(&mut g);
        if let Some(frame) = g.frames.get_mut(&id) {
            frame.last_used = stamp;
            self.stats.cache_hits.inc();
            return Ok(f(&frame.page));
        }
        self.stats.cache_misses.inc();
        let s = self.span("page.fault_in", Some(id));
        self.make_room(&mut g)?;
        let mut page = Page::new();
        g.store.read_page(id, &mut page)?;
        self.stats.physical_reads.inc();
        Self::verify(&self.stats, id, &page)?;
        drop(s);
        let r = f(&page);
        g.frames.insert(id, Frame { page, dirty: false, last_used: stamp });
        Ok(r)
    }

    /// Sequential bulk scan: visits every allocated page in id order,
    /// stopping early when `f` returns `false`.
    ///
    /// This is the scan-resistant access path used by the columnar batch
    /// executor. Cached frames are served from the pool (they may be newer
    /// than the on-disk image); uncached pages stream through one reusable
    /// scratch frame and **never enter the cache** — a large cold scan does
    /// no evictions, no LRU maintenance, and cannot wash the working set
    /// out of the pool. Misses still verify checksums and count as
    /// `cache_misses`/`physical_reads`; served frames count as
    /// `cache_hits` but do not bump the LRU clock (a scan touch is not a
    /// signal of reuse).
    pub fn scan_pages(&self, mut f: impl FnMut(PageId, &Page) -> bool) -> std::io::Result<()> {
        let mut g = self.inner.lock();
        let pages = g.store.page_count();
        let mut s = self.span("pool.scan", None);
        if s.is_recording() {
            s.arg("pages", u64::from(pages));
        }
        // Runs of uncached pages are fetched `SCAN_RUN` at a time through
        // one multi-page read (amortizing per-page syscall cost), reusing
        // this scratch window across the whole scan.
        const SCAN_RUN: u32 = 32;
        let mut scratch: Vec<Page> = Vec::new();
        let mut id = 0;
        while id < pages {
            if let Some(frame) = g.frames.get(&id) {
                self.stats.cache_hits.inc();
                if !f(id, &frame.page) {
                    return Ok(());
                }
                id += 1;
                continue;
            }
            let mut end = id + 1;
            while end < pages && end - id < SCAN_RUN && !g.frames.contains_key(&end) {
                end += 1;
            }
            let n = (end - id) as usize;
            if scratch.len() < n {
                scratch.resize_with(n, Page::new);
            }
            g.store.read_pages(id, &mut scratch[..n])?;
            self.stats.cache_misses.add(n as u64);
            self.stats.physical_reads.add(n as u64);
            for (k, page) in scratch[..n].iter().enumerate() {
                let pid = id + k as PageId;
                Self::verify(&self.stats, pid, page)?;
                if !f(pid, page) {
                    return Ok(());
                }
            }
            id = end;
        }
        Ok(())
    }

    /// Runs `f` with write access to page `id`, marking it dirty.
    pub fn with_page_mut<R>(
        &self,
        id: PageId,
        f: impl FnOnce(&mut Page) -> R,
    ) -> std::io::Result<R> {
        let mut g = self.inner.lock();
        let stamp = Self::bump(&mut g);
        g.ckpt_dirty.insert(id);
        if let Some(frame) = g.frames.get_mut(&id) {
            frame.last_used = stamp;
            frame.dirty = true;
            self.stats.cache_hits.inc();
            return Ok(f(&mut frame.page));
        }
        self.stats.cache_misses.inc();
        let s = self.span("page.fault_in", Some(id));
        self.make_room(&mut g)?;
        let mut page = Page::new();
        g.store.read_page(id, &mut page)?;
        self.stats.physical_reads.inc();
        Self::verify(&self.stats, id, &page)?;
        drop(s);
        let r = f(&mut page);
        g.frames.insert(id, Frame { page, dirty: true, last_used: stamp });
        Ok(r)
    }

    /// Starts a new checkpoint interval: pages touched from now on are the
    /// next [`BufferPool::dirty_pages_since_mark`] answer.
    pub fn mark_checkpoint(&self) {
        self.inner.lock().ckpt_dirty.clear();
    }

    /// Pages mutated or allocated since the last
    /// [`BufferPool::mark_checkpoint`] (all pages ever touched, if no mark
    /// was set), sorted ascending for deterministic delta files.
    pub fn dirty_pages_since_mark(&self) -> Vec<PageId> {
        let g = self.inner.lock();
        let mut pages: Vec<PageId> = g.ckpt_dirty.iter().copied().collect();
        pages.sort_unstable();
        pages
    }

    /// Writes all dirty frames back to the store. On a write error the
    /// failing frame — and every frame not yet visited — **stays dirty**,
    /// so no unpersisted data is lost and the flush can be retried.
    pub fn flush(&self) -> std::io::Result<()> {
        let mut g = self.inner.lock();
        let dirty: Vec<PageId> =
            g.frames.iter().filter(|(_, f)| f.dirty).map(|(&id, _)| id).collect();
        let mut s = self.span("pool.flush", None);
        if s.is_recording() {
            s.arg("dirty_pages", dirty.len() as u64);
        }
        for id in dirty {
            let Some(frame) = g.frames.get_mut(&id) else { continue };
            frame.page.seal();
            let page = frame.page.clone();
            if let Err(e) = g.store.write_page(id, &page) {
                self.stats.write_errors.inc();
                return Err(e);
            }
            if let Some(frame) = g.frames.get_mut(&id) {
                frame.dirty = false;
            }
            self.stats.physical_writes.inc();
        }
        Ok(())
    }

    /// Forces the underlying store to stable storage (fsync for file
    /// backends). Call after [`BufferPool::flush`] for durability.
    pub fn sync(&self) -> std::io::Result<()> {
        self.inner.lock().store.sync()
    }

    /// Drops every cached frame (flushing dirty ones), so subsequent reads
    /// hit the backend — used by benchmarks to measure cold scans.
    pub fn clear_cache(&self) -> std::io::Result<()> {
        self.flush()?;
        self.inner.lock().frames.clear();
        Ok(())
    }

    /// Flushes every dirty frame and consumes the pool, returning the
    /// underlying store — used by the incremental checkpointer to read raw
    /// page images after building a snapshot in memory.
    pub fn into_store(self) -> std::io::Result<S> {
        self.flush()?;
        Ok(self.inner.into_inner().store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::MemStore;

    #[test]
    fn hit_and_miss_accounting() {
        let pool = BufferPool::new(MemStore::new(), 4);
        let id = pool.allocate().unwrap();
        pool.with_page_mut(id, |p| {
            p.insert(b"x").unwrap();
        })
        .unwrap();
        let snap = pool.stats().snapshot();
        assert_eq!(snap.physical_reads, 0, "allocate caches the page");
        pool.with_page(id, |p| assert!(p.get(0).is_some())).unwrap();
        let snap = pool.stats().snapshot();
        assert!(snap.cache_hits >= 2);
    }

    #[test]
    fn eviction_writes_dirty_pages() {
        let pool = BufferPool::new(MemStore::new(), 2);
        let ids: Vec<_> = (0..4).map(|_| pool.allocate().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            pool.with_page_mut(id, |p| {
                p.insert(format!("rec{i}").as_bytes()).unwrap();
            })
            .unwrap();
        }
        // Reading the first page again must fault it in with its data intact.
        pool.with_page(ids[0], |p| {
            assert_eq!(p.get(0), Some(&b"rec0"[..]));
        })
        .unwrap();
        let snap = pool.stats().snapshot();
        assert!(snap.physical_reads >= 1);
        assert!(snap.evictions >= 2, "pool of 2 held 4 pages");
        assert_eq!(snap.cache_misses, snap.physical_reads);
    }

    #[test]
    fn clear_cache_forces_cold_reads() {
        let pool = BufferPool::new(MemStore::new(), 8);
        let id = pool.allocate().unwrap();
        pool.with_page_mut(id, |p| {
            p.insert(b"cold").unwrap();
        })
        .unwrap();
        pool.clear_cache().unwrap();
        pool.stats().reset();
        pool.with_page(id, |p| {
            assert_eq!(p.get(0), Some(&b"cold"[..]));
        })
        .unwrap();
        let snap = pool.stats().snapshot();
        assert_eq!(snap.physical_reads, 1);
        assert_eq!(snap.cache_hits, 0);
        assert_eq!(snap.cache_misses, 1);
    }

    #[test]
    fn scan_pages_serves_dirty_frames_and_skips_cache() {
        // Pool of 2 frames over 4 pages; page 3 is dirty in cache (newer
        // than disk). The bulk scan must see the cached version, read the
        // rest from the store, and leave the cache untouched.
        let pool = BufferPool::new(MemStore::new(), 2);
        let ids: Vec<_> = (0..4).map(|_| pool.allocate().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            pool.with_page_mut(id, |p| {
                p.insert(format!("rec{i}").as_bytes()).unwrap();
            })
            .unwrap();
        }
        // Flush disk copies, then mutate page 3 in cache only.
        pool.flush().unwrap();
        pool.with_page_mut(3, |p| {
            p.insert(b"newer").unwrap();
        })
        .unwrap();
        pool.stats().reset();
        let mut seen: Vec<(PageId, usize)> = Vec::new();
        pool.scan_pages(|id, p| {
            seen.push((id, (0..p.slot_count()).filter(|&s| p.get(s).is_some()).count()));
            if id == 3 {
                assert_eq!(p.get(1), Some(&b"newer"[..]), "cached dirty frame served");
            }
            true
        })
        .unwrap();
        assert_eq!(seen.len(), 4);
        assert_eq!(seen[3].1, 2, "dirty in-cache mutation visible");
        let snap = pool.stats().snapshot();
        assert_eq!(snap.evictions, 0, "bulk scan never evicts");
        assert_eq!(snap.cache_misses, snap.physical_reads);
        assert!(snap.cache_hits >= 1, "cached frames served from the pool");
        // The scratch reads did not displace the cached frames.
        assert_eq!(pool.inner.lock().frames.len(), 2);
    }

    #[test]
    fn scan_pages_early_stop() {
        let pool = BufferPool::new(MemStore::new(), 2);
        for _ in 0..4 {
            pool.allocate().unwrap();
        }
        pool.clear_cache().unwrap();
        let mut n = 0;
        pool.scan_pages(|_, _| {
            n += 1;
            n < 2
        })
        .unwrap();
        assert_eq!(n, 2);
    }

    #[test]
    fn scan_pages_detects_torn_pages() {
        let mut store = MemStore::new();
        let id = store.allocate().unwrap();
        let mut page = Page::new();
        page.insert(b"torn").unwrap();
        page.seal();
        page.bytes_mut()[4000] ^= 0xFF;
        store.write_page(id, &page).unwrap();
        let pool = BufferPool::new(store, 4);
        let err = pool.scan_pages(|_, _| true).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert_eq!(pool.stats().snapshot().torn_pages, 1);
    }

    /// A store whose next `fail_writes` page writes return an error —
    /// always-on coverage for the pool's no-data-loss contract (the full
    /// `FaultyStore` lives behind the `failpoints` feature).
    struct FlakyStore {
        inner: MemStore,
        fail_writes: u32,
    }

    impl PageStore for FlakyStore {
        fn page_count(&self) -> u32 {
            self.inner.page_count()
        }

        fn read_page(&mut self, id: PageId, page: &mut Page) -> std::io::Result<()> {
            self.inner.read_page(id, page)
        }

        fn write_page(&mut self, id: PageId, page: &Page) -> std::io::Result<()> {
            if self.fail_writes > 0 {
                self.fail_writes -= 1;
                return Err(std::io::Error::other("injected write failure"));
            }
            self.inner.write_page(id, page)
        }

        fn allocate(&mut self) -> std::io::Result<PageId> {
            self.inner.allocate()
        }
    }

    #[test]
    fn failed_eviction_keeps_frame_dirty_and_retries() {
        let pool = BufferPool::new(FlakyStore { inner: MemStore::new(), fail_writes: 0 }, 2);
        let a = pool.allocate().unwrap();
        let b = pool.allocate().unwrap();
        pool.with_page_mut(a, |p| {
            p.insert(b"keep me").unwrap();
        })
        .unwrap();
        pool.with_page_mut(b, |p| {
            p.insert(b"and me").unwrap();
        })
        .unwrap();
        // Arm one write failure, then force an eviction: it must error
        // without losing the victim's data.
        pool.inner.lock().store.fail_writes = 1;
        assert!(pool.allocate().is_err(), "eviction write fails");
        let snap = pool.stats().snapshot();
        assert_eq!(snap.write_errors, 1);
        // The fault has cleared; the retry evicts successfully and both
        // records survive — nothing was dropped during the failed attempt.
        let c = pool.allocate().unwrap();
        let _ = c;
        pool.with_page(a, |p| assert_eq!(p.get(0), Some(&b"keep me"[..]))).unwrap();
        pool.with_page(b, |p| assert_eq!(p.get(0), Some(&b"and me"[..]))).unwrap();
        let snap = pool.stats().snapshot();
        assert_eq!(snap.write_errors, 1);
        // Every counted eviction corresponds to a completed write-back or a
        // clean drop; the failed attempt counted only as a write error.
        assert!(snap.evictions >= 1);
    }

    #[test]
    fn failed_flush_keeps_pages_dirty_for_retry() {
        let pool = BufferPool::new(FlakyStore { inner: MemStore::new(), fail_writes: 0 }, 4);
        let id = pool.allocate().unwrap();
        pool.with_page_mut(id, |p| {
            p.insert(b"durable?").unwrap();
        })
        .unwrap();
        pool.inner.lock().store.fail_writes = 1;
        assert!(pool.flush().is_err());
        assert_eq!(pool.stats().snapshot().write_errors, 1);
        // Retry after the fault clears: the frame was still dirty, so the
        // record reaches the store this time.
        pool.flush().unwrap();
        pool.clear_cache().unwrap();
        pool.with_page(id, |p| assert_eq!(p.get(0), Some(&b"durable?"[..]))).unwrap();
    }

    #[test]
    fn torn_page_read_is_detected_and_counted() {
        let mut store = MemStore::new();
        let id = store.allocate().unwrap();
        let mut page = Page::new();
        page.insert(b"will be torn").unwrap();
        page.seal();
        // Corrupt one byte after sealing — a torn/bit-rotted page image.
        page.bytes_mut()[4000] ^= 0xFF;
        store.write_page(id, &page).unwrap();
        let pool = BufferPool::new(store, 4);
        let err = pool.with_page(id, |_| ()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.get_ref().is_some_and(|r| r.downcast_ref::<ChecksumMismatch>().is_some()));
        assert_eq!(pool.stats().snapshot().torn_pages, 1);
    }

    #[test]
    fn lru_keeps_hot_page() {
        let pool = BufferPool::new(MemStore::new(), 2);
        let a = pool.allocate().unwrap();
        let b = pool.allocate().unwrap();
        let c = pool.allocate().unwrap();
        let _ = b;
        // Touch `a` so `b` is the LRU victim when `c` was cached.
        pool.with_page(a, |_| ()).unwrap();
        pool.stats().reset();
        pool.with_page(a, |_| ()).unwrap();
        pool.with_page(c, |_| ()).unwrap();
        let snap = pool.stats().snapshot();
        assert_eq!(snap.physical_reads + snap.cache_hits, 2);
    }
}
