//! A page-backed, bulk-loaded B+tree over `f64` keys.
//!
//! Secondary indexes (certain/expected-value keys and per-tuple cdf-summary
//! keys, see `orion-core`'s `pindex` module) are stored as static B+trees:
//! the key set is known at build time, so the tree is packed left-to-right
//! into slotted pages behind a [`BufferPool`] — leaves first, then internal
//! levels bottom-up until a single root remains. There is no insert/delete
//! path: index maintenance is invalidate-and-rebuild (the catalog tracks a
//! staleness epoch per table), which keeps the on-page layout deterministic
//! — two builds over the same entries produce byte-identical pages.
//!
//! Leaves occupy pages `0..leaf_pages` in key order, so the leaf chain is
//! implicit (the right sibling of leaf `p` is `p + 1`); internal levels are
//! packed after the leaves, ending at the root. Every entry is `8` key
//! bytes (little-endian `f64` bits) followed by a fixed-width payload
//! chosen at build time. Keys must be sorted ascending and NaN-free;
//! duplicate keys are allowed and kept in input order.

use crate::buffer::BufferPool;
use crate::file::{MemStore, PageId, PageStore};
use std::io;

/// Leaf page marker (slot 0 header byte).
const TAG_LEAF: u8 = 1;
/// Internal page marker (slot 0 header byte).
const TAG_INTERNAL: u8 = 2;

/// A static B+tree over `f64` keys with fixed-width payloads, packed into
/// pages of a [`BufferPool`].
pub struct BTree<S: PageStore> {
    pool: BufferPool<S>,
    root: PageId,
    /// Leaves are pages `0..leaf_pages`, in key order.
    leaf_pages: u32,
    /// Bytes per payload (every entry is `8 + payload_len` bytes).
    payload_len: usize,
    len: usize,
}

impl BTree<MemStore> {
    /// Bulk-loads a tree over in-memory pages. `entries` must be sorted by
    /// key ascending (ties keep input order) and every payload must be
    /// exactly `payload_len` bytes.
    pub fn build(entries: &[(f64, Vec<u8>)], payload_len: usize) -> io::Result<Self> {
        let pool = BufferPool::new(MemStore::new(), 64);
        Self::build_in(pool, entries, payload_len)
    }
}

impl<S: PageStore> BTree<S> {
    /// Bulk-loads a tree into `pool` (which must be empty).
    pub fn build_in(
        pool: BufferPool<S>,
        entries: &[(f64, Vec<u8>)],
        payload_len: usize,
    ) -> io::Result<Self> {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 <= w[1].0),
            "btree bulk load requires sorted keys"
        );
        let entry_len = 8 + payload_len;
        let mut buf = Vec::with_capacity(entry_len);

        // Leaf level: pack entries left-to-right, one page at a time.
        let mut level: Vec<(f64, PageId)> = Vec::new(); // (first key, page)
        let mut page = pool.allocate()?;
        pool.with_page_mut(page, |p| p.insert(&[TAG_LEAF]))?;
        let mut first_key: Option<f64> = None;
        for (key, payload) in entries {
            debug_assert_eq!(payload.len(), payload_len, "fixed-width payloads");
            buf.clear();
            buf.extend_from_slice(&key.to_bits().to_le_bytes());
            buf.extend_from_slice(payload);
            let fits = pool.with_page_mut(page, |p| p.insert(&buf).is_some())?;
            if !fits {
                level.push((first_key.expect("non-empty page has a first key"), page));
                page = pool.allocate()?;
                first_key = None;
                pool.with_page_mut(page, |p| {
                    p.insert(&[TAG_LEAF]);
                    p.insert(&buf).expect("fresh page fits one entry");
                })?;
            }
            if first_key.is_none() {
                first_key = Some(*key);
            }
        }
        level.push((first_key.unwrap_or(f64::NEG_INFINITY), page));
        let leaf_pages = pool.page_count();

        // Internal levels: (first key, child page) routing entries, packed
        // the same way, until one page remains.
        while level.len() > 1 {
            let mut parent_level: Vec<(f64, PageId)> = Vec::new();
            let mut page = pool.allocate()?;
            pool.with_page_mut(page, |p| p.insert(&[TAG_INTERNAL]))?;
            let mut first_key: Option<f64> = None;
            for (key, child) in &level {
                buf.clear();
                buf.extend_from_slice(&key.to_bits().to_le_bytes());
                buf.extend_from_slice(&child.to_le_bytes());
                let fits = pool.with_page_mut(page, |p| p.insert(&buf).is_some())?;
                if !fits {
                    parent_level.push((first_key.expect("non-empty internal page"), page));
                    page = pool.allocate()?;
                    first_key = None;
                    pool.with_page_mut(page, |p| {
                        p.insert(&[TAG_INTERNAL]);
                        p.insert(&buf).expect("fresh page fits one entry");
                    })?;
                }
                if first_key.is_none() {
                    first_key = Some(*key);
                }
            }
            parent_level.push((first_key.unwrap_or(f64::NEG_INFINITY), page));
            level = parent_level;
        }

        Ok(BTree { pool, root: level[0].1, leaf_pages, payload_len, len: entries.len() })
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pages occupied by the tree (leaves + internal levels).
    pub fn page_count(&self) -> u32 {
        self.pool.page_count()
    }

    /// I/O counters of the backing pool (probes fault pages in through it).
    pub fn pool(&self) -> &BufferPool<S> {
        &self.pool
    }

    /// Visits every entry with `lo <= key <= hi` in key order, calling
    /// `visit(key, payload)`. Returns the number of entries visited.
    pub fn range(&self, lo: f64, hi: f64, mut visit: impl FnMut(f64, &[u8])) -> io::Result<usize> {
        if lo > hi || self.len == 0 {
            return Ok(0);
        }
        // Descend to the leaf that may hold `lo`: at each internal page,
        // take the last child whose first key is <= lo (the first child
        // when every separator exceeds lo — smaller keys can only be
        // leftmost).
        let mut page = self.root;
        while page >= self.leaf_pages {
            page = self.pool.with_page(page, |p| {
                let header = p.get(0).ok_or_else(bad_page)?;
                if header != [TAG_INTERNAL] {
                    return Err(bad_page());
                }
                let mut chosen: Option<PageId> = None;
                let mut slot = 1;
                while let Some(rec) = p.get(slot) {
                    let (key, child) = parse_route(rec)?;
                    if chosen.is_none() || key <= lo {
                        chosen = Some(child);
                    }
                    if key > lo {
                        break;
                    }
                    slot += 1;
                }
                chosen.ok_or_else(bad_page)
            })??;
        }

        // Scan leaves rightward until a key exceeds `hi`.
        let mut visited = 0usize;
        loop {
            let done = self.pool.with_page(page, |p| {
                let header = p.get(0).ok_or_else(bad_page)?;
                if header != [TAG_LEAF] {
                    return Err(bad_page());
                }
                let mut slot = 1;
                while let Some(rec) = p.get(slot) {
                    if rec.len() != 8 + self.payload_len {
                        return Err(bad_page());
                    }
                    let key = f64::from_bits(u64::from_le_bytes(
                        rec[..8].try_into().expect("len checked"),
                    ));
                    if key > hi {
                        return Ok(true);
                    }
                    if key >= lo {
                        visit(key, &rec[8..]);
                        visited += 1;
                    }
                    slot += 1;
                }
                Ok(false)
            })??;
            page += 1;
            if done || page >= self.leaf_pages {
                return Ok(visited);
            }
        }
    }
}

fn bad_page() -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, "malformed btree page")
}

fn parse_route(rec: &[u8]) -> io::Result<(f64, PageId)> {
    if rec.len() != 12 {
        return Err(bad_page());
    }
    let key = f64::from_bits(u64::from_le_bytes(rec[..8].try_into().expect("len checked")));
    let child = u32::from_le_bytes(rec[8..12].try_into().expect("len checked"));
    Ok((key, child))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(keys: &[f64]) -> BTree<MemStore> {
        let entries: Vec<(f64, Vec<u8>)> =
            keys.iter().enumerate().map(|(i, &k)| (k, (i as u32).to_le_bytes().to_vec())).collect();
        BTree::build(&entries, 4).unwrap()
    }

    fn collect(t: &BTree<MemStore>, lo: f64, hi: f64) -> Vec<(f64, u32)> {
        let mut out = Vec::new();
        t.range(lo, hi, |k, payload| {
            out.push((k, u32::from_le_bytes(payload.try_into().unwrap())));
        })
        .unwrap();
        out
    }

    #[test]
    fn empty_and_single() {
        let t = build(&[]);
        assert!(t.is_empty());
        assert_eq!(collect(&t, f64::NEG_INFINITY, f64::INFINITY), vec![]);
        let t = build(&[3.5]);
        assert_eq!(collect(&t, 0.0, 10.0), vec![(3.5, 0)]);
        assert_eq!(collect(&t, 4.0, 10.0), vec![]);
    }

    #[test]
    fn range_matches_linear_scan_across_many_pages() {
        // Enough entries to force multiple leaves and an internal level.
        let keys: Vec<f64> = (0..20_000).map(|i| (i as f64) * 0.5).collect();
        let t = build(&keys);
        assert!(t.page_count() > 2, "must span pages: {}", t.page_count());
        for (lo, hi) in [(0.0, 10.0), (4999.75, 5001.0), (9999.0, 10_001.0), (-5.0, -1.0)] {
            let got = collect(&t, lo, hi);
            let want: Vec<(f64, u32)> = keys
                .iter()
                .enumerate()
                .filter(|(_, &k)| k >= lo && k <= hi)
                .map(|(i, &k)| (k, i as u32))
                .collect();
            assert_eq!(got, want, "range [{lo}, {hi}]");
        }
        // Full range returns everything in key order.
        assert_eq!(collect(&t, f64::NEG_INFINITY, f64::INFINITY).len(), keys.len());
    }

    #[test]
    fn duplicate_keys_keep_input_order() {
        let entries: Vec<(f64, Vec<u8>)> =
            (0..500u32).map(|i| (1.0, i.to_le_bytes().to_vec())).collect();
        let t = BTree::build(&entries, 4).unwrap();
        let got = collect(&t, 1.0, 1.0);
        assert_eq!(got.len(), 500);
        assert!(got.windows(2).all(|w| w[0].1 < w[1].1), "payload order preserved");
    }

    #[test]
    fn deterministic_page_images() {
        let keys: Vec<f64> = (0..5_000).map(|i| i as f64).collect();
        let a = build(&keys);
        let b = build(&keys);
        assert_eq!(a.page_count(), b.page_count());
        for id in 0..a.page_count() {
            let pa = a.pool().with_page(id, |p| p.get(1).map(|r| r.to_vec())).unwrap();
            let pb = b.pool().with_page(id, |p| p.get(1).map(|r| r.to_vec())).unwrap();
            assert_eq!(pa, pb, "page {id} diverged");
        }
    }
}
