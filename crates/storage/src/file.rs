//! Page-granular storage backends: on-disk files and in-memory stores.

use crate::page::{Page, PAGE_SIZE};
use orion_obs::{json, Counter};
use std::fs::{File, OpenOptions};
#[cfg(not(unix))]
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Identifies a page within one storage unit.
pub type PageId = u32;

/// Physical I/O counters, shared by backends and the buffer pool.
#[derive(Debug, Default)]
pub struct IoStats {
    /// Pages read from the backend (buffer-pool misses).
    pub physical_reads: Counter,
    /// Pages written to the backend (evictions + flushes).
    pub physical_writes: Counter,
    /// Page requests served from the buffer pool.
    pub cache_hits: Counter,
    /// Page requests that missed the pool and faulted a page in.
    pub cache_misses: Counter,
    /// Frames evicted from the pool to make room.
    pub evictions: Counter,
    /// Pages whose CRC32 seal failed verification on read (torn writes).
    pub torn_pages: Counter,
    /// Page writes that returned an I/O error (the frame stays dirty).
    pub write_errors: Counter,
    /// Pages copied into an incremental checkpoint delta file.
    pub ckpt_pages_copied: Counter,
    /// Clean pages an incremental checkpoint skipped (the full-checkpoint
    /// cost it avoided).
    pub ckpt_pages_skipped: Counter,
}

impl IoStats {
    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.physical_reads.reset();
        self.physical_writes.reset();
        self.cache_hits.reset();
        self.cache_misses.reset();
        self.evictions.reset();
        self.torn_pages.reset();
        self.write_errors.reset();
        self.ckpt_pages_copied.reset();
        self.ckpt_pages_skipped.reset();
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            physical_reads: self.physical_reads.get(),
            physical_writes: self.physical_writes.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            evictions: self.evictions.get(),
            torn_pages: self.torn_pages.get(),
            write_errors: self.write_errors.get(),
            ckpt_pages_copied: self.ckpt_pages_copied.get(),
            ckpt_pages_skipped: self.ckpt_pages_skipped.get(),
        }
    }
}

/// Plain-data copy of [`IoStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    pub physical_reads: u64,
    pub physical_writes: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub evictions: u64,
    pub torn_pages: u64,
    pub write_errors: u64,
    pub ckpt_pages_copied: u64,
    pub ckpt_pages_skipped: u64,
}

impl IoSnapshot {
    /// JSON form with one field per counter (for the bench exporters).
    pub fn to_json(&self) -> json::Value {
        json::Value::object()
            .with("physical_reads", self.physical_reads)
            .with("physical_writes", self.physical_writes)
            .with("cache_hits", self.cache_hits)
            .with("cache_misses", self.cache_misses)
            .with("evictions", self.evictions)
            .with("torn_pages", self.torn_pages)
            .with("write_errors", self.write_errors)
            .with("ckpt_pages_copied", self.ckpt_pages_copied)
            .with("ckpt_pages_skipped", self.ckpt_pages_skipped)
    }
}

/// A backend that stores fixed-size pages addressed by [`PageId`].
///
/// Pages handed to `write_page` are expected to carry a valid CRC32 seal
/// (the buffer pool stamps one before every write-back); `read_page`
/// returns raw bytes and leaves verification to the caller.
pub trait PageStore: Send {
    /// Number of allocated pages.
    fn page_count(&self) -> u32;
    /// Reads page `id` into `page`.
    fn read_page(&mut self, id: PageId, page: &mut Page) -> std::io::Result<()>;
    /// Reads the consecutive run `first .. first + out.len()` of allocated
    /// pages, one per element of `out`. Backends with positional I/O serve
    /// the whole run with a single read (the bulk-scan fast path); the
    /// default loops [`PageStore::read_page`].
    fn read_pages(&mut self, first: PageId, out: &mut [Page]) -> std::io::Result<()> {
        for (k, page) in out.iter_mut().enumerate() {
            self.read_page(first + k as PageId, page)?;
        }
        Ok(())
    }
    /// Writes `page` at `id` (which must be allocated).
    fn write_page(&mut self, id: PageId, page: &Page) -> std::io::Result<()>;
    /// Allocates a fresh zeroed page, returning its id.
    fn allocate(&mut self) -> std::io::Result<PageId>;
    /// Forces previously written pages to stable storage (fsync). In-memory
    /// backends are durable-by-definition, so the default is a no-op.
    fn sync(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// An on-disk page store backed by a single file.
pub struct FileStore {
    file: File,
    pages: u32,
    /// Reusable flat buffer for multi-page run reads (`read_pages`).
    scratch: Vec<u8>,
}

impl FileStore {
    /// Creates (truncating) a page file at `path`.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        Ok(FileStore { file, pages: 0, scratch: Vec::new() })
    }

    /// Opens an existing page file.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        Ok(FileStore { file, pages: (len / PAGE_SIZE as u64) as u32, scratch: Vec::new() })
    }
}

impl PageStore for FileStore {
    fn page_count(&self) -> u32 {
        self.pages
    }

    /// Reads page `id` **into the caller's buffer** (positional read on
    /// unix: one syscall, no seek, no intermediate allocation — the
    /// buffer-pool fault path and the bulk scan's scratch frame both reuse
    /// one `Page`). On error the buffer contents are unspecified; callers
    /// discard the page.
    fn read_page(&mut self, id: PageId, page: &mut Page) -> std::io::Result<()> {
        let offset = id as u64 * PAGE_SIZE as u64;
        // A short read of an *allocated* page means the file shrank under
        // us — a torn/lost write of the tail page. Report it as integrity
        // failure (`InvalidData`, like a checksum mismatch) so the engine
        // classifies it as corruption, not as a bare EOF.
        let torn = |e: std::io::Error| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("torn page {id}: short read of an allocated page"),
                )
            } else {
                e
            }
        };
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(page.bytes_mut(), offset).map_err(torn)
        }
        #[cfg(not(unix))]
        {
            self.file.seek(SeekFrom::Start(offset))?;
            self.file.read_exact(page.bytes_mut()).map_err(torn)
        }
    }

    /// Serves a whole run with **one** positional read into a reusable flat
    /// buffer, then splits it into the callers' pages — the bulk scan's way
    /// of amortizing syscall cost over dozens of pages. A short read falls
    /// back to the per-page loop so the torn-page error names the exact
    /// page, same as single reads.
    #[cfg(unix)]
    fn read_pages(&mut self, first: PageId, out: &mut [Page]) -> std::io::Result<()> {
        use std::os::unix::fs::FileExt;
        if out.len() < 2 {
            return match out.first_mut() {
                Some(page) => self.read_page(first, page),
                None => Ok(()),
            };
        }
        let bytes = out.len() * PAGE_SIZE;
        self.scratch.resize(bytes, 0);
        let offset = first as u64 * PAGE_SIZE as u64;
        match self.file.read_exact_at(&mut self.scratch[..bytes], offset) {
            Ok(()) => {
                for (page, chunk) in out.iter_mut().zip(self.scratch.chunks_exact(PAGE_SIZE)) {
                    page.bytes_mut().copy_from_slice(chunk);
                }
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                for (k, page) in out.iter_mut().enumerate() {
                    self.read_page(first + k as PageId, page)?;
                }
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    fn write_page(&mut self, id: PageId, page: &Page) -> std::io::Result<()> {
        let offset = id as u64 * PAGE_SIZE as u64;
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.write_all_at(page.bytes(), offset)
        }
        #[cfg(not(unix))]
        {
            self.file.seek(SeekFrom::Start(offset))?;
            self.file.write_all(page.bytes())
        }
    }

    fn allocate(&mut self) -> std::io::Result<PageId> {
        let id = self.pages;
        let mut fresh = Page::new();
        fresh.seal();
        self.write_page(id, &fresh)?;
        self.pages += 1;
        Ok(id)
    }

    fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_all()
    }
}

/// An in-memory page store (tests and small catalogs).
#[derive(Default)]
pub struct MemStore {
    pages: Vec<Page>,
}

impl MemStore {
    /// An empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl PageStore for MemStore {
    fn page_count(&self) -> u32 {
        self.pages.len() as u32
    }

    fn read_page(&mut self, id: PageId, page: &mut Page) -> std::io::Result<()> {
        match self.pages.get(id as usize) {
            Some(p) => {
                // Fill the caller's buffer in place (no per-read allocation),
                // mirroring the `FileStore` positional-read contract.
                page.bytes_mut().copy_from_slice(p.bytes());
                Ok(())
            }
            None => Err(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("page {id} not allocated"),
            )),
        }
    }

    fn write_page(&mut self, id: PageId, page: &Page) -> std::io::Result<()> {
        match self.pages.get_mut(id as usize) {
            Some(p) => {
                *p = page.clone();
                Ok(())
            }
            None => Err(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("page {id} not allocated"),
            )),
        }
    }

    fn allocate(&mut self) -> std::io::Result<PageId> {
        let mut fresh = Page::new();
        fresh.seal();
        self.pages.push(fresh);
        Ok(self.pages.len() as u32 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_store_round_trip() {
        let mut s = MemStore::new();
        let id = s.allocate().unwrap();
        let mut p = Page::new();
        p.insert(b"record").unwrap();
        s.write_page(id, &p).unwrap();
        let mut q = Page::new();
        s.read_page(id, &mut q).unwrap();
        assert_eq!(q.get(0), Some(&b"record"[..]));
        assert_eq!(s.page_count(), 1);
        assert!(s.read_page(9, &mut q).is_err());
        assert!(s.write_page(9, &p).is_err());
    }

    #[test]
    fn file_store_round_trip() {
        let dir = std::env::temp_dir().join("orion_storage_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.dat");
        let mut s = FileStore::create(&path).unwrap();
        let a = s.allocate().unwrap();
        let b = s.allocate().unwrap();
        assert_eq!((a, b), (0, 1));
        let mut p = Page::new();
        p.insert(b"on disk").unwrap();
        s.write_page(b, &p).unwrap();
        drop(s);
        let mut s = FileStore::open(&path).unwrap();
        assert_eq!(s.page_count(), 2);
        let mut q = Page::new();
        s.read_page(b, &mut q).unwrap();
        assert_eq!(q.get(0), Some(&b"on disk"[..]));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_pages_matches_single_reads() {
        let dir = std::env::temp_dir().join("orion_storage_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("runs.dat");
        let mut s = FileStore::create(&path).unwrap();
        for i in 0..7u8 {
            let id = s.allocate().unwrap();
            let mut p = Page::new();
            p.insert(&[i; 16]).unwrap();
            s.write_page(id, &p).unwrap();
        }
        let mut run = vec![Page::new(); 5];
        s.read_pages(1, &mut run).unwrap();
        for (k, got) in run.iter().enumerate() {
            let mut single = Page::new();
            s.read_page(1 + k as PageId, &mut single).unwrap();
            assert_eq!(got.bytes()[..], single.bytes()[..], "page {}", 1 + k);
        }
        // An empty run and a one-page run are served too.
        s.read_pages(0, &mut []).unwrap();
        s.read_pages(6, &mut run[..1]).unwrap();
        assert_eq!(run[0].get(0), Some(&[6u8; 16][..]));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_pages_past_eof_names_the_torn_page() {
        let dir = std::env::temp_dir().join("orion_storage_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("runs_torn.dat");
        let mut s = FileStore::create(&path).unwrap();
        for _ in 0..4 {
            s.allocate().unwrap();
        }
        s.sync().unwrap();
        // The file loses its last page and a half behind the store's back.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(2 * PAGE_SIZE as u64 + PAGE_SIZE as u64 / 2).unwrap();
        drop(f);
        let mut run = vec![Page::new(); 4];
        let err = s.read_pages(0, &mut run).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("torn page 2"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shrunk_file_read_reports_torn_page() {
        let dir = std::env::temp_dir().join("orion_storage_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shrunk.dat");
        let mut s = FileStore::create(&path).unwrap();
        s.allocate().unwrap();
        s.allocate().unwrap();
        s.sync().unwrap();
        // The file loses half its tail page behind the store's back.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(PAGE_SIZE as u64 + PAGE_SIZE as u64 / 2).unwrap();
        drop(f);
        let mut p = Page::new();
        s.read_page(0, &mut p).unwrap();
        let err = s.read_page(1, &mut p).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("torn page 1"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn io_stats_snapshot_and_reset() {
        let st = IoStats::default();
        st.physical_reads.add(3);
        st.cache_hits.add(5);
        st.cache_misses.add(2);
        st.evictions.inc();
        let snap = st.snapshot();
        assert_eq!(snap.physical_reads, 3);
        assert_eq!(snap.cache_hits, 5);
        assert_eq!(snap.cache_misses, 2);
        assert_eq!(snap.evictions, 1);
        st.reset();
        assert_eq!(st.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn io_snapshot_json_lists_every_counter() {
        let snap =
            IoSnapshot { physical_reads: 1, evictions: 4, torn_pages: 2, ..Default::default() };
        let text = snap.to_json().to_string_compact();
        assert!(text.contains("\"physical_reads\":1"));
        assert!(text.contains("\"evictions\":4"));
        assert!(text.contains("\"cache_misses\":0"));
        assert!(text.contains("\"torn_pages\":2"));
        assert!(text.contains("\"write_errors\":0"));
        assert!(text.contains("\"ckpt_pages_copied\":0"));
        assert!(text.contains("\"ckpt_pages_skipped\":0"));
    }
}
