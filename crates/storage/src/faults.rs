//! Deterministic fault injection for crash testing (`failpoints` feature).
//!
//! [`FaultyStore`] wraps any [`PageStore`] and injects faults from a
//! [`FaultPlan`] — a deterministic schedule keyed on the store's write and
//! read operation indices. Three fault shapes cover the failure modes the
//! durability layer must survive:
//!
//! * **`FailWrite`** — the write returns an I/O error and nothing reaches
//!   the inner store (a full device error).
//! * **`TornWrite`** — only a prefix of the page reaches the inner store;
//!   the tail is replaced with garbage, exactly what a power cut mid-write
//!   leaves behind. The page's CRC32 seal no longer matches, so a later
//!   read must detect it.
//! * **`BitFlipRead`** — the page is read intact but one bit is flipped on
//!   the way back (media bit rot). Again the seal catches it.
//!
//! After an injected *write* fault the store optionally **halts**: every
//! subsequent operation fails, simulating the process being killed at the
//! fault point. A crash-matrix harness iterates fault points, runs the
//! workload until the injected kill, then reopens the underlying store
//! cleanly and asserts recovery invariants.

use crate::file::{PageId, PageStore};
use crate::page::{Page, PAGE_SIZE};
use orion_obs::{json, Counter};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The write errors; the inner store is untouched.
    FailWrite,
    /// Only the first `keep` bytes of the page reach the inner store; the
    /// rest becomes garbage.
    TornWrite {
        /// Bytes of the page that survive.
        keep: usize,
    },
    /// Bit `bit` (0-based over the whole page) flips on read.
    BitFlipRead {
        /// Absolute bit index within the 8 KiB page.
        bit: usize,
    },
}

/// A deterministic schedule of faults keyed on operation indices.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    write_faults: BTreeMap<u64, Fault>,
    read_faults: BTreeMap<u64, Fault>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Injects `FailWrite` at the `nth` write (0-based).
    pub fn fail_write(mut self, nth: u64) -> FaultPlan {
        self.write_faults.insert(nth, Fault::FailWrite);
        self
    }

    /// Injects a torn write keeping `keep` bytes at the `nth` write.
    pub fn torn_write(mut self, nth: u64, keep: usize) -> FaultPlan {
        self.write_faults.insert(nth, Fault::TornWrite { keep: keep.min(PAGE_SIZE) });
        self
    }

    /// Flips `bit` of the page returned by the `nth` read.
    pub fn flip_read(mut self, nth: u64, bit: usize) -> FaultPlan {
        self.read_faults.insert(nth, Fault::BitFlipRead { bit: bit % (PAGE_SIZE * 8) });
        self
    }

    /// A seeded pseudo-random schedule: roughly one write fault every
    /// `every` writes over `horizon` operations, alternating fail/torn
    /// shapes, plus occasional read bit-flips. The same seed always yields
    /// the same schedule, so failures reproduce exactly.
    pub fn seeded(seed: u64, horizon: u64, every: u64) -> FaultPlan {
        assert!(every > 0, "fault period must be positive");
        // Splitmix-style seed scrambling so nearby seeds diverge.
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        state = (state ^ (state >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        state = (state ^ (state >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        state = (state ^ (state >> 31)) | 1;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let mut plan = FaultPlan::new();
        let mut kind = 0u64;
        for op in 0..horizon {
            if next() % every == 0 {
                match kind % 3 {
                    0 => plan.write_faults.insert(op, Fault::FailWrite),
                    1 => {
                        let keep = (next() as usize) % PAGE_SIZE;
                        plan.write_faults.insert(op, Fault::TornWrite { keep })
                    }
                    _ => {
                        let bit = (next() as usize) % (PAGE_SIZE * 8);
                        plan.read_faults.insert(op, Fault::BitFlipRead { bit })
                    }
                };
                kind += 1;
            }
        }
        plan
    }

    /// The write-operation indices carrying faults, in order — the crash
    /// matrix iterates these as kill points.
    pub fn write_fault_points(&self) -> Vec<u64> {
        self.write_faults.keys().copied().collect()
    }

    /// The read-operation indices carrying faults, in order.
    pub fn read_fault_points(&self) -> Vec<u64> {
        self.read_faults.keys().copied().collect()
    }
}

/// Counters describing what the store injected (exported to stats JSON).
#[derive(Debug, Default)]
pub struct FaultStats {
    /// Total faults injected (all shapes).
    pub faults_injected: Counter,
    /// Writes that errored without touching the store.
    pub failed_writes: Counter,
    /// Writes that persisted only a prefix of the page.
    pub torn_writes: Counter,
    /// Reads with a bit flipped.
    pub read_bit_flips: Counter,
}

impl FaultStats {
    /// JSON form with one field per counter.
    pub fn to_json(&self) -> json::Value {
        json::Value::object()
            .with("faults_injected", self.faults_injected.get())
            .with("failed_writes", self.failed_writes.get())
            .with("torn_writes", self.torn_writes.get())
            .with("read_bit_flips", self.read_bit_flips.get())
    }
}

/// A [`PageStore`] wrapper executing a deterministic [`FaultPlan`].
pub struct FaultyStore<S: PageStore> {
    inner: S,
    plan: FaultPlan,
    writes: u64,
    reads: u64,
    halt_on_fault: bool,
    halted: bool,
    stats: Arc<FaultStats>,
}

impl<S: PageStore> FaultyStore<S> {
    /// Wraps `inner` with the given plan. By default the store halts
    /// (simulated kill) after any injected **write** fault.
    pub fn new(inner: S, plan: FaultPlan) -> FaultyStore<S> {
        FaultyStore {
            inner,
            plan,
            writes: 0,
            reads: 0,
            halt_on_fault: true,
            halted: false,
            stats: Arc::new(FaultStats::default()),
        }
    }

    /// Controls whether an injected write fault kills the store.
    pub fn halt_on_fault(mut self, halt: bool) -> FaultyStore<S> {
        self.halt_on_fault = halt;
        self
    }

    /// Handle to the injection counters.
    pub fn stats(&self) -> Arc<FaultStats> {
        Arc::clone(&self.stats)
    }

    /// Whether a simulated kill has occurred.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Write operations attempted so far.
    pub fn write_ops(&self) -> u64 {
        self.writes
    }

    /// Unwraps the inner store (post-crash inspection).
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn dead() -> std::io::Error {
        std::io::Error::other("faulty store halted (simulated kill)")
    }
}

impl<S: PageStore> PageStore for FaultyStore<S> {
    fn page_count(&self) -> u32 {
        self.inner.page_count()
    }

    fn read_page(&mut self, id: PageId, page: &mut Page) -> std::io::Result<()> {
        if self.halted {
            return Err(Self::dead());
        }
        let op = self.reads;
        self.reads += 1;
        self.inner.read_page(id, page)?;
        if let Some(Fault::BitFlipRead { bit }) = self.plan.read_faults.get(&op).copied() {
            self.stats.faults_injected.inc();
            self.stats.read_bit_flips.inc();
            page.bytes_mut()[bit / 8] ^= 1 << (bit % 8);
        }
        Ok(())
    }

    fn write_page(&mut self, id: PageId, page: &Page) -> std::io::Result<()> {
        if self.halted {
            return Err(Self::dead());
        }
        let op = self.writes;
        self.writes += 1;
        match self.plan.write_faults.get(&op).copied() {
            None => self.inner.write_page(id, page),
            Some(Fault::FailWrite) => {
                self.stats.faults_injected.inc();
                self.stats.failed_writes.inc();
                self.halted = self.halt_on_fault;
                if self.halted {
                    // A halt is the simulated kill: leave a black-box trace
                    // (no-op unless the flight recorder is enabled).
                    orion_obs::recorder::dump(&format!("halt-on-fault: failed write at op {op}"));
                }
                Err(std::io::Error::other(format!("injected write failure at op {op}")))
            }
            Some(Fault::TornWrite { keep }) => {
                self.stats.faults_injected.inc();
                self.stats.torn_writes.inc();
                let mut torn = page.clone();
                for b in &mut torn.bytes_mut()[keep..] {
                    // Deterministic garbage standing in for stale sectors.
                    *b = 0xA5;
                }
                self.inner.write_page(id, &torn)?;
                self.halted = self.halt_on_fault;
                if self.halted {
                    orion_obs::recorder::dump(&format!("halt-on-fault: torn write at op {op}"));
                }
                Err(std::io::Error::other(format!("injected torn write at op {op}")))
            }
            Some(Fault::BitFlipRead { .. }) => self.inner.write_page(id, page),
        }
    }

    fn allocate(&mut self) -> std::io::Result<PageId> {
        if self.halted {
            return Err(Self::dead());
        }
        self.inner.allocate()
    }

    fn sync(&mut self) -> std::io::Result<()> {
        if self.halted {
            return Err(Self::dead());
        }
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::MemStore;

    fn sealed(content: &[u8]) -> Page {
        let mut p = Page::new();
        p.insert(content).unwrap();
        p.seal();
        p
    }

    #[test]
    fn plan_is_deterministic_for_a_seed() {
        let a = FaultPlan::seeded(42, 500, 50);
        let b = FaultPlan::seeded(42, 500, 50);
        assert_eq!(a.write_fault_points(), b.write_fault_points());
        assert_eq!(a.read_fault_points(), b.read_fault_points());
        assert!(!a.write_fault_points().is_empty(), "schedule not vacuous");
        let c = FaultPlan::seeded(43, 500, 50);
        assert_ne!(
            (a.write_fault_points(), a.read_fault_points()),
            (c.write_fault_points(), c.read_fault_points()),
            "different seed, different schedule"
        );
    }

    #[test]
    fn fail_write_halts_and_preserves_inner() {
        let mut inner = MemStore::new();
        let id = inner.allocate().unwrap();
        inner.write_page(id, &sealed(b"original")).unwrap();
        let mut faulty = FaultyStore::new(inner, FaultPlan::new().fail_write(0));
        assert!(faulty.write_page(id, &sealed(b"lost")).is_err());
        assert!(faulty.halted());
        assert!(faulty.write_page(id, &sealed(b"also lost")).is_err(), "halted store stays dead");
        assert_eq!(faulty.stats().failed_writes.get(), 1);
        let mut inner = faulty.into_inner();
        let mut p = Page::new();
        inner.read_page(id, &mut p).unwrap();
        assert_eq!(p.get(0), Some(&b"original"[..]), "failed write never touched the store");
    }

    #[test]
    fn torn_write_breaks_the_seal() {
        let mut inner = MemStore::new();
        let id = inner.allocate().unwrap();
        let mut faulty = FaultyStore::new(inner, FaultPlan::new().torn_write(0, 100));
        assert!(faulty.write_page(id, &sealed(b"torn")).is_err());
        assert_eq!(faulty.stats().torn_writes.get(), 1);
        let mut inner = faulty.into_inner();
        let mut p = Page::new();
        inner.read_page(id, &mut p).unwrap();
        assert!(!p.checksum_ok(), "torn page must fail verification");
    }

    #[test]
    fn read_bit_flip_breaks_the_seal_without_halting() {
        let mut inner = MemStore::new();
        let id = inner.allocate().unwrap();
        inner.write_page(id, &sealed(b"pristine")).unwrap();
        let mut faulty = FaultyStore::new(inner, FaultPlan::new().flip_read(0, 12345));
        let mut p = Page::new();
        faulty.read_page(id, &mut p).unwrap();
        assert!(!p.checksum_ok(), "flipped bit must fail verification");
        assert!(!faulty.halted());
        // The next read is clean.
        let mut q = Page::new();
        faulty.read_page(id, &mut q).unwrap();
        assert!(q.checksum_ok());
        assert_eq!(faulty.stats().read_bit_flips.get(), 1);
    }

    #[test]
    fn stats_json_lists_every_counter() {
        let stats = FaultStats::default();
        stats.faults_injected.add(3);
        stats.torn_writes.inc();
        let text = stats.to_json().to_string_compact();
        assert!(text.contains("\"faults_injected\":3"));
        assert!(text.contains("\"torn_writes\":1"));
        assert!(text.contains("\"failed_writes\":0"));
        assert!(text.contains("\"read_bit_flips\":0"));
    }
}
