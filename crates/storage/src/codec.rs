//! Compact binary encoding of pdf values for on-page storage.
//!
//! Symbolic distributions serialize to a tag plus their parameters (a few
//! bytes); histograms and discrete samplings grow linearly with their
//! resolution. The encoded-size difference between representations is the
//! storage-cost driver of the paper's Figure 5.

use bytes::{Buf, BufMut};
use orion_pdf::joint::Block;
use orion_pdf::prelude::*;

/// Errors raised while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

type Result<T> = std::result::Result<T, DecodeError>;

/// Fails unless at least `n` more bytes remain. Every decoder calls this
/// before consuming bytes or sizing an allocation, so corrupt input always
/// surfaces a [`DecodeError`] — never a panic or an absurd allocation.
pub fn need(buf: &impl Buf, n: usize, what: &str) -> Result<()> {
    if buf.remaining() < n {
        return Err(DecodeError(format!("truncated {what}")));
    }
    Ok(())
}

/// `a * b` with overflow reported as corruption (a garbage length field).
pub fn checked_size(a: usize, b: usize, what: &str) -> Result<usize> {
    a.checked_mul(b).ok_or_else(|| DecodeError(format!("absurd {what} size")))
}

const T_GAUSSIAN: u8 = 1;
const T_UNIFORM: u8 = 2;
const T_EXPONENTIAL: u8 = 3;
const T_POISSON: u8 = 4;
const T_BINOMIAL: u8 = 5;
const T_BERNOULLI: u8 = 6;
const T_GEOMETRIC: u8 = 7;

/// Encodes a symbolic distribution.
pub fn encode_symbolic(s: &Symbolic, out: &mut impl BufMut) {
    match *s {
        Symbolic::Gaussian { mean, variance } => {
            out.put_u8(T_GAUSSIAN);
            out.put_f64_le(mean);
            out.put_f64_le(variance);
        }
        Symbolic::Uniform { lo, hi } => {
            out.put_u8(T_UNIFORM);
            out.put_f64_le(lo);
            out.put_f64_le(hi);
        }
        Symbolic::Exponential { rate } => {
            out.put_u8(T_EXPONENTIAL);
            out.put_f64_le(rate);
        }
        Symbolic::Poisson { lambda } => {
            out.put_u8(T_POISSON);
            out.put_f64_le(lambda);
        }
        Symbolic::Binomial { n, p } => {
            out.put_u8(T_BINOMIAL);
            out.put_u64_le(n);
            out.put_f64_le(p);
        }
        Symbolic::Bernoulli { p } => {
            out.put_u8(T_BERNOULLI);
            out.put_f64_le(p);
        }
        Symbolic::Geometric { p } => {
            out.put_u8(T_GEOMETRIC);
            out.put_f64_le(p);
        }
    }
}

/// Decodes a symbolic distribution.
pub fn decode_symbolic(buf: &mut impl Buf) -> Result<Symbolic> {
    need(buf, 1, "symbolic tag")?;
    let tag = buf.get_u8();
    let dist = match tag {
        T_GAUSSIAN => {
            need(buf, 16, "gaussian")?;
            Symbolic::Gaussian { mean: buf.get_f64_le(), variance: buf.get_f64_le() }
        }
        T_UNIFORM => {
            need(buf, 16, "uniform")?;
            Symbolic::Uniform { lo: buf.get_f64_le(), hi: buf.get_f64_le() }
        }
        T_EXPONENTIAL => {
            need(buf, 8, "exponential")?;
            Symbolic::Exponential { rate: buf.get_f64_le() }
        }
        T_POISSON => {
            need(buf, 8, "poisson")?;
            Symbolic::Poisson { lambda: buf.get_f64_le() }
        }
        T_BINOMIAL => {
            need(buf, 16, "binomial")?;
            Symbolic::Binomial { n: buf.get_u64_le(), p: buf.get_f64_le() }
        }
        T_BERNOULLI => {
            need(buf, 8, "bernoulli")?;
            Symbolic::Bernoulli { p: buf.get_f64_le() }
        }
        T_GEOMETRIC => {
            need(buf, 8, "geometric")?;
            Symbolic::Geometric { p: buf.get_f64_le() }
        }
        other => return Err(DecodeError(format!("unknown symbolic tag {other}"))),
    };
    Ok(dist)
}

fn encode_region(r: &RegionSet, out: &mut impl BufMut) {
    out.put_u32_le(r.intervals().len() as u32);
    for iv in r.intervals() {
        out.put_f64_le(iv.lo);
        out.put_f64_le(iv.hi);
    }
}

fn decode_region(buf: &mut impl Buf) -> Result<RegionSet> {
    need(buf, 4, "region length")?;
    let n = buf.get_u32_le() as usize;
    need(buf, checked_size(n, 16, "region")?, "region intervals")?;
    let mut ivs = Vec::with_capacity(n);
    for _ in 0..n {
        need(buf, 16, "region interval")?;
        let lo = buf.get_f64_le();
        let hi = buf.get_f64_le();
        ivs.push(Interval::new(lo, hi));
    }
    Ok(RegionSet::from_intervals(ivs))
}

const P_SYMBOLIC: u8 = 10;
const P_HISTOGRAM: u8 = 11;
const P_DISCRETE: u8 = 12;

/// Encodes a 1-D pdf.
pub fn encode_pdf1(p: &Pdf1, out: &mut impl BufMut) {
    match p {
        Pdf1::Symbolic { dist, floor, scale } => {
            out.put_u8(P_SYMBOLIC);
            encode_symbolic(dist, out);
            encode_region(floor, out);
            out.put_f64_le(*scale);
        }
        Pdf1::Histogram(h) => {
            out.put_u8(P_HISTOGRAM);
            out.put_f64_le(h.lo());
            out.put_f64_le(h.width());
            out.put_u32_le(h.bins() as u32);
            for &m in h.masses() {
                out.put_f64_le(m);
            }
        }
        Pdf1::Discrete(d) => {
            out.put_u8(P_DISCRETE);
            out.put_u32_le(d.len() as u32);
            for &(v, pr) in d.points() {
                out.put_f64_le(v);
                out.put_f64_le(pr);
            }
        }
    }
}

/// Decodes a 1-D pdf.
pub fn decode_pdf1(buf: &mut impl Buf) -> Result<Pdf1> {
    need(buf, 1, "pdf tag")?;
    let tag = buf.get_u8();
    match tag {
        P_SYMBOLIC => {
            let dist = decode_symbolic(buf)?;
            let floor = decode_region(buf)?;
            need(buf, 8, "pdf scale")?;
            let scale = buf.get_f64_le();
            Ok(Pdf1::Symbolic { dist, floor, scale })
        }
        P_HISTOGRAM => {
            need(buf, 20, "histogram header")?;
            let lo = buf.get_f64_le();
            let width = buf.get_f64_le();
            let bins = buf.get_u32_le() as usize;
            need(buf, checked_size(bins, 8, "histogram")?, "histogram masses")?;
            let masses = (0..bins).map(|_| buf.get_f64_le()).collect();
            Histogram::from_masses(lo, width, masses)
                .map(Pdf1::Histogram)
                .map_err(|e| DecodeError(e.to_string()))
        }
        P_DISCRETE => {
            need(buf, 4, "discrete length")?;
            let n = buf.get_u32_le() as usize;
            need(buf, checked_size(n, 16, "discrete")?, "discrete points")?;
            let pts = (0..n)
                .map(|_| {
                    let v = buf.get_f64_le();
                    let p = buf.get_f64_le();
                    (v, p)
                })
                .collect();
            DiscretePdf::from_points(pts)
                .map(Pdf1::Discrete)
                .map_err(|e| DecodeError(e.to_string()))
        }
        other => Err(DecodeError(format!("unknown pdf tag {other}"))),
    }
}

/// Decodes a 1-D pdf straight into a columnar [`Pdf1Batch`], skipping the
/// per-record `Pdf1` materialization (the batch scan's decode path).
///
/// Accepts exactly the inputs [`decode_pdf1`] accepts and raises equal
/// errors; the appended record reconstructs (via [`Pdf1Batch::get`])
/// bit-for-bit identical to what `decode_pdf1` would have returned. On
/// error nothing is appended, though the buffer may be left mid-record.
pub fn decode_pdf1_into(buf: &mut impl Buf, out: &mut Pdf1Batch) -> Result<()> {
    need(buf, 1, "pdf tag")?;
    let tag = buf.get_u8();
    match tag {
        P_SYMBOLIC => {
            let dist = decode_symbolic(buf)?;
            let floor = decode_region(buf)?;
            need(buf, 8, "pdf scale")?;
            let scale = buf.get_f64_le();
            out.push_symbolic(dist, floor.intervals(), scale);
            Ok(())
        }
        P_HISTOGRAM => {
            need(buf, 20, "histogram header")?;
            let lo = buf.get_f64_le();
            let width = buf.get_f64_le();
            let bins = buf.get_u32_le() as usize;
            let bytes = checked_size(bins, 8, "histogram")?;
            need(buf, bytes, "histogram masses")?;
            // Contiguous fast path: feed the validator straight from the
            // underlying slice. Per-element `get_f64_le` advances the
            // buffer through a `&mut` indirection, which forces a
            // write-back per read and defeats vectorization in the hot
            // batch-scan decode loop.
            if buf.chunk().len() >= bytes {
                let res = out.push_histogram_checked(lo, width, f64_lanes(buf.chunk(), bytes));
                buf.advance(bytes);
                res.map_err(|e| DecodeError(e.to_string()))
            } else {
                out.push_histogram_checked(lo, width, (0..bins).map(|_| buf.get_f64_le()))
                    .map_err(|e| DecodeError(e.to_string()))
            }
        }
        P_DISCRETE => {
            need(buf, 4, "discrete length")?;
            let n = buf.get_u32_le() as usize;
            let bytes = checked_size(n, 16, "discrete")?;
            need(buf, bytes, "discrete points")?;
            if buf.chunk().len() >= bytes {
                let res = out.push_discrete_checked_bulk(pair_lanes(buf.chunk(), bytes));
                buf.advance(bytes);
                res.map_err(|e| DecodeError(e.to_string()))
            } else {
                out.push_discrete_checked((0..n).map(|_| {
                    let v = buf.get_f64_le();
                    let p = buf.get_f64_le();
                    (v, p)
                }))
                .map_err(|e| DecodeError(e.to_string()))
            }
        }
        other => Err(DecodeError(format!("unknown pdf tag {other}"))),
    }
}

/// Little-endian `f64` lane over the first `bytes` of a contiguous slice.
fn f64_lanes(chunk: &[u8], bytes: usize) -> impl Iterator<Item = f64> + '_ {
    chunk[..bytes].chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
}

/// Little-endian `(f64, f64)` pair lane over the first `bytes` of a
/// contiguous slice.
fn pair_lanes(chunk: &[u8], bytes: usize) -> impl Iterator<Item = (f64, f64)> + Clone + '_ {
    chunk[..bytes].chunks_exact(16).map(|c| {
        (
            f64::from_le_bytes(c[..8].try_into().expect("8-byte half")),
            f64::from_le_bytes(c[8..].try_into().expect("8-byte half")),
        )
    })
}

const B_UNI: u8 = 20;
const B_POINTS: u8 = 21;
const B_GRID: u8 = 22;

fn encode_block(b: &Block, out: &mut impl BufMut) {
    match b {
        Block::Uni(p) => {
            out.put_u8(B_UNI);
            encode_pdf1(p, out);
        }
        Block::Points(j) => {
            out.put_u8(B_POINTS);
            out.put_u32_le(j.arity() as u32);
            out.put_u32_le(j.len() as u32);
            for (v, p) in j.points() {
                for &x in v {
                    out.put_f64_le(x);
                }
                out.put_f64_le(*p);
            }
        }
        Block::Grid(g) => {
            out.put_u8(B_GRID);
            out.put_u32_le(g.arity() as u32);
            for d in g.dims() {
                out.put_f64_le(d.lo);
                out.put_f64_le(d.width);
                out.put_u32_le(d.bins as u32);
            }
            out.put_u32_le(g.masses().len() as u32);
            for &m in g.masses() {
                out.put_f64_le(m);
            }
        }
    }
}

fn decode_block(buf: &mut impl Buf) -> Result<Block> {
    need(buf, 1, "block tag")?;
    let tag = buf.get_u8();
    match tag {
        B_UNI => Ok(Block::Uni(decode_pdf1(buf)?)),
        B_POINTS => {
            need(buf, 8, "points header")?;
            let arity = buf.get_u32_le() as usize;
            let n = buf.get_u32_le() as usize;
            let per_point = checked_size(arity.saturating_add(1), 8, "points row")?;
            need(buf, checked_size(n, per_point, "points")?, "points data")?;
            let mut pts = Vec::with_capacity(n);
            for _ in 0..n {
                let v: Vec<f64> = (0..arity).map(|_| buf.get_f64_le()).collect();
                let p = buf.get_f64_le();
                pts.push((v, p));
            }
            JointDiscrete::from_points(arity, pts)
                .map(Block::Points)
                .map_err(|e| DecodeError(e.to_string()))
        }
        B_GRID => {
            need(buf, 4, "grid arity")?;
            let arity = buf.get_u32_le() as usize;
            need(buf, checked_size(arity, 20, "grid")?, "grid dims")?;
            let dims: Vec<GridDim> = (0..arity)
                .map(|_| {
                    let lo = buf.get_f64_le();
                    let width = buf.get_f64_le();
                    let bins = buf.get_u32_le() as usize;
                    GridDim { lo, width, bins }
                })
                .collect();
            need(buf, 4, "grid mass count")?;
            let n = buf.get_u32_le() as usize;
            need(buf, checked_size(n, 8, "grid mass")?, "grid masses")?;
            let masses = (0..n).map(|_| buf.get_f64_le()).collect();
            JointGrid::from_masses(dims, masses)
                .map(Block::Grid)
                .map_err(|e| DecodeError(e.to_string()))
        }
        other => Err(DecodeError(format!("unknown block tag {other}"))),
    }
}

/// Encodes a joint pdf (block list).
pub fn encode_joint(j: &JointPdf, out: &mut impl BufMut) {
    out.put_u32_le(j.blocks().len() as u32);
    for b in j.blocks() {
        encode_block(b, out);
    }
}

/// Decodes a joint pdf.
pub fn decode_joint(buf: &mut impl Buf) -> Result<JointPdf> {
    need(buf, 4, "joint block count")?;
    let n = buf.get_u32_le() as usize;
    if n == 0 {
        return Err(DecodeError("joint with zero blocks".into()));
    }
    let mut joint: Option<JointPdf> = None;
    for _ in 0..n {
        let b = decode_block(buf)?;
        let next = match b {
            Block::Uni(p) => JointPdf::from_pdf1(p),
            Block::Points(j) => JointPdf::from_points(j),
            Block::Grid(g) => JointPdf::from_grid(g),
        };
        joint = Some(match joint {
            None => next,
            Some(j) => j.product(&next),
        });
    }
    Ok(joint.expect("n >= 1"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_pdf1(p: &Pdf1) -> Pdf1 {
        let mut buf = Vec::new();
        encode_pdf1(p, &mut buf);
        let mut slice = &buf[..];
        let out = decode_pdf1(&mut slice).unwrap();
        assert!(slice.is_empty(), "no trailing bytes");
        out
    }

    #[test]
    fn symbolic_round_trips() {
        for s in [
            Symbolic::gaussian(20.0, 5.0).unwrap(),
            Symbolic::uniform(-1.0, 4.0).unwrap(),
            Symbolic::exponential(0.3).unwrap(),
            Symbolic::poisson(2.5).unwrap(),
            Symbolic::binomial(17, 0.4).unwrap(),
            Symbolic::bernoulli(0.9).unwrap(),
            Symbolic::geometric(0.2).unwrap(),
        ] {
            let mut buf = Vec::new();
            encode_symbolic(&s, &mut buf);
            let out = decode_symbolic(&mut &buf[..]).unwrap();
            assert_eq!(out, s);
        }
    }

    #[test]
    fn pdf1_round_trips_all_variants() {
        let g = Pdf1::gaussian(5.0, 1.0)
            .unwrap()
            .floor_region(&RegionSet::from_interval(Interval::at_least(5.0)))
            .scale(0.9);
        assert_eq!(round_trip_pdf1(&g), g);
        let h = Pdf1::histogram(0.0, 1.0, vec![0.25, 0.5, 0.25]).unwrap();
        assert_eq!(round_trip_pdf1(&h), h);
        let d = Pdf1::discrete(vec![(0.0, 0.1), (1.0, 0.9)]).unwrap();
        assert_eq!(round_trip_pdf1(&d), d);
    }

    #[test]
    fn joint_round_trips() {
        let j = JointPdf::independent(vec![
            Pdf1::gaussian(0.0, 1.0).unwrap(),
            Pdf1::discrete(vec![(1.0, 0.6), (2.0, 0.4)]).unwrap(),
        ])
        .unwrap();
        let mut buf = Vec::new();
        encode_joint(&j, &mut buf);
        let out = decode_joint(&mut &buf[..]).unwrap();
        assert_eq!(out, j);
        // Correlated points block.
        let corr = JointPdf::from_points(
            JointDiscrete::from_points(2, vec![(vec![0.0, 1.0], 0.06), (vec![1.0, 2.0], 0.36)])
                .unwrap(),
        );
        let mut buf = Vec::new();
        encode_joint(&corr, &mut buf);
        assert_eq!(decode_joint(&mut &buf[..]).unwrap(), corr);
    }

    #[test]
    fn grid_block_round_trips() {
        let g = JointGrid::from_masses(
            vec![GridDim::over(0.0, 2.0, 2).unwrap(), GridDim::over(0.0, 2.0, 2).unwrap()],
            vec![0.1, 0.2, 0.3, 0.4],
        )
        .unwrap();
        let j = JointPdf::from_grid(g);
        let mut buf = Vec::new();
        encode_joint(&j, &mut buf);
        assert_eq!(decode_joint(&mut &buf[..]).unwrap(), j);
    }

    #[test]
    fn truncation_is_detected() {
        let g = Pdf1::gaussian(0.0, 1.0).unwrap();
        let mut buf = Vec::new();
        encode_pdf1(&g, &mut buf);
        for cut in [0, 1, 5, buf.len() - 1] {
            assert!(decode_pdf1(&mut &buf[..cut]).is_err(), "cut at {cut}");
        }
        assert!(decode_pdf1(&mut &[99u8][..]).is_err(), "unknown tag");
    }

    #[test]
    fn decode_into_batch_matches_scalar_decode() {
        let g = Pdf1::gaussian(5.0, 1.0)
            .unwrap()
            .floor_region(&RegionSet::from_interval(Interval::at_least(5.0)))
            .scale(0.9);
        let h = Pdf1::histogram(0.0, 1.0, vec![0.25, 0.5, 0.25]).unwrap();
        let d = Pdf1::discrete(vec![(0.0, 0.1), (1.0, 0.9)]).unwrap();
        let mut buf = Vec::new();
        for p in [&g, &h, &d] {
            encode_pdf1(p, &mut buf);
        }
        let mut batch = Pdf1Batch::new();
        let mut slice = &buf[..];
        for _ in 0..3 {
            decode_pdf1_into(&mut slice, &mut batch).unwrap();
        }
        assert!(slice.is_empty(), "no trailing bytes");
        let mut slice = &buf[..];
        for i in 0..3 {
            assert_eq!(batch.get(i), decode_pdf1(&mut slice).unwrap(), "record {i}");
        }
    }

    #[test]
    fn decode_into_batch_matches_scalar_errors() {
        let g = Pdf1::gaussian(0.0, 1.0).unwrap();
        let mut buf = Vec::new();
        encode_pdf1(&g, &mut buf);
        for cut in [0, 1, 5, buf.len() - 1] {
            let mut batch = Pdf1Batch::new();
            let want = decode_pdf1(&mut &buf[..cut]).unwrap_err();
            let got = decode_pdf1_into(&mut &buf[..cut], &mut batch).unwrap_err();
            assert_eq!(got, want, "cut at {cut}");
            assert!(batch.is_empty(), "nothing appended on error");
        }
        // Semantically invalid payloads surface the constructor's error text.
        let mut bad_hist = Vec::new();
        bad_hist.push(11u8); // P_HISTOGRAM
        bad_hist.extend_from_slice(&0.0f64.to_le_bytes());
        bad_hist.extend_from_slice(&1.0f64.to_le_bytes());
        bad_hist.extend_from_slice(&2u32.to_le_bytes());
        bad_hist.extend_from_slice(&0.7f64.to_le_bytes());
        bad_hist.extend_from_slice(&0.7f64.to_le_bytes());
        let mut batch = Pdf1Batch::new();
        let want = decode_pdf1(&mut &bad_hist[..]).unwrap_err();
        let got = decode_pdf1_into(&mut &bad_hist[..], &mut batch).unwrap_err();
        assert_eq!(got, want);
        assert!(batch.is_empty());
    }

    #[test]
    fn encoded_sizes_rank_as_expected() {
        // Symbolic < histogram-5 < discrete-25: the Figure 5 storage story.
        let g = Pdf1::gaussian(50.0, 4.0).unwrap();
        let h = Pdf1::Histogram(g.to_histogram(5).unwrap());
        let d = Pdf1::Discrete(g.to_discrete(25).unwrap());
        let size = |p: &Pdf1| {
            let mut b = Vec::new();
            encode_pdf1(p, &mut b);
            b.len()
        };
        assert!(size(&g) < size(&h));
        assert!(size(&h) < size(&d));
    }
}
