//! Write-ahead log: an append-only file of length+CRC32-framed records.
//!
//! Frame layout (little-endian):
//! ```text
//! [0..4)  payload length (u32)
//! [4..8)  CRC32 of the payload
//! [8..)   payload bytes
//! ```
//!
//! Durability discipline: [`Wal::append`] buffers into the OS; callers
//! decide the commit point by calling [`Wal::sync`] (fdatasync). A record
//! is *committed* iff its full frame is on stable storage with a matching
//! CRC.
//!
//! Replay ([`Wal::open`]) walks frames from the start and stops at the
//! first incomplete or CRC-mismatched frame — the signature of a crash
//! mid-append — then **truncates the file back to the last good frame**,
//! discarding trailing garbage so later appends never interleave with it.

use crate::checksum::crc32;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Frame header size: payload length + CRC32.
pub const FRAME_HEADER: usize = 8;

/// Upper bound on one record's payload — a sanity check that stops replay
/// from trusting a garbage length field.
pub const MAX_RECORD: usize = 1 << 24;

/// What replay found in an existing log.
#[derive(Debug, Clone, Default)]
pub struct WalReplay {
    /// Every committed record's payload, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes of trailing garbage discarded (torn final append).
    pub truncated_bytes: u64,
    /// Offset of the end of the last committed record.
    pub valid_bytes: u64,
}

/// An open write-ahead log positioned for appending.
#[derive(Debug)]
pub struct Wal {
    file: File,
    len: u64,
    /// Set when a physical truncation failed: the on-disk tail may hold
    /// stale committed-looking frames we could not remove, so appends are
    /// refused until a truncation succeeds (see [`Wal::truncate_to`]).
    poisoned: bool,
    #[cfg(feature = "failpoints")]
    fail_append_in: Option<u32>,
    #[cfg(feature = "failpoints")]
    fail_next_sync: bool,
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, replaying every
    /// committed record and truncating any torn tail. Returns the log
    /// positioned at its end plus the replay report.
    pub fn open(path: &Path) -> std::io::Result<(Wal, WalReplay)> {
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        let mut bytes = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut bytes)?;

        let mut records = Vec::new();
        let mut off = 0usize;
        while let Some(header) = bytes.get(off..off + FRAME_HEADER) {
            let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
            if len > MAX_RECORD {
                break;
            }
            let Some(payload) = bytes.get(off + FRAME_HEADER..off + FRAME_HEADER + len) else {
                break;
            };
            if crc32(payload) != crc {
                break;
            }
            records.push(payload.to_vec());
            off += FRAME_HEADER + len;
        }

        let truncated = (bytes.len() - off) as u64;
        if truncated > 0 {
            file.set_len(off as u64)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(off as u64))?;
        let replay = WalReplay { records, truncated_bytes: truncated, valid_bytes: off as u64 };
        let wal = Wal {
            file,
            len: off as u64,
            poisoned: false,
            #[cfg(feature = "failpoints")]
            fail_append_in: None,
            #[cfg(feature = "failpoints")]
            fail_next_sync: false,
        };
        Ok((wal, replay))
    }

    /// Appends one record (not yet durable — see [`Wal::sync`]). Returns
    /// the log length after the append.
    ///
    /// Always seeks to the tracked length first: a previously failed
    /// `write_all` leaves the file cursor at an unknown offset past a torn
    /// partial frame, and without the seek a later append would land after
    /// that garbage — committed-looking but unreachable on replay, which
    /// stops at the first bad frame.
    pub fn append(&mut self, payload: &[u8]) -> std::io::Result<u64> {
        if self.poisoned {
            return Err(std::io::Error::other(
                "wal poisoned: a truncation failed and stale frames may remain on disk",
            ));
        }
        #[cfg(feature = "failpoints")]
        if let Some(n) = self.fail_append_in {
            if n == 0 {
                self.fail_append_in = None;
                return Err(std::io::Error::other("injected wal append failure"));
            }
            self.fail_append_in = Some(n - 1);
        }
        if payload.len() > MAX_RECORD {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("wal record of {} bytes exceeds MAX_RECORD", payload.len()),
            ));
        }
        // One contiguous write per frame: header and payload are assembled
        // first so a crash can tear at most this single append.
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.seek(SeekFrom::Start(self.len))?;
        self.file.write_all(&frame)?;
        self.len += frame.len() as u64;
        Ok(self.len)
    }

    /// Forces every appended record to stable storage — the commit point.
    pub fn sync(&mut self) -> std::io::Result<()> {
        #[cfg(feature = "failpoints")]
        if self.fail_next_sync {
            self.fail_next_sync = false;
            return Err(std::io::Error::other("injected wal sync failure"));
        }
        self.file.sync_data()
    }

    /// Rolls the log back to `len` bytes, aborting frames appended after
    /// that point (an insert whose commit failed). The tracked length is
    /// reset even when the physical `set_len` fails — every append seeks to
    /// the tracked length, so retried records overwrite the aborted tail —
    /// but because fully written stale frames past the new tail could then
    /// align with a later frame boundary and replay as committed, a failed
    /// truncation also **poisons** the log: appends are refused until a
    /// truncation succeeds.
    pub fn truncate_to(&mut self, len: u64) -> std::io::Result<()> {
        self.len = self.len.min(len);
        match self.file.set_len(len) {
            Ok(()) => {
                self.poisoned = false;
                Ok(())
            }
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// Empties the log (after a checkpoint has made its records redundant).
    pub fn reset(&mut self) -> std::io::Result<()> {
        self.truncate_to(0)?;
        self.file.sync_all()?;
        Ok(())
    }

    /// Current log length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Fault injection: the `nth` append from now (0 = the very next one)
    /// fails with an injected I/O error instead of writing.
    #[cfg(feature = "failpoints")]
    pub fn fail_nth_append(&mut self, nth: u32) {
        self.fail_append_in = Some(nth);
    }

    /// Fault injection: the next [`Wal::sync`] fails with an injected
    /// I/O error.
    #[cfg(feature = "failpoints")]
    pub fn fail_next_sync(&mut self) {
        self.fail_next_sync = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("orion_wal_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::remove_file(&path).ok();
        path
    }

    #[test]
    fn append_sync_replay_round_trip() {
        let path = temp("roundtrip.wal");
        {
            let (mut wal, replay) = Wal::open(&path).unwrap();
            assert!(replay.records.is_empty());
            assert!(wal.is_empty());
            wal.append(b"first").unwrap();
            wal.append(b"").unwrap();
            wal.append(&[7u8; 1000]).unwrap();
            wal.sync().unwrap();
        }
        let (wal, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records.len(), 3);
        assert_eq!(replay.records[0], b"first");
        assert_eq!(replay.records[1], b"");
        assert_eq!(replay.records[2], vec![7u8; 1000]);
        assert_eq!(replay.truncated_bytes, 0);
        assert_eq!(wal.len(), replay.valid_bytes);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_at_every_cut() {
        let path = temp("torn.wal");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(b"alpha").unwrap();
        let committed = wal.append(b"beta").unwrap();
        wal.append(b"gamma-torn").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        // Simulate a crash at every possible point inside the last append.
        for cut in committed as usize..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (_, replay) = Wal::open(&path).unwrap();
            assert_eq!(replay.records.len(), 2, "cut at {cut}");
            assert_eq!(replay.truncated_bytes, (cut as u64).saturating_sub(committed), "at {cut}");
            assert_eq!(std::fs::metadata(&path).unwrap().len(), committed, "truncated at {cut}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_crc_discards_record_and_everything_after() {
        let path = temp("crc.wal");
        let (mut wal, _) = Wal::open(&path).unwrap();
        let first_end = wal.append(b"good").unwrap();
        wal.append(b"to be corrupted").unwrap();
        wal.append(b"unreachable").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte of the middle record.
        bytes[first_end as usize + FRAME_HEADER] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.records[0], b"good");
        assert_eq!(replay.valid_bytes, first_end);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_length_field_does_not_overrun() {
        let path = temp("garbage.wal");
        // A "length" of u32::MAX must not be trusted.
        let mut bytes = u32::MAX.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 12]);
        std::fs::write(&path, &bytes).unwrap();
        let (wal, replay) = Wal::open(&path).unwrap();
        assert!(replay.records.is_empty());
        assert_eq!(replay.truncated_bytes, 16);
        assert!(wal.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn appends_after_truncation_do_not_interleave_with_garbage() {
        let path = temp("reappend.wal");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(b"one").unwrap();
        wal.sync().unwrap();
        drop(wal);
        // Torn second append.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0xFF, 0x00, 0x03]);
        std::fs::write(&path, &bytes).unwrap();
        let (mut wal, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.truncated_bytes, 3);
        wal.append(b"two").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records, vec![b"one".to_vec(), b"two".to_vec()]);
        assert_eq!(replay.truncated_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reset_empties_the_log() {
        let path = temp("reset.wal");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(b"checkpointed away").unwrap();
        wal.sync().unwrap();
        wal.reset().unwrap();
        assert!(wal.is_empty());
        wal.append(b"fresh").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records, vec![b"fresh".to_vec()]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_lands_at_tracked_len_after_cursor_drift() {
        let path = temp("cursor.wal");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(b"good").unwrap();
        wal.sync().unwrap();
        // Simulate a failed write_all that advanced the file cursor past
        // the tracked length, leaving a torn partial frame behind.
        wal.file.write_all(&[0xAA; 27]).unwrap();
        // The next append must overwrite that garbage, not follow it.
        wal.append(b"second").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records, vec![b"good".to_vec(), b"second".to_vec()]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncate_to_aborts_uncommitted_frames() {
        let path = temp("abort.wal");
        let (mut wal, _) = Wal::open(&path).unwrap();
        let committed = wal.append(b"committed").unwrap();
        wal.sync().unwrap();
        wal.append(b"aborted").unwrap();
        wal.truncate_to(committed).unwrap();
        assert_eq!(wal.len(), committed);
        wal.append(b"retried").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records, vec![b"committed".to_vec(), b"retried".to_vec()]);
        assert_eq!(replay.truncated_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn injected_append_failure_fires_once() {
        let path = temp("inject.wal");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.fail_nth_append(1);
        wal.append(b"before").unwrap();
        assert!(wal.append(b"fails").is_err());
        wal.append(b"after").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records, vec![b"before".to_vec(), b"after".to_vec()]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn oversized_record_rejected() {
        let path = temp("oversize.wal");
        let (mut wal, _) = Wal::open(&path).unwrap();
        let err = wal.append(&vec![0u8; MAX_RECORD + 1]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        std::fs::remove_file(&path).ok();
    }
}
