//! Write-ahead log: an append-only file of length+CRC32-framed records.
//!
//! Frame layout (little-endian):
//! ```text
//! [0..4)  payload length (u32)
//! [4..8)  CRC32 of the payload
//! [8..)   payload bytes
//! ```
//!
//! Durability discipline: [`Wal::append`] buffers into the OS; callers
//! decide the commit point by calling [`Wal::sync`] (fdatasync). A record
//! is *committed* iff its full frame is on stable storage with a matching
//! CRC.
//!
//! Replay ([`Wal::open`]) walks frames from the start and stops at the
//! first incomplete or CRC-mismatched frame — the signature of a crash
//! mid-append — then **truncates the file back to the last good frame**,
//! discarding trailing garbage so later appends never interleave with it.
//!
//! **Group commit.** [`GroupWal`] wraps a [`Wal`] with a leader/follower
//! commit pipeline: concurrent committers enqueue framed records under a
//! queue mutex, exactly one of them becomes the *leader*, drains the whole
//! queue, performs a single contiguous `append + fsync` for the group, and
//! wakes the followers blocked on their commit sequence number through a
//! condvar. While the leader is inside the fsync the queue mutex is free,
//! so late arrivals keep enqueuing and naturally form the next group —
//! under concurrency one fsync covers many commits.

use crate::checksum::crc32;
use orion_obs::{json, Counter, Histogram, Lane, Span, Tracer};
use parking_lot::{Condvar, Mutex};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Always-on durability histograms on the process-wide metrics registry.
/// Recording a sample is two relaxed atomic adds, so these are not gated
/// on tracing — `MetricsRegistry::render_prometheus` can expose fsync
/// latency from any long-running process.
struct WalHists {
    batch_bytes: Arc<Histogram>,
    fsync_nanos: Arc<Histogram>,
}

fn wal_hists() -> &'static WalHists {
    static HISTS: OnceLock<WalHists> = OnceLock::new();
    HISTS.get_or_init(|| {
        let reg = orion_obs::metrics::global();
        WalHists {
            batch_bytes: reg.histogram("wal.batch_bytes"),
            fsync_nanos: reg.histogram("wal.fsync_nanos"),
        }
    })
}

/// Frame header size: payload length + CRC32.
pub const FRAME_HEADER: usize = 8;

/// Upper bound on one record's payload — a sanity check that stops replay
/// from trusting a garbage length field.
pub const MAX_RECORD: usize = 1 << 24;

/// What replay found in an existing log.
#[derive(Debug, Clone, Default)]
pub struct WalReplay {
    /// Every committed record's payload, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes of trailing garbage discarded (torn final append).
    pub truncated_bytes: u64,
    /// Offset of the end of the last committed record.
    pub valid_bytes: u64,
}

/// An open write-ahead log positioned for appending.
#[derive(Debug)]
pub struct Wal {
    file: File,
    len: u64,
    /// Set when a physical truncation failed: the on-disk tail may hold
    /// stale committed-looking frames we could not remove, so appends are
    /// refused until a truncation succeeds (see [`Wal::truncate_to`]).
    poisoned: bool,
    #[cfg(feature = "failpoints")]
    fail_append_in: Option<u32>,
    #[cfg(feature = "failpoints")]
    fail_next_sync: bool,
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, replaying every
    /// committed record and truncating any torn tail. Returns the log
    /// positioned at its end plus the replay report.
    pub fn open(path: &Path) -> std::io::Result<(Wal, WalReplay)> {
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        let mut bytes = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut bytes)?;

        let mut records = Vec::new();
        let mut off = 0usize;
        while let Some(header) = bytes.get(off..off + FRAME_HEADER) {
            let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
            if len > MAX_RECORD {
                break;
            }
            let Some(payload) = bytes.get(off + FRAME_HEADER..off + FRAME_HEADER + len) else {
                break;
            };
            if crc32(payload) != crc {
                break;
            }
            records.push(payload.to_vec());
            off += FRAME_HEADER + len;
        }

        let truncated = (bytes.len() - off) as u64;
        if truncated > 0 {
            file.set_len(off as u64)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(off as u64))?;
        let replay = WalReplay { records, truncated_bytes: truncated, valid_bytes: off as u64 };
        let wal = Wal {
            file,
            len: off as u64,
            poisoned: false,
            #[cfg(feature = "failpoints")]
            fail_append_in: None,
            #[cfg(feature = "failpoints")]
            fail_next_sync: false,
        };
        Ok((wal, replay))
    }

    /// Appends one record (not yet durable — see [`Wal::sync`]). Returns
    /// the log length after the append.
    ///
    /// Always seeks to the tracked length first: a previously failed
    /// `write_all` leaves the file cursor at an unknown offset past a torn
    /// partial frame, and without the seek a later append would land after
    /// that garbage — committed-looking but unreachable on replay, which
    /// stops at the first bad frame.
    pub fn append(&mut self, payload: &[u8]) -> std::io::Result<u64> {
        if self.poisoned {
            return Err(std::io::Error::other(
                "wal poisoned: a truncation failed and stale frames may remain on disk",
            ));
        }
        #[cfg(feature = "failpoints")]
        if let Some(n) = self.fail_append_in {
            if n == 0 {
                self.fail_append_in = None;
                return Err(std::io::Error::other("injected wal append failure"));
            }
            self.fail_append_in = Some(n - 1);
        }
        // One contiguous write per frame: header and payload are assembled
        // first so a crash can tear at most this single append.
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        Self::frame_into(payload, &mut frame)?;
        self.append_frames(&frame)
    }

    /// Frames one payload (length + CRC32 header) into `out`, rejecting
    /// payloads over [`MAX_RECORD`].
    pub fn frame_into(payload: &[u8], out: &mut Vec<u8>) -> std::io::Result<()> {
        if payload.len() > MAX_RECORD {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("wal record of {} bytes exceeds MAX_RECORD", payload.len()),
            ));
        }
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(payload).to_le_bytes());
        out.extend_from_slice(payload);
        Ok(())
    }

    /// Appends pre-framed bytes (one or more [`Wal::frame_into`] frames) in
    /// a **single contiguous write** — the physical half of group commit.
    /// Not yet durable; see [`Wal::sync`]. Returns the log length after the
    /// append. On a failed write the tracked length is unchanged, so the
    /// next append overwrites the torn tail (see [`Wal::append`]).
    pub fn append_frames(&mut self, frames: &[u8]) -> std::io::Result<u64> {
        if self.poisoned {
            return Err(std::io::Error::other(
                "wal poisoned: a truncation failed and stale frames may remain on disk",
            ));
        }
        self.file.seek(SeekFrom::Start(self.len))?;
        self.file.write_all(frames)?;
        self.len += frames.len() as u64;
        Ok(self.len)
    }

    /// Forces every appended record to stable storage — the commit point.
    pub fn sync(&mut self) -> std::io::Result<()> {
        #[cfg(feature = "failpoints")]
        if self.fail_next_sync {
            self.fail_next_sync = false;
            return Err(std::io::Error::other("injected wal sync failure"));
        }
        self.file.sync_data()
    }

    /// Rolls the log back to `len` bytes, aborting frames appended after
    /// that point (an insert whose commit failed). The tracked length is
    /// reset even when the physical `set_len` fails — every append seeks to
    /// the tracked length, so retried records overwrite the aborted tail —
    /// but because fully written stale frames past the new tail could then
    /// align with a later frame boundary and replay as committed, a failed
    /// truncation also **poisons** the log: appends are refused until a
    /// truncation succeeds.
    pub fn truncate_to(&mut self, len: u64) -> std::io::Result<()> {
        self.len = self.len.min(len);
        match self.file.set_len(len) {
            Ok(()) => {
                self.poisoned = false;
                Ok(())
            }
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// Empties the log (after a checkpoint has made its records redundant).
    pub fn reset(&mut self) -> std::io::Result<()> {
        self.truncate_to(0)?;
        self.file.sync_all()?;
        Ok(())
    }

    /// Current log length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Fault injection: the `nth` append from now (0 = the very next one)
    /// fails with an injected I/O error instead of writing.
    #[cfg(feature = "failpoints")]
    pub fn fail_nth_append(&mut self, nth: u32) {
        self.fail_append_in = Some(nth);
    }

    /// Fault injection: the next [`Wal::sync`] fails with an injected
    /// I/O error.
    #[cfg(feature = "failpoints")]
    pub fn fail_next_sync(&mut self) {
        self.fail_next_sync = true;
    }
}

/// Counters for the group-commit pipeline, shared with the stats JSON.
#[derive(Debug, Default)]
pub struct WalStats {
    /// Caller records made durable (epoch stamps not counted).
    pub records_appended: Counter,
    /// Commit calls that went through the group pipeline.
    pub group_commit_commits: Counter,
    /// Leader flushes: one batched `append + fsync` per batch.
    pub group_commit_batches: Counter,
    /// Physical fsyncs issued (both group and per-commit modes).
    pub fsyncs: Counter,
    /// Fsyncs avoided by batching: `commits − 1` for every multi-commit
    /// batch. The headline group-commit win.
    pub fsyncs_saved: Counter,
}

impl WalStats {
    /// Snapshot as a JSON object (keys are stable; tests grep them).
    pub fn to_json(&self) -> json::Value {
        json::Value::object()
            .with("records_appended", self.records_appended.get())
            .with("group_commit_commits", self.group_commit_commits.get())
            .with("group_commit_batches", self.group_commit_batches.get())
            .with("fsyncs", self.fsyncs.get())
            .with("fsyncs_saved", self.fsyncs_saved.get())
    }
}

/// Tunables for the group-commit pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCommitConfig {
    /// When `false`, every commit performs its own `append + fsync`
    /// (the PR 2 behaviour, and the bench baseline).
    pub enabled: bool,
    /// How long a leader waits for stragglers before flushing, **but only
    /// when siblings are already queued** (cf. Postgres `commit_siblings`):
    /// a lone committer flushes immediately, so sequential workloads pay
    /// no latency tax. `Duration::ZERO` disables the wait entirely —
    /// batching then comes only from commits arriving while a leader's
    /// fsync is in flight, which is already most of the win.
    pub window: Duration,
    /// A leader flushes as soon as the queued frames reach this many
    /// bytes, even inside the batching window.
    pub max_batch_bytes: usize,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        GroupCommitConfig { enabled: true, window: Duration::ZERO, max_batch_bytes: 1 << 20 }
    }
}

/// A commit range that failed its batched flush; each member commit
/// reconstructs the error from `kind`/`msg` when it wakes.
#[derive(Debug)]
struct FailedRange {
    lo: u64,
    hi: u64,
    kind: std::io::ErrorKind,
    msg: String,
    /// Commits in `[lo, hi]` that have not yet observed the failure; the
    /// range is dropped when this reaches zero.
    unclaimed: u64,
}

/// Queue state shared by all committers (guarded by `GroupWal::queue`).
#[derive(Debug, Default)]
struct Queue {
    /// Framed bytes awaiting the next leader flush.
    pending: Vec<u8>,
    /// Caller records represented in `pending`.
    pending_records: u64,
    /// Commits represented in `pending`.
    pending_commits: u64,
    /// Sequence number handed to the most recent commit.
    next_seq: u64,
    /// Every commit `≤ durable_seq` has been resolved (flushed or failed).
    durable_seq: u64,
    /// Whether some committer is currently the leader (possibly doing I/O
    /// with this mutex released).
    leader: bool,
    /// Framed epoch-stamp record a leader prepends when it finds the log
    /// empty, so every WAL generation opens with its checkpoint epoch.
    stamp: Option<Vec<u8>>,
    /// Failed batches whose members have not all woken yet.
    failed: Vec<FailedRange>,
    #[cfg(feature = "failpoints")]
    fail_record_in: Option<u32>,
}

impl Queue {
    /// If `seq` belongs to a failed batch, claims and returns its error.
    fn take_failure(&mut self, seq: u64) -> Option<std::io::Error> {
        let idx = self.failed.iter().position(|r| r.lo <= seq && seq <= r.hi)?;
        let range = &mut self.failed[idx];
        let err = std::io::Error::new(range.kind, range.msg.clone());
        range.unclaimed -= 1;
        if range.unclaimed == 0 {
            self.failed.swap_remove(idx);
        }
        Some(err)
    }
}

/// A [`Wal`] wrapped in the leader/follower group-commit pipeline.
///
/// [`GroupWal::commit`] is all-or-nothing for one caller's record set: the
/// records are framed, enqueued as a unit, flushed by whichever committer
/// is elected leader, and on a failed flush the whole batch is truncated
/// away — so callers never see a partially durable commit.
#[derive(Debug)]
pub struct GroupWal {
    queue: Mutex<Queue>,
    cond: Condvar,
    io: Mutex<Wal>,
    cfg: Mutex<GroupCommitConfig>,
    stats: Arc<WalStats>,
    /// This instance's trace lane, created lazily on the first flush with
    /// tracing enabled. Per-instance (not a shared name) because two logs
    /// flushing concurrently on one shared lane would interleave spans.
    lane: OnceLock<Lane>,
}

impl GroupWal {
    /// Wraps an open [`Wal`] with the given tunables.
    pub fn new(wal: Wal, cfg: GroupCommitConfig) -> GroupWal {
        GroupWal {
            queue: Mutex::new(Queue::default()),
            cond: Condvar::new(),
            io: Mutex::new(wal),
            cfg: Mutex::new(cfg),
            stats: Arc::new(WalStats::default()),
            lane: OnceLock::new(),
        }
    }

    /// The lane flush spans record on, `None` while tracing is off. Safe to
    /// share across committer threads: only the leader (or a solo flusher)
    /// opens spans, always under the `io` mutex.
    fn lane(&self) -> Option<&Lane> {
        let t = Tracer::global();
        t.enabled().then(|| self.lane.get_or_init(|| t.unique_lane("wal")))
    }

    /// Current tunables.
    pub fn config(&self) -> GroupCommitConfig {
        *self.cfg.lock()
    }

    /// Replaces the tunables (takes effect for subsequent commits).
    pub fn set_config(&self, cfg: GroupCommitConfig) {
        *self.cfg.lock() = cfg;
    }

    /// Shared counters.
    pub fn stats(&self) -> Arc<WalStats> {
        Arc::clone(&self.stats)
    }

    /// Sets (or clears) the epoch-stamp payload prepended to an empty log.
    pub fn set_stamp(&self, payload: Option<&[u8]>) -> std::io::Result<()> {
        let framed = match payload {
            Some(p) => {
                let mut f = Vec::with_capacity(FRAME_HEADER + p.len());
                Wal::frame_into(p, &mut f)?;
                Some(f)
            }
            None => None,
        };
        self.queue.lock().stamp = framed;
        Ok(())
    }

    /// Commits `payloads` as one atomic unit: all records durable on `Ok`,
    /// none durable on `Err`. Blocks until a leader (possibly this caller)
    /// has flushed — or failed to flush — the batch containing them.
    pub fn commit(&self, payloads: &[Vec<u8>]) -> std::io::Result<()> {
        // Frame outside any lock; oversized payloads fail only this caller.
        let mut frames = Vec::new();
        for p in payloads {
            Wal::frame_into(p, &mut frames)?;
        }

        let mut q = self.queue.lock();
        // Injected failures are consumed per *record* at enqueue time so the
        // nth-append failpoint keeps PR 2 semantics under batching.
        #[cfg(feature = "failpoints")]
        for _ in payloads {
            if let Some(n) = q.fail_record_in {
                if n == 0 {
                    q.fail_record_in = None;
                    return Err(std::io::Error::other("injected wal append failure"));
                }
                q.fail_record_in = Some(n - 1);
            }
        }
        let cfg = *self.cfg.lock();
        if !cfg.enabled {
            let stamp = q.stamp.clone();
            drop(q);
            self.stats.group_commit_commits.inc();
            return self.flush_solo(&stamp, &frames, payloads.len() as u64);
        }

        q.pending.extend_from_slice(&frames);
        q.pending_records += payloads.len() as u64;
        q.pending_commits += 1;
        q.next_seq += 1;
        let my_seq = q.next_seq;
        self.stats.group_commit_commits.inc();

        loop {
            if let Some(err) = q.take_failure(my_seq) {
                return Err(err);
            }
            if q.durable_seq >= my_seq {
                return Ok(());
            }
            if q.leader {
                // A leader is flushing (or gathering); wait for its wakeup.
                self.cond.wait(&mut q);
                continue;
            }
            // Become the leader for everything queued so far.
            q.leader = true;
            if !cfg.window.is_zero()
                && q.pending_commits > 1
                && q.pending.len() < cfg.max_batch_bytes
            {
                // Siblings are queued: linger briefly so stragglers join
                // this fsync instead of paying for their own.
                self.cond.wait_for(&mut q, cfg.window);
            }
            let batch = std::mem::take(&mut q.pending);
            let nrecords = std::mem::take(&mut q.pending_records);
            let ncommits = std::mem::take(&mut q.pending_commits);
            let hi = q.next_seq;
            let lo = q.durable_seq + 1;
            let stamp = q.stamp.clone();
            drop(q);

            // I/O happens with the queue mutex released: late arrivals keep
            // enqueuing during the fsync and form the next batch.
            let res = {
                let mut wal = self.io.lock();
                let start = wal.len();
                let lane = self.lane();
                wal_hists().batch_bytes.record(batch.len() as u64);
                let r = (|| {
                    if wal.is_empty() {
                        if let Some(s) = &stamp {
                            wal.append_frames(s)?;
                        }
                    }
                    {
                        let mut s = match &lane {
                            Some(l) => l.span("wal.append", "wal"),
                            None => Span::noop(),
                        };
                        if s.is_recording() {
                            s.arg("bytes", batch.len() as u64);
                            s.arg("records", nrecords);
                            s.arg("commits", ncommits);
                        }
                        wal.append_frames(&batch)?;
                    }
                    let _s = match &lane {
                        Some(l) => l.span("wal.fsync", "wal"),
                        None => Span::noop(),
                    };
                    let t0 = Instant::now();
                    let r = wal.sync();
                    wal_hists().fsync_nanos.record_duration(t0.elapsed());
                    r
                })();
                if r.is_err() {
                    // Abort the whole batch; commits in it report failure.
                    // (Ignore a secondary truncation error — truncate_to
                    // poisons the log, so later appends are refused.)
                    let _ = wal.truncate_to(start);
                }
                r
            };

            q = self.queue.lock();
            q.leader = false;
            q.durable_seq = hi;
            match &res {
                Ok(()) => {
                    self.stats.records_appended.add(nrecords);
                    self.stats.fsyncs.inc();
                    self.stats.group_commit_batches.inc();
                    self.stats.fsyncs_saved.add(ncommits.saturating_sub(1));
                }
                Err(e) => {
                    q.failed.push(FailedRange {
                        lo,
                        hi,
                        kind: e.kind(),
                        msg: e.to_string(),
                        unclaimed: hi - lo + 1,
                    });
                }
            }
            self.cond.notify_all();
            // Loop: `my_seq ≤ hi`, so the next iteration resolves this
            // commit via `durable_seq` or `take_failure`.
        }
    }

    /// The `enabled: false` path: one `append + fsync` per commit, under
    /// the I/O lock only.
    fn flush_solo(
        &self,
        stamp: &Option<Vec<u8>>,
        frames: &[u8],
        nrecords: u64,
    ) -> std::io::Result<()> {
        let mut wal = self.io.lock();
        let start = wal.len();
        let lane = self.lane();
        wal_hists().batch_bytes.record(frames.len() as u64);
        let res = (|| {
            if wal.is_empty() {
                if let Some(s) = stamp {
                    wal.append_frames(s)?;
                }
            }
            {
                let mut s = match &lane {
                    Some(l) => l.span("wal.append", "wal"),
                    None => Span::noop(),
                };
                if s.is_recording() {
                    s.arg("bytes", frames.len() as u64);
                    s.arg("records", nrecords);
                }
                wal.append_frames(frames)?;
            }
            let _s = match &lane {
                Some(l) => l.span("wal.fsync", "wal"),
                None => Span::noop(),
            };
            let t0 = Instant::now();
            let r = wal.sync();
            wal_hists().fsync_nanos.record_duration(t0.elapsed());
            r
        })();
        match res {
            Ok(()) => {
                self.stats.records_appended.add(nrecords);
                self.stats.fsyncs.inc();
                Ok(())
            }
            Err(e) => {
                let _ = wal.truncate_to(start);
                Err(e)
            }
        }
    }

    /// Blocks until no commit is queued or being flushed. Callers that have
    /// externally stopped new commits (e.g. a checkpoint holding the engine
    /// lock) use this to drain the pipeline.
    pub fn quiesce(&self) {
        let mut q = self.queue.lock();
        while q.pending_commits > 0 || q.leader {
            self.cond.wait(&mut q);
        }
    }

    /// Empties the log (after a checkpoint made its records redundant).
    pub fn reset(&self) -> std::io::Result<()> {
        self.io.lock().reset()
    }

    /// Current log length in bytes.
    pub fn len(&self) -> u64 {
        self.io.lock().len()
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fault injection: the `nth` caller record from now (0 = the very
    /// next) fails its commit before anything is enqueued.
    #[cfg(feature = "failpoints")]
    pub fn fail_nth_record(&self, nth: u32) {
        self.queue.lock().fail_record_in = Some(nth);
    }

    /// Fault injection: the next physical [`Wal::sync`] fails, failing the
    /// whole batch that triggered it.
    #[cfg(feature = "failpoints")]
    pub fn fail_next_sync(&self) {
        self.io.lock().fail_next_sync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("orion_wal_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::remove_file(&path).ok();
        path
    }

    #[test]
    fn append_sync_replay_round_trip() {
        let path = temp("roundtrip.wal");
        {
            let (mut wal, replay) = Wal::open(&path).unwrap();
            assert!(replay.records.is_empty());
            assert!(wal.is_empty());
            wal.append(b"first").unwrap();
            wal.append(b"").unwrap();
            wal.append(&[7u8; 1000]).unwrap();
            wal.sync().unwrap();
        }
        let (wal, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records.len(), 3);
        assert_eq!(replay.records[0], b"first");
        assert_eq!(replay.records[1], b"");
        assert_eq!(replay.records[2], vec![7u8; 1000]);
        assert_eq!(replay.truncated_bytes, 0);
        assert_eq!(wal.len(), replay.valid_bytes);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_at_every_cut() {
        let path = temp("torn.wal");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(b"alpha").unwrap();
        let committed = wal.append(b"beta").unwrap();
        wal.append(b"gamma-torn").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        // Simulate a crash at every possible point inside the last append.
        for cut in committed as usize..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (_, replay) = Wal::open(&path).unwrap();
            assert_eq!(replay.records.len(), 2, "cut at {cut}");
            assert_eq!(replay.truncated_bytes, (cut as u64).saturating_sub(committed), "at {cut}");
            assert_eq!(std::fs::metadata(&path).unwrap().len(), committed, "truncated at {cut}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_crc_discards_record_and_everything_after() {
        let path = temp("crc.wal");
        let (mut wal, _) = Wal::open(&path).unwrap();
        let first_end = wal.append(b"good").unwrap();
        wal.append(b"to be corrupted").unwrap();
        wal.append(b"unreachable").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte of the middle record.
        bytes[first_end as usize + FRAME_HEADER] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.records[0], b"good");
        assert_eq!(replay.valid_bytes, first_end);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_length_field_does_not_overrun() {
        let path = temp("garbage.wal");
        // A "length" of u32::MAX must not be trusted.
        let mut bytes = u32::MAX.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 12]);
        std::fs::write(&path, &bytes).unwrap();
        let (wal, replay) = Wal::open(&path).unwrap();
        assert!(replay.records.is_empty());
        assert_eq!(replay.truncated_bytes, 16);
        assert!(wal.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn appends_after_truncation_do_not_interleave_with_garbage() {
        let path = temp("reappend.wal");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(b"one").unwrap();
        wal.sync().unwrap();
        drop(wal);
        // Torn second append.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0xFF, 0x00, 0x03]);
        std::fs::write(&path, &bytes).unwrap();
        let (mut wal, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.truncated_bytes, 3);
        wal.append(b"two").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records, vec![b"one".to_vec(), b"two".to_vec()]);
        assert_eq!(replay.truncated_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reset_empties_the_log() {
        let path = temp("reset.wal");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(b"checkpointed away").unwrap();
        wal.sync().unwrap();
        wal.reset().unwrap();
        assert!(wal.is_empty());
        wal.append(b"fresh").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records, vec![b"fresh".to_vec()]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_lands_at_tracked_len_after_cursor_drift() {
        let path = temp("cursor.wal");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(b"good").unwrap();
        wal.sync().unwrap();
        // Simulate a failed write_all that advanced the file cursor past
        // the tracked length, leaving a torn partial frame behind.
        wal.file.write_all(&[0xAA; 27]).unwrap();
        // The next append must overwrite that garbage, not follow it.
        wal.append(b"second").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records, vec![b"good".to_vec(), b"second".to_vec()]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncate_to_aborts_uncommitted_frames() {
        let path = temp("abort.wal");
        let (mut wal, _) = Wal::open(&path).unwrap();
        let committed = wal.append(b"committed").unwrap();
        wal.sync().unwrap();
        wal.append(b"aborted").unwrap();
        wal.truncate_to(committed).unwrap();
        assert_eq!(wal.len(), committed);
        wal.append(b"retried").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records, vec![b"committed".to_vec(), b"retried".to_vec()]);
        assert_eq!(replay.truncated_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn injected_append_failure_fires_once() {
        let path = temp("inject.wal");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.fail_nth_append(1);
        wal.append(b"before").unwrap();
        assert!(wal.append(b"fails").is_err());
        wal.append(b"after").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records, vec![b"before".to_vec(), b"after".to_vec()]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn oversized_record_rejected() {
        let path = temp("oversize.wal");
        let (mut wal, _) = Wal::open(&path).unwrap();
        let err = wal.append(&vec![0u8; MAX_RECORD + 1]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn group_commit_round_trips_all_records() {
        let path = temp("group_roundtrip.wal");
        let (wal, _) = Wal::open(&path).unwrap();
        let group = GroupWal::new(wal, GroupCommitConfig::default());
        group.commit(&[b"a".to_vec(), b"b".to_vec()]).unwrap();
        group.commit(&[b"c".to_vec()]).unwrap();
        assert_eq!(group.stats().records_appended.get(), 3);
        drop(group);
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records, vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn group_commit_concurrent_batches_save_fsyncs() {
        let path = temp("group_threads.wal");
        let (wal, _) = Wal::open(&path).unwrap();
        let cfg = GroupCommitConfig {
            window: std::time::Duration::from_millis(2),
            ..GroupCommitConfig::default()
        };
        let group = Arc::new(GroupWal::new(wal, cfg));
        let threads = 8;
        let per = 25;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let g = Arc::clone(&group);
                std::thread::spawn(move || {
                    for i in 0..per {
                        g.commit(&[format!("t{t}-r{i}").into_bytes()]).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = group.stats();
        assert_eq!(stats.records_appended.get(), threads * per);
        assert_eq!(stats.group_commit_commits.get(), threads * per);
        assert_eq!(
            stats.fsyncs.get() + stats.fsyncs_saved.get(),
            threads * per,
            "every commit either fsynced or rode a leader's fsync"
        );
        drop(group);
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records.len() as u64, threads * per);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn group_commit_stamp_prefixes_every_wal_generation() {
        let path = temp("group_stamp.wal");
        let (wal, _) = Wal::open(&path).unwrap();
        let group = GroupWal::new(wal, GroupCommitConfig::default());
        group.set_stamp(Some(b"epoch:7")).unwrap();
        group.commit(&[b"x".to_vec()]).unwrap();
        group.commit(&[b"y".to_vec()]).unwrap();
        group.reset().unwrap();
        group.commit(&[b"z".to_vec()]).unwrap();
        drop(group);
        let (_, replay) = Wal::open(&path).unwrap();
        // After the reset the stamp is re-prepended; before it, only once.
        assert_eq!(replay.records, vec![b"epoch:7".to_vec(), b"z".to_vec()]);
        std::fs::remove_file(&path).ok();
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn group_commit_failed_sync_aborts_whole_batch() {
        let path = temp("group_sync_fail.wal");
        let (wal, _) = Wal::open(&path).unwrap();
        let group = GroupWal::new(wal, GroupCommitConfig::default());
        group.commit(&[b"keep".to_vec()]).unwrap();
        group.fail_next_sync();
        let err = group.commit(&[b"lost1".to_vec(), b"lost2".to_vec()]).unwrap_err();
        assert!(err.to_string().contains("injected"));
        group.commit(&[b"after".to_vec()]).unwrap();
        drop(group);
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records, vec![b"keep".to_vec(), b"after".to_vec()]);
        std::fs::remove_file(&path).ok();
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn group_commit_nth_record_failpoint_counts_across_commits() {
        let path = temp("group_nth.wal");
        let (wal, _) = Wal::open(&path).unwrap();
        let group = GroupWal::new(wal, GroupCommitConfig::default());
        group.fail_nth_record(2);
        group.commit(&[b"r0".to_vec(), b"r1".to_vec()]).unwrap();
        // Record #2 is the first record of this commit → whole commit fails.
        assert!(group.commit(&[b"r2".to_vec(), b"r3".to_vec()]).is_err());
        group.commit(&[b"r4".to_vec()]).unwrap();
        drop(group);
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records, vec![b"r0".to_vec(), b"r1".to_vec(), b"r4".to_vec()]);
        std::fs::remove_file(&path).ok();
    }
}
