#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, and the full test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "== cargo clippy (failpoints) =="
cargo clippy -p orion-storage -p orion-core -p orion-tests --all-targets --features failpoints -- -D warnings

echo "== cargo test -q (ORION_THREADS=1) =="
ORION_THREADS=1 cargo test -q

echo "== cargo test -q (ORION_THREADS=4, ORION_TRACE=1) =="
# Tier-1 runs once with tracing enabled: the traced path must stay green and
# bit-identical, and the EXPLAIN TRACE unit test leaves its Chrome trace at
# ORION_TRACE_FILE for the schema check below.
ORION_THREADS=4 ORION_TRACE=1 ORION_TRACE_FILE="$PWD/target/trace-ci.trace.json" \
    cargo test -q

echo "== cargo test -q (ORION_MODE=batch, ORION_THREADS=1) =="
# Tier-1 runs again through the columnar batch executor: every test that
# executes a plan now routes morsels through the batch kernels instead of
# the scalar row path, and must stay green with bit-identical results.
ORION_MODE=batch ORION_THREADS=1 cargo test -q

echo "== cargo test -q (ORION_MODE=batch, ORION_THREADS=4) =="
ORION_MODE=batch ORION_THREADS=4 cargo test -q

echo "== cargo test -q (ORION_PLANNER=rule) =="
# Tier-1 runs once more with the rule-based planner, which takes a usable
# secondary index unconditionally: every indexed query path must stay green
# and bit-identical even when the cost model would have chosen the scan.
ORION_PLANNER=rule ORION_THREADS=1 cargo test -q

echo "== batch differential oracle (3 pinned seeds) =="
# Replays the serial-vs-batch pipeline oracle with pinned generator seeds,
# mirroring the recovery oracle's replay protocol: row-serial, row-parallel,
# batch-serial and batch-parallel runs must agree bit-for-bit.
for seed in 0xBA7C4 0xDEAD 42; do
    echo "-- ORION_ORACLE_SEED=$seed --"
    ORION_ORACLE_SEED=$seed cargo test -q -p orion-tests \
        --test batch_equiv --test batch_kernels
done

echo "== ANALYZE + system-table smoke =="
# Queryable introspection must stay wired end to end: ANALYZE stats
# collection, the schema-stable orion.* virtual tables, and the gate that
# fails when orion.metrics rows disagree with the render_prometheus
# exposition of the same registry.
cargo test -q -p orion-sql analyze_statement_collects_and_installs_stats
cargo test -q -p orion-sql every_system_table_is_queryable_with_stable_schema
cargo test -q -p orion-sql orion_metrics_rows_match_prometheus_export

echo "== cargo test -q (fault injection, fixed seeds) =="
cargo test -q -p orion-storage -p orion-core -p orion-tests --features failpoints

echo "== crash matrix + recovery oracle + txn consistency (3 pinned seeds) =="
# Each seed runs the byte-level crash matrices, the recovery oracle (whose
# workloads now interleave CREATE/DROP INDEX and assert recovered index
# definitions answer like a fresh rebuild at every WAL cut), the
# index-vs-scan differential oracle, and the Jepsen-style transaction
# consistency checker — once with fault injection armed (failpoints) and
# once against the plain build.
for seed in 0xA11CE 0xC0FFEE 0xDECADE; do
    echo "-- ORION_ORACLE_SEED=$seed (failpoints) --"
    ORION_ORACLE_SEED=$seed cargo test -q -p orion-tests --features failpoints \
        --test crash_matrix --test recovery_oracle --test txn_consistency \
        --test index_equiv
    echo "-- ORION_ORACLE_SEED=$seed (plain) --"
    ORION_ORACLE_SEED=$seed cargo test -q -p orion-tests \
        --test txn_consistency --test index_equiv
done

echo "== morsel-parallel speedup check =="
# Effective core count: nproc reports host cores, but a container cgroup
# quota can cap usable CPU well below that — honor the smaller of the two.
CORES=$(nproc 2>/dev/null || echo 1)
if [ -r /sys/fs/cgroup/cpu.max ]; then
    read -r QUOTA PERIOD < /sys/fs/cgroup/cpu.max
    if [ "$QUOTA" != "max" ] && [ "${PERIOD:-0}" -gt 0 ]; then
        CG_CORES=$(( (QUOTA + PERIOD - 1) / PERIOD ))
        [ "$CG_CORES" -lt "$CORES" ] && CORES=$CG_CORES
    fi
fi
if [ "$CORES" -lt 4 ]; then
    echo "skipped: effective cores $CORES < 4; speedup numbers would be meaningless"
elif [ "${ORION_SPEEDUP_GATE:-0}" = "1" ]; then
    # Opt-in hard gate (set ORION_SPEEDUP_GATE=1 on dedicated hardware):
    # the 100K-tuple selection must reach 1.5x at 4 threads.
    cargo run --release -p orion-bench --bin fig_parallel -- --quick --min-speedup 1.5
else
    # Advisory by default: shared/loaded runners miss fixed speedup bars
    # intermittently, so report the scaling curve without failing the build.
    cargo run --release -p orion-bench --bin fig_parallel -- --quick ||
        echo "warning: fig_parallel --quick failed (advisory only)" >&2
fi

echo "== columnar batch speedup check (fig5 row vs batch) =="
if [ "$CORES" -lt 2 ]; then
    echo "skipped: effective cores $CORES < 2; timings would be meaningless"
elif [ "${ORION_SPEEDUP_GATE:-0}" = "1" ]; then
    # Opt-in hard gate (dedicated hardware): batch mode must reach 3x over
    # the row path on the widest representation (Discrete(25)), where the
    # columnar layout has the most bytes to win. The narrow symbolic sweep
    # is erf-bound in both modes and is reported but not gated.
    cargo run --release -p orion-bench --bin fig5_performance -- \
        --compare --min-speedup 3
else
    # Advisory by default, same convention as the morsel speedup check.
    cargo run --release -p orion-bench --bin fig5_performance -- \
        --compare --min-speedup 3 ||
        echo "warning: fig5 --compare speedup below 3x (advisory only)" >&2
fi

echo "== threshold-index speedup check (fig5_index) =="
if [ "${ORION_SPEEDUP_GATE:-0}" = "1" ]; then
    # Opt-in hard gate (dedicated hardware): the persistent cdf-summary
    # index must answer fig5-style threshold queries at selectivity <= 0.1
    # at least 5x faster than the seed full scan, bitwise-identical results.
    cargo run --release -p orion-bench --bin fig5_index -- --min-speedup 5
else
    # Advisory by default, same convention as the other speedup checks.
    cargo run --release -p orion-bench --bin fig5_index -- --min-speedup 5 ||
        echo "warning: fig5_index speedup below 5x (advisory only)" >&2
fi

echo "== workload repository smoke + overhead gate =="
# The functional assertions (orion.statements populated, counter
# conservation, plan_feedback q-error matching EXPLAIN ANALYZE, slow dump
# validating) always hard-fail. The <5% enabled-vs-disabled overhead gate
# reports exit 3, advisory on shared runners, hard under
# ORION_SPEEDUP_GATE=1.
set +e
SMOKE_OUT=$(cargo run --release -p orion-bench --bin workload_smoke -- \
    --dump-dir "$PWD/target/workload-dumps" --max-overhead 5)
SMOKE_RC=$?
set -e
echo "$SMOKE_OUT"
if [ "$SMOKE_RC" = "3" ] && [ "${ORION_SPEEDUP_GATE:-0}" != "1" ]; then
    echo "warning: workload repository overhead above 5% (advisory only)" >&2
elif [ "$SMOKE_RC" != "0" ]; then
    echo "error: workload_smoke failed (exit $SMOKE_RC)" >&2
    exit 1
fi
SLOW_DUMP=$(echo "$SMOKE_OUT" | sed -n 's/^SLOW_DUMP //p' | head -n 1)
if [ -z "$SLOW_DUMP" ]; then
    echo "error: workload_smoke printed no SLOW_DUMP path" >&2
    exit 1
fi

echo "== trace schema check =="
# The trace emitted by the tracing-enabled test pass above, the committed
# example artifact, and the slow-query dump from the workload smoke must
# all parse and pass their structural validators.
cargo run -q -p orion-bench --bin trace_check -- \
    target/trace-ci.trace.json results/fig_parallel.trace.json "$SLOW_DUMP"

echo "== proptest-regressions must be committed =="
if [ -n "$(git status --porcelain -- '*proptest-regressions*')" ]; then
    echo "error: uncommitted proptest-regressions changes:" >&2
    git status --porcelain -- '*proptest-regressions*' >&2
    exit 1
fi

echo "All checks passed."
