#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, and the full test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "== cargo clippy (failpoints) =="
cargo clippy -p orion-storage -p orion-core -p orion-tests --all-targets --features failpoints -- -D warnings

echo "== cargo test -q (ORION_THREADS=1) =="
ORION_THREADS=1 cargo test -q

echo "== cargo test -q (ORION_THREADS=4) =="
ORION_THREADS=4 cargo test -q

echo "== cargo test -q (fault injection, fixed seeds) =="
cargo test -q -p orion-storage -p orion-core -p orion-tests --features failpoints

echo "== crash matrix + recovery oracle (3 pinned seeds) =="
for seed in 0xA11CE 0xC0FFEE 0xDECADE; do
    echo "-- ORION_ORACLE_SEED=$seed --"
    ORION_ORACLE_SEED=$seed cargo test -q -p orion-tests --features failpoints \
        --test crash_matrix --test recovery_oracle
done

echo "== morsel-parallel speedup gate =="
CORES=$(nproc 2>/dev/null || echo 1)
if [ "$CORES" -ge 4 ]; then
    # 100K-tuple selection must reach 1.5x at 4 threads on a >=4-core host.
    cargo run --release -p orion-bench --bin fig_parallel -- --quick --min-speedup 1.5
else
    echo "skipped: host has $CORES core(s); need >= 4 for a meaningful speedup gate"
fi

echo "== proptest-regressions must be committed =="
if [ -n "$(git status --porcelain -- '*proptest-regressions*')" ]; then
    echo "error: uncommitted proptest-regressions changes:" >&2
    git status --porcelain -- '*proptest-regressions*' >&2
    exit 1
fi

echo "All checks passed."
