#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, and the full test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "== cargo clippy (failpoints) =="
cargo clippy -p orion-storage -p orion-core -p orion-tests --all-targets --features failpoints -- -D warnings

echo "== cargo test -q =="
cargo test -q

echo "== cargo test -q (fault injection, fixed seeds) =="
cargo test -q -p orion-storage -p orion-core -p orion-tests --features failpoints

echo "All checks passed."
